//! # workdist
//!
//! Facade crate for the reproduction of *Combinatorial Optimization of Work
//! Distribution on Heterogeneous Systems* (Memeti & Pllana, ICPP Workshops 2016).
//!
//! The actual functionality lives in the member crates, re-exported here so that a
//! downstream user can depend on a single crate:
//!
//! * [`platform`] — simulator of a heterogeneous node (2× Xeon E5 host + Xeon Phi device)
//! * [`dna`] — the DNA sequence analysis application (finite-automata motif matching)
//! * [`ml`] — regression models (boosted decision trees, linear, Poisson)
//! * [`opt`] — combinatorial optimization (simulated annealing, enumeration, ...)
//! * [`dist`] — sharded multi-node campaign coordinator with a persistent result store
//! * [`obs`] — observability: the `Recorder` trait, metrics registry, JSONL event export
//! * [`autotune`] — the paper's contribution: EM / EML / SAM / SAML autotuning
//!
//! ## Quick start
//!
//! ```
//! use workdist::autotune::{Autotuner, MethodKind};
//!
//! // Build the paper's platform and application (scaled-down training campaign),
//! // train the performance model and run Simulated Annealing + Machine Learning.
//! let mut tuner = Autotuner::quick_setup(42);
//! let outcome = tuner.run(MethodKind::Saml, 100).unwrap();
//! assert!(outcome.measured_energy.is_finite() && outcome.measured_energy > 0.0);
//! ```

pub use dna_analysis as dna;
pub use hetero_autotune as autotune;
pub use hetero_platform as platform;
pub use wd_dist as dist;
pub use wd_ml as ml;
pub use wd_obs as obs;
pub use wd_opt as opt;

/// The version of the reproduction library.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Short human-readable description of the reproduced paper.
pub const PAPER: &str = "Memeti & Pllana, Combinatorial Optimization of Work Distribution \
                         on Heterogeneous Systems, ICPP Workshops 2016";

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_semver_like() {
        let parts: Vec<_> = super::VERSION.split('.').collect();
        assert_eq!(parts.len(), 3);
        for p in parts {
            p.parse::<u64>().expect("numeric version component");
        }
    }
}
