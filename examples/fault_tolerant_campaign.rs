//! Fault-tolerant sharded campaign: deterministic fault injection, supervised
//! recovery, and crash-consistent store maintenance.
//!
//! Runs the paper's EM campaign under a hostile fault schedule — an evaluation
//! error, a shard death, a stalled worker and a torn store append — and shows the
//! supervised runner converging to the **bit-identical** result of a fault-free
//! run, with every supervision decision exported as JSONL telemetry.  Afterwards
//! the store is recovered (the torn half-record is quarantined, never silently
//! dropped) and rolled back to a retained compaction generation.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_campaign
//! WD_CHAOS_SEED=7 cargo run --release --example fault_tolerant_campaign
//! ```

use workdist::autotune::{
    campaign_context, ConfigurationSpace, MeasurementEvaluator, MethodKind, SystemConfiguration,
};
use workdist::dist::{
    FaultPlan, JsonlStore, MemoryStore, ResultStore, RetryPolicy, ShardedCampaign,
};
use workdist::dna::Genome;
use workdist::obs::JsonlExporter;
use workdist::platform::HeterogeneousPlatform;

fn main() {
    let platform = HeterogeneousPlatform::emil();
    let workload = Genome::Human.workload();
    let context = campaign_context(MethodKind::Em, &workload);
    let evaluator = MeasurementEvaluator::new(platform, workload);
    let grid = ConfigurationSpace::enumeration_grid();
    let shards = 4;

    // the chaos schedule is deterministic: same seed, same faults, same recovery
    let seed = std::env::var("WD_CHAOS_SEED")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(7u64); // the default plan covers all four fault kinds
    let faults = FaultPlan::random(seed, shards, 2, 3);
    println!("fault plan (seed {seed}, slot:attempt:after_batches:kind):");
    for event in faults.events() {
        println!("    {event}");
    }

    // the reference: the same campaign with no faults injected
    let reference = ShardedCampaign::new(shards)
        .run(&grid, &evaluator, &MemoryStore::new())
        .expect("fault-free reference campaign");

    let store_path = std::env::temp_dir().join("workdist-fault-tolerant-campaign.jsonl");
    let _ = std::fs::remove_file(&store_path);
    let telemetry_path = std::env::temp_dir().join("workdist-fault-tolerant-telemetry.jsonl");
    let exporter = JsonlExporter::create(&telemetry_path).expect("create telemetry exporter");

    let store: JsonlStore<SystemConfiguration> =
        JsonlStore::open_with_context(&store_path, &context).expect("open the result store");
    let supervised = ShardedCampaign::new(shards)
        .run_supervised_observed(
            &grid,
            &evaluator,
            &store,
            &faults,
            &RetryPolicy::default(),
            &exporter,
            "chaos",
        )
        .expect("supervised campaign");
    exporter.flush().expect("flush telemetry");

    let resilience = supervised.supervision.resilience;
    println!(
        "supervised campaign over {} configurations, {shards} shards:",
        supervised.outcome.evaluations
    );
    println!(
        "    {} attempts, {} retries, {} lease expiries, {} steals, {} dead slot(s)",
        resilience.attempts,
        resilience.retries,
        resilience.lease_expiries,
        resilience.steals,
        supervised.supervision.dead_slots.len()
    );
    println!(
        "    logical clock at {} ticks; {} failed-attempt evaluations were reused from the store",
        supervised.supervision.final_clock, supervised.supervision.failed_stats.misses
    );
    println!(
        "    best {} -> {:.4} s (index {})",
        supervised.outcome.best_config,
        supervised.outcome.best_energy,
        supervised.outcome.best_index
    );
    assert_eq!(supervised.outcome.best_config, reference.best_config);
    assert_eq!(
        supervised.outcome.best_energy.to_bits(),
        reference.best_energy.to_bits(),
        "the supervised result must be bit-identical to the fault-free run"
    );
    println!("    bit-identical to the fault-free reference ✓");
    println!(
        "    telemetry: {} events -> {}",
        exporter.events_written(),
        telemetry_path.display()
    );
    drop(store);

    // recover the store: torn half-records are quarantined, the log is rewritten
    // clean, and the pre-recovery log is retained as a .gen-N snapshot
    let (recovered, report) =
        JsonlStore::<SystemConfiguration>::open_recovering(&store_path).expect("recover the store");
    println!(
        "store recovery: {} corrupt line(s) quarantined to {}, {} records kept, generation {}",
        report.quarantined,
        report.sidecar.display(),
        report.records,
        report.generation
    );
    let generations = recovered.retained_generations();
    drop(recovered); // release the single-writer lock before rollback reopens the log
    if let Some(&generation) = generations.last() {
        let restored = JsonlStore::<SystemConfiguration>::rollback(&store_path, generation)
            .expect("roll the store back");
        println!(
            "rollback to generation {generation}: {} records (pre-recovery state restored)",
            restored.len()
        );
        drop(restored);
        // roll forward again so the example leaves a clean store behind
        let (_, report) = JsonlStore::<SystemConfiguration>::open_recovering(&store_path)
            .expect("re-recover after rollback");
        println!(
            "re-recovered: rewritten={}, now generation {}",
            report.rewritten, report.generation
        );
    }
    println!("store: {}", store_path.display());
}
