//! Beyond the paper: a node with *two* different accelerators.
//!
//! The architecture diagram in the paper allows one to eight accelerators per node, but
//! the evaluation uses a single Xeon Phi.  The platform simulator supports arbitrary
//! accelerator sets; this example sweeps three-way partitions between the host, a Xeon
//! Phi and a GPU-like device and reports the best split found, illustrating how the
//! work-distribution problem generalises.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_accelerator
//! ```

use workdist::platform::{
    Affinity, DeviceSpec, ExecutionConfig, HeterogeneousPlatform, NoiseModel, OffloadModel,
    Partition, PerfModel, WorkloadProfile,
};

fn main() {
    let platform = HeterogeneousPlatform::new(
        DeviceSpec::xeon_e5_2695v2_dual(),
        vec![DeviceSpec::xeon_phi_7120p(), DeviceSpec::generic_gpu()],
        OffloadModel::pcie_gen2_x16(),
        NoiseModel::paper_default(1),
        PerfModel::default(),
    );
    let workload = WorkloadProfile::dna_scan("human", 3_170_000_000);

    let host_cfg = ExecutionConfig::new(48, Affinity::Scatter);
    let phi_cfg = ExecutionConfig::new(240, Affinity::Balanced);
    let gpu_cfg = ExecutionConfig::new(448, Affinity::Balanced);

    println!("three-way work distribution over host + Xeon Phi + GPU (5 % grid):\n");
    let mut best: Option<(u32, u32, u32, f64)> = None;
    // sweep host/phi/gpu shares in 5 % steps
    for host in (0..=100u32).step_by(5) {
        for phi in (0..=(100 - host)).step_by(5) {
            let gpu = 100 - host - phi;
            let partition = Partition::new(vec![
                host as f64 / 100.0,
                phi as f64 / 100.0,
                gpu as f64 / 100.0,
            ])
            .expect("shares sum to 1");
            let measurement = platform
                .execute(&workload, &partition, &host_cfg, &[phi_cfg, gpu_cfg])
                .expect("valid configuration");
            if best.is_none_or(|(_, _, _, t)| measurement.t_total < t) {
                best = Some((host, phi, gpu, measurement.t_total));
            }
        }
    }
    let (host, phi, gpu, seconds) = best.expect("at least one partition evaluated");
    println!("best split  : host {host} % / Xeon Phi {phi} % / GPU {gpu} %");
    println!("total time  : {seconds:.3} s");

    // baselines for context
    let host_only = platform
        .execute_host_only(&workload, &host_cfg)
        .unwrap()
        .t_total;
    let phi_only = platform
        .execute_device_only(&workload, &phi_cfg)
        .unwrap()
        .t_total;
    println!(
        "host-only   : {host_only:.3} s ({:.2}x slower than the best split)",
        host_only / seconds
    );
    println!(
        "Phi-only    : {phi_only:.3} s ({:.2}x slower than the best split)",
        phi_only / seconds
    );
}
