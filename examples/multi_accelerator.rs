//! Beyond the paper: autotuning a node with *two* different accelerators through the
//! standard method pipeline.
//!
//! The architecture diagram in the paper allows one to eight accelerators per node,
//! but the evaluation uses a single Xeon Phi.  Since the configuration space, the
//! training campaign and every optimization method are generalised to host + N
//! accelerators, the three-way work-distribution problem runs through exactly the
//! same EM / EML / SAM / SAML pipeline as the paper's host + Phi setup — no
//! hand-rolled sweeps:
//!
//! 1. train one prediction model per device (host, Xeon Phi, GPU),
//! 2. enumerate the three-way grid with EM (and as a sharded, store-backed campaign),
//! 3. let SAML find a near-optimal split with a fraction of EM's evaluations.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_accelerator
//! ```

use workdist::autotune::{
    run_enumeration_sharded, ConfigurationSpace, DeviceAxis, MethodKind, MethodRunner,
    SpeedupReport, TrainingCampaign,
};
use workdist::dist::MemoryStore;
use workdist::ml::BoostingParams;
use workdist::platform::{Affinity, HeterogeneousPlatform, WorkloadProfile};

fn main() {
    let platform = HeterogeneousPlatform::emil_with_gpu();
    let workload = WorkloadProfile::dna_scan("human", 3_170_000_000);
    println!("platform : {}", platform.host.name);
    for accelerator in &platform.accelerators {
        println!("           + {}", accelerator.name);
    }

    // --- 1. one prediction model per device ---------------------------------------
    let campaign = TrainingCampaign::reduced_for(&platform);
    let models = campaign.run(&platform, BoostingParams::fast());
    println!(
        "\ntrained {} device models from {} simulated experiments",
        models.device_model_count(),
        models.total_experiments()
    );
    println!(
        "  host model : {:.2} % mean percent error",
        models.host_accuracy.mean_percent_error()
    );
    for (index, accuracy) in models.device_accuracies.iter().enumerate() {
        println!(
            "  {:<11}: {:.2} % mean percent error",
            platform.accelerators[index].name,
            accuracy.mean_percent_error()
        );
    }

    // --- 2. the three-way configuration space -------------------------------------
    // host + Phi + GPU shares on a 10 % simplex; thread/affinity axes per device
    let grid = ConfigurationSpace::multi_accelerator(
        vec![12, 24, 48],
        vec![Affinity::Scatter],
        vec![
            DeviceAxis::new(vec![60, 120, 240], vec![Affinity::Balanced]),
            DeviceAxis::new(vec![112, 224, 448], vec![Affinity::Balanced]),
        ],
        100,
    );
    println!(
        "\nthree-way space: {} configurations ({} splits on the 10 % simplex)",
        grid.total_configurations(),
        grid.splits.len()
    );

    // --- 3. EM / SAML through the standard method pipeline ------------------------
    let runner = MethodRunner::new(&platform, &workload, Some(&models), 42)
        .with_grid(grid.clone())
        .with_space(grid.clone());
    let em = runner.run(MethodKind::Em, 0).expect("EM runs");
    let saml = runner.run(MethodKind::Saml, 400).expect("SAML runs");

    println!(
        "\nEM   ({} evaluations): {}",
        em.evaluations, em.best_config
    );
    println!("     measured time {:.3} s", em.measured_energy);
    println!(
        "SAML ({} evaluations): {}",
        saml.evaluations, saml.best_config
    );
    println!(
        "     measured time {:.3} s ({:+.1} % vs the EM optimum)",
        saml.measured_energy,
        100.0 * (saml.measured_energy - em.measured_energy) / em.measured_energy
    );

    // --- 4. the same grid as a sharded, store-backed campaign ---------------------
    let store = MemoryStore::new();
    let sharded = run_enumeration_sharded(
        &platform,
        &workload,
        Some(&models),
        MethodKind::Em,
        &grid,
        4,
        &store,
    )
    .expect("sharded EM runs");
    assert_eq!(sharded.best_config, em.best_config);
    let resumed = run_enumeration_sharded(
        &platform,
        &workload,
        Some(&models),
        MethodKind::Em,
        &grid,
        4,
        &store,
    )
    .expect("warm resume runs");
    println!(
        "\nsharded EM over 4 nodes matches the single-node optimum; a repeated campaign \
         against the warm store re-evaluates {} configurations",
        resumed.cache.misses
    );

    // --- 5. baselines -------------------------------------------------------------
    let speedup = SpeedupReport::for_combined_time(&platform, &workload, em.measured_energy);
    println!(
        "\nhost-only: {:.3} s ({:.2}x slower than the best three-way split)",
        speedup.host_only_seconds,
        speedup.speedup_vs_host()
    );
    println!(
        "Phi-only : {:.3} s ({:.2}x slower than the best three-way split)",
        speedup.device_only_seconds,
        speedup.speedup_vs_device()
    );
}
