//! Tuning a non-DNA workload: the autotuner is not tied to the DNA application — any
//! divisible data-parallel workload described by a `WorkloadProfile` can be tuned.
//! This example tunes a compute-bound kernel and a transfer-bound streaming kernel and
//! shows how the optimal split moves between "mostly on the accelerator" and
//! "CPU-only" depending on the workload's character.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_workload
//! ```

use workdist::autotune::{Autotuner, MethodKind};
use workdist::platform::WorkloadProfile;

fn tune(label: &str, workload: WorkloadProfile) {
    let mut tuner = Autotuner::quick_setup(21).with_workload(workload);
    // SAM works directly on simulated measurements, so no training campaign is needed —
    // handy when the workload changes often.
    let outcome = tuner
        .run(MethodKind::Sam, 1200)
        .expect("SAM needs no models");
    let speedup = tuner.speedup(&outcome);
    println!("{label}");
    println!("  best configuration : {}", outcome.best_config);
    println!("  execution time     : {:.3} s", outcome.measured_energy);
    println!(
        "  vs host-only {:.2}x, vs device-only {:.2}x",
        speedup.speedup_vs_host(),
        speedup.speedup_vs_device()
    );
    println!();
}

fn main() {
    // A compute-bound kernel: 8x the per-byte cost of the DNA scan, highly vectorizable.
    // Offloading a large share to the wide-SIMD accelerator pays off.
    tune(
        "compute-bound kernel (2 GB, 8x per-byte cost, 97 % vectorizable)",
        WorkloadProfile::compute_bound("nbody-like", 2_000_000_000, 8.0),
    );

    // A streaming kernel: cheap per byte, so PCIe transfer dominates any offload.
    // The tuner should keep (almost) everything on the host.
    tune(
        "streaming kernel (2 GB, 0.25x per-byte cost, transfer-bound)",
        WorkloadProfile::streaming("stream-like", 2_000_000_000),
    );

    // A small DNA job: offload overhead cannot be amortised (the paper's Fig. 2a regime).
    tune(
        "small DNA scan (190 MB)",
        WorkloadProfile::dna_scan("small-dna", 190_000_000),
    );

    // A large DNA job: the paper's main regime, a 60/40-ish split wins.
    tune(
        "large DNA scan (3.25 GB)",
        WorkloadProfile::dna_scan("large-dna", 3_250_000_000),
    );
}
