//! Quickstart: tune the work distribution of a DNA analysis job on the simulated
//! "Emil" platform with SAML (Simulated Annealing + Machine Learning) and compare it
//! against the host-only / device-only baselines.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use workdist::autotune::{Autotuner, MethodKind};

fn main() {
    // The quick setup uses a reduced training campaign so this example finishes in a
    // couple of seconds; `Autotuner::paper_setup` reproduces the full 7 200-experiment
    // campaign of the paper.
    let mut tuner = Autotuner::quick_setup(42);

    println!(
        "workload : {} ({:.2} GB)",
        tuner.workload().name,
        tuner.workload().gigabytes()
    );
    println!("platform : {}", tuner.platform().host.name);
    for accelerator in &tuner.platform().accelerators {
        println!("           + {}", accelerator.name);
    }

    // Train the prediction models (lazy: SAML triggers it automatically, but doing it
    // explicitly lets us print the accuracy first).
    let models = tuner.models();
    println!(
        "\nprediction models trained on {} simulated experiments",
        models.total_experiments()
    );
    println!(
        "  host  model: {:.2} % mean percent error",
        models.host_accuracy.mean_percent_error()
    );
    println!(
        "  device model: {:.2} % mean percent error",
        models.device_accuracy().mean_percent_error()
    );

    // Ask SAML for a near-optimal system configuration using 1 000 annealing iterations
    // (about 5 % of the 19 926 experiments full enumeration would need).
    let outcome = tuner
        .run(MethodKind::Saml, 1000)
        .expect("models are trained");

    println!(
        "\nSAML suggestion after {} evaluated configurations:",
        outcome.evaluations
    );
    println!("  {}", outcome.best_config);
    println!("  predicted execution time: {:.3} s", outcome.search_energy);
    println!(
        "  measured  execution time: {:.3} s",
        outcome.measured_energy
    );

    let speedup = tuner.speedup(&outcome);
    println!("\ncompared with the baselines:");
    println!(
        "  host-only (48 threads)   : {:.3} s",
        speedup.host_only_seconds
    );
    println!(
        "  device-only (240 threads): {:.3} s",
        speedup.device_only_seconds
    );
    println!(
        "  speedup vs host-only     : {:.2}x",
        speedup.speedup_vs_host()
    );
    println!(
        "  speedup vs device-only   : {:.2}x",
        speedup.speedup_vs_device()
    );
}
