//! Multi-process distributed campaign under real process chaos.
//!
//! A coordinator spawns a fleet of `wd-worker` **processes** over a seeded
//! fault plan (stalls, deaths, torn writes, eval errors), while a killer
//! thread delivers a genuine `kill -9` to a pinned, stalled worker.  The
//! campaign must still converge to the **bit-identical** outcome of a
//! fault-free single-process run, re-evaluating nothing that was already
//! durable — the crash-proof store reconciliation story, end to end.
//!
//! ```sh
//! cargo build --release -p wd_dist --bin wd-worker
//! cargo run --release --example proc_campaign
//! WD_CHAOS_SEED=42 cargo run --release --example proc_campaign
//! ```

use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

use workdist::dist::proc::WorkDir;
use workdist::dist::{
    read_result_records, FaultEvent, FaultKind, FaultPlan, MemoryStore, ProcCampaign,
    ShardedCampaign, WorkloadSpec,
};
use workdist::obs::JsonlExporter;
use workdist::opt::Objective;

fn main() {
    let slots = 4;
    let batch = 16;
    let spec = WorkloadSpec::GridBowl {
        width: 60,
        height: 40,
        center_x: 20,
        center_y: 20,
    };

    // the chaos schedule is deterministic: same seed, same faults, same recovery
    let seed = std::env::var("WD_CHAOS_SEED")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(7u64);
    let pinned_slot = (seed as usize) % slots;
    let mut events = FaultPlan::random(seed, slots, 1, 3).events().to_vec();
    // pin one guaranteed stall so the killer thread has a sitting target
    events.insert(
        0,
        FaultEvent {
            slot: pinned_slot,
            attempt: 0,
            after_batches: 1,
            kind: FaultKind::Stall,
        },
    );
    let faults = FaultPlan::from_events(events);
    println!("fault plan (seed {seed}, slot:attempt:after_batches:kind):");
    for event in faults.events() {
        println!("    {event}");
    }

    // the reference: the same campaign, one process, no faults
    let reference = ShardedCampaign::new(slots)
        .with_batch_size(batch)
        .run(&spec.space(), &spec, &MemoryStore::new())
        .expect("fault-free reference campaign");

    let work_root = std::env::temp_dir().join("workdist-proc-campaign");
    let _ = std::fs::remove_dir_all(&work_root);
    let telemetry_path = std::env::temp_dir().join("workdist-proc-campaign-telemetry.jsonl");
    let exporter = JsonlExporter::create(&telemetry_path).expect("create telemetry exporter");

    // killer thread: wait for the pinned slot's first worker to appear in the
    // spawn ledger, give it time to reach its stall, then kill -9 it for real
    let pids_path = WorkDir::new(&work_root).pids();
    let killer = std::thread::spawn(move || -> Option<String> {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if let Ok(text) = std::fs::read_to_string(&pids_path) {
                for line in text.lines() {
                    let mut parts = line.split(' ');
                    let (Some(slot), Some(generation), Some(pid)) =
                        (parts.next(), parts.next(), parts.next())
                    else {
                        continue;
                    };
                    if slot != pinned_slot.to_string() || generation != "1" {
                        continue;
                    }
                    std::thread::sleep(Duration::from_millis(200));
                    if Path::new(&format!("/proc/{pid}")).exists()
                        && Command::new("kill")
                            .args(["-9", pid])
                            .status()
                            .map(|status| status.success())
                            .unwrap_or(false)
                    {
                        return Some(pid.to_string());
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        None
    });

    let campaign = ProcCampaign::new(slots)
        .with_batch_size(batch)
        .with_faults(faults)
        .with_stall_ms(3_000)
        .with_timing(
            Duration::from_millis(25),
            Duration::from_millis(800),
            Duration::from_millis(10),
        );
    let got = campaign
        .run_observed(&spec, &work_root, &exporter, "proc")
        .expect("multi-process campaign");
    match killer.join().expect("killer thread") {
        Some(pid) => println!("\nkill -9 delivered to worker pid {pid}"),
        None => println!("\nkill -9 found no live target; lease fencing covered the stall"),
    }

    println!("transport report: {:?}", got.report);
    println!(
        "fleet: {} spawned / {} completed / {} respawned / {} fenced ({} self-fenced exits)",
        got.report.spawned,
        got.report.completed,
        got.report.respawned,
        got.report.fenced,
        got.report.fenced_exits
    );

    // the recovered outcome must be bit-identical to the fault-free reference
    assert_eq!(got.outcome.best_config, reference.best_config);
    assert_eq!(got.outcome.best_index, reference.best_index);
    assert_eq!(
        got.outcome.best_energy.to_bits(),
        reference.best_energy.to_bits()
    );
    assert_eq!(got.outcome.evaluations, reference.evaluations);
    assert_eq!(
        got.report.verification_evaluations, 0,
        "persisted keys must never be re-evaluated"
    );

    // and every durable record carries the exact bits the objective computes
    let (records, torn) =
        read_result_records(&WorkDir::new(&work_root).merged()).expect("read merged log");
    assert_eq!(torn, 0, "the coordinator-owned merged log is never torn");
    assert_eq!(records.len(), reference.evaluations);
    for (key, energy) in &records {
        let config = key
            .split_once(',')
            .and_then(|(x, y)| Some((x.parse().ok()?, y.parse().ok()?)))
            .expect("stored keys decode");
        assert_eq!(energy.to_bits(), spec.evaluate(&config).to_bits());
    }

    println!(
        "recovered outcome: best {:?} energy {} over {} evaluations — bit-identical to the \
         fault-free single-process run",
        got.outcome.best_config, got.outcome.best_energy, got.outcome.evaluations
    );
    println!("merged log: {} records, 0 torn", records.len());
    println!("telemetry: {}", telemetry_path.display());
    println!("work dir (leases, segments, logs): {}", work_root.display());
}
