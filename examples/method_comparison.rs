//! Compare the paper's four optimization methods (EM, EML, SAM, SAML) on one genome:
//! solution quality, number of evaluated configurations and whether they need the
//! trained prediction model.  This is a compact version of the paper's Fig. 9 /
//! Tables VI-IX analysis.
//!
//! Run with:
//! ```text
//! cargo run --release --example method_comparison
//! ```

use workdist::autotune::report::format_table;
use workdist::autotune::{Autotuner, MethodKind};
use workdist::dna::Genome;

fn main() {
    let genome = Genome::Cat;
    let mut tuner = Autotuner::quick_setup(13).with_workload(genome.workload());

    println!(
        "comparing EM / EML / SAM / SAML on the {} sequence ({:.2} GB)\n",
        genome,
        genome.nominal_bytes() as f64 / 1e9
    );

    let budget = 1000; // simulated-annealing iterations, ignored by EM/EML
    let mut rows = Vec::new();
    let mut em_energy = None;
    for method in MethodKind::ALL {
        let outcome = tuner.run(method, budget).expect("every method can run");
        if method == MethodKind::Em {
            em_energy = Some(outcome.measured_energy);
        }
        let gap = em_energy
            .map(|em| 100.0 * (outcome.measured_energy - em) / em)
            .unwrap_or(0.0);
        let properties = method.properties();
        rows.push(vec![
            method.name().to_string(),
            properties.space_exploration.to_string(),
            properties.evaluation.to_string(),
            outcome.evaluations.to_string(),
            format!("{:.3}", outcome.measured_energy),
            format!("{gap:+.1}%"),
            outcome.best_config.to_string(),
        ]);
    }

    let headers = vec![
        "Method".to_string(),
        "Exploration".to_string(),
        "Evaluation".to_string(),
        "Experiments".to_string(),
        "Time [s]".to_string(),
        "vs EM".to_string(),
        "Suggested configuration".to_string(),
    ];
    println!("{}", format_table(&headers, &rows));

    println!(
        "note: SAML evaluates roughly {:.1} % of the configurations EM enumerates, the paper's headline result.",
        100.0 * budget as f64 / 19_926.0
    );
}
