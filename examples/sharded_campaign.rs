//! Sharded multi-node campaign with a persistent result store.
//!
//! Partitions the paper's 19 926-configuration enumeration grid across four simulated
//! nodes, evaluates every shard through the batched path, and records each result into
//! an on-disk JSON-lines store.  Run the example twice: the second run finds every
//! configuration already recorded and finishes without a single new experiment.
//!
//! ```sh
//! cargo run --release --example sharded_campaign
//! cargo run --release --example sharded_campaign   # resumes for free
//! ```

use std::time::Instant;

use workdist::autotune::{
    campaign_context, ConfigurationSpace, MeasurementEvaluator, MethodKind, SystemConfiguration,
};
use workdist::dist::{JsonlStore, ResultStore, ShardedCampaign};
use workdist::dna::Genome;
use workdist::opt::CountingObjective;
use workdist::platform::HeterogeneousPlatform;

fn main() {
    let platform = HeterogeneousPlatform::emil();
    let workload = Genome::Human.workload();
    // the context stamp binds the store to this (method, workload) campaign: a later
    // campaign over a different objective is refused instead of served stale energies
    let context = campaign_context(MethodKind::Em, &workload);
    let evaluator = MeasurementEvaluator::new(platform, workload);
    let grid = ConfigurationSpace::enumeration_grid();

    let path = std::env::temp_dir().join("workdist-sharded-campaign.jsonl");
    let store: JsonlStore<SystemConfiguration> =
        JsonlStore::open_with_context(&path, &context).expect("open the result store");
    let already_recorded = store.len();

    let counting = CountingObjective::new(&evaluator);
    let campaign = ShardedCampaign::new(4);
    let start = Instant::now();
    let outcome = campaign
        .run(&grid, &counting, &store)
        .expect("run the sharded campaign");
    let elapsed = start.elapsed();

    println!(
        "4-shard campaign over {} configurations finished in {elapsed:.2?}",
        outcome.evaluations
    );
    println!(
        "  store: {} ({already_recorded} records warm, {} now)",
        path.display(),
        store.len()
    );
    println!(
        "  this run: {} fresh experiments, {} answered by the store ({:.1} % hit rate)",
        outcome.experiments(),
        outcome.stats.hits,
        100.0 * outcome.stats.hit_rate()
    );
    for shard in &outcome.shards {
        println!(
            "    node {}: configurations {:>5}..{:<5} best {:.4} s ({} misses)",
            shard.shard_index,
            shard.range.start,
            shard.range.end,
            shard.best_energy,
            shard.stats.misses
        );
    }
    println!(
        "  best configuration: {} -> {:.4} s (global index {})",
        outcome.best_config, outcome.best_energy, outcome.best_index
    );
    if outcome.experiments() == 0 {
        println!("  campaign was answered entirely from the warm store — resume for free.");
    } else {
        println!("  re-run this example: the campaign will resume from the store for free.");
    }
}
