//! DNA partitioning end-to-end: run the *real* finite-automata matcher on a synthetic
//! genome, split the sequence between a "host" share and a "device" share exactly as
//! the offload scheme of the paper would, and verify that the partitioned scan finds
//! the same motif occurrences as a single scan.  Then use the autotuner to pick the
//! split ratio for the full-size genome.
//!
//! Run with:
//! ```text
//! cargo run --release --example dna_partitioning
//! ```

use workdist::autotune::{Autotuner, MethodKind};
use workdist::dna::{DfaMatcher, Genome, MotifSet, ParallelScanner};

fn main() {
    // --- 1. the application itself: motif scanning on an in-memory genome ------------
    let motifs = MotifSet::parse(&["TATAAA", "GGCCAATCT", "GAATTC", "CANNTG"]).unwrap();
    let matcher = DfaMatcher::compile(&motifs);
    println!(
        "compiled {} motifs into a DFA with {} states ({} bytes of tables)",
        motifs.len(),
        matcher.dfa().state_count(),
        matcher.dfa().table_bytes()
    );

    // a 1:200 scale synthetic mouse genome (~14 MB) so the example runs in memory
    let genome = Genome::Mouse;
    let sequence = genome.synthesize(200);
    println!(
        "synthesized {} sequence: {:.1} MB (nominal size {:.2} GB), GC content {:.1} %",
        genome,
        sequence.len() as f64 / 1e6,
        genome.nominal_bytes() as f64 / 1e9,
        sequence.gc_content() * 100.0
    );

    let scanner = ParallelScanner::new(4);
    let total = scanner.count_matches(&matcher, sequence.bases());
    println!("total motif occurrences: {total}");

    // --- 2. split the scan as the offload scheme would --------------------------------
    for host_percent in [100u32, 70, 50, 30, 0] {
        let (host_matches, device_matches) =
            scanner.count_matches_split(&matcher, sequence.bases(), host_percent as f64 / 100.0);
        assert_eq!(
            host_matches + device_matches,
            total,
            "no matches lost at the boundary"
        );
        println!(
            "  split {host_percent:>3}/{:<3}: host finds {host_matches:>6}, device finds {device_matches:>6}",
            100 - host_percent
        );
    }

    // --- 3. let the autotuner pick the ratio for the full-size genome ----------------
    let mut tuner = Autotuner::quick_setup(7).with_workload(genome.workload());
    let outcome = tuner.run(MethodKind::Saml, 800).expect("training succeeds");
    println!(
        "\nfor the full {:.2} GB {} sequence the autotuner suggests:\n  {}",
        genome.nominal_bytes() as f64 / 1e9,
        genome,
        outcome.best_config
    );
    let speedup = tuner.speedup(&outcome);
    println!(
        "  estimated time {:.3} s  ({:.2}x vs host-only, {:.2}x vs device-only)",
        outcome.measured_energy,
        speedup.speedup_vs_host(),
        speedup.speedup_vs_device()
    );
}
