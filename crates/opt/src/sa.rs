//! Simulated Annealing (the paper's space-exploration heuristic, Fig. 3).
//!
//! The algorithm follows the structure of the paper's flow chart:
//!
//! 1. set an initial temperature and a random initial solution;
//! 2. repeatedly generate a neighbour of the current solution, evaluate its energy
//!    `E'` and accept it if `E' < E` or with probability `p = exp((E − E') / T)`
//!    (Eq. 4);
//! 3. cool down `T ← T · (1 − coolingRate)` (Eq. 3) and stop once `T` drops below the
//!    stop temperature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wd_obs::{NoopRecorder, Recorder};

use crate::delta::{DeltaObjective, FullDelta};
use crate::objective::Objective;
use crate::outcome::Outcome;
use crate::schedule::CoolingSchedule;
use crate::space::SearchSpace;
use crate::trace::{IterationRecord, OptimizationTrace};

/// Simulated-annealing optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedAnnealing {
    /// Initial temperature `T₀`.
    pub initial_temperature: f64,
    /// The run stops when the temperature drops below this value (the paper uses 1).
    pub stop_temperature: f64,
    /// Cooling schedule (the paper uses geometric cooling).
    pub schedule: CoolingSchedule,
    /// Hard cap on iterations (safety net for schedules that cool very slowly).
    pub max_iterations: usize,
    /// RNG seed; two runs with the same seed explore identically.
    pub seed: u64,
}

impl SimulatedAnnealing {
    /// The paper's default configuration: `T₀ = 1000`, stop at `T < 1`, geometric
    /// cooling with a rate chosen so the run performs roughly 2 000 iterations.
    pub fn paper_default(seed: u64) -> Self {
        Self::with_iteration_budget(2000, 1000.0, seed)
    }

    /// Construct a run that performs (approximately) `iterations` iterations by fixing
    /// `T₀` and deriving the geometric cooling rate (stop temperature 1, as in the
    /// paper's flow chart).
    pub fn with_iteration_budget(iterations: usize, initial_temperature: f64, seed: u64) -> Self {
        Self::with_budget_and_range(iterations, initial_temperature, 1.0, seed)
    }

    /// Construct a run that performs (approximately) `iterations` iterations cooling
    /// geometrically from `initial_temperature` down to `stop_temperature`.
    ///
    /// The temperature should be on the scale of typical *energy differences* between
    /// neighbouring configurations: the annealer explores while `T` is above that scale
    /// and becomes greedy once `T` falls below it.  For objectives measured in seconds
    /// with differences of a few hundredths of a second, a range like `2.0 → 0.02`
    /// works well.
    pub fn with_budget_and_range(
        iterations: usize,
        initial_temperature: f64,
        stop_temperature: f64,
        seed: u64,
    ) -> Self {
        let iterations = iterations.max(1);
        SimulatedAnnealing {
            initial_temperature,
            stop_temperature,
            schedule: CoolingSchedule::geometric_for_budget(
                iterations,
                initial_temperature,
                stop_temperature,
            ),
            max_iterations: iterations + 16,
            seed,
        }
    }

    /// Replace the cooling schedule.
    pub fn with_schedule(mut self, schedule: CoolingSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Run the optimizer on `space` with objective `objective`, re-scoring every
    /// proposal from scratch.
    ///
    /// This is [`SimulatedAnnealing::run_delta`] behind the full-evaluation adapter
    /// ([`FullDelta`]), so the two entry points share one loop and — for a correct
    /// [`DeltaObjective`] — produce bit-identical trajectories.
    pub fn run<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: Objective<S::Config> + ?Sized,
    {
        self.run_delta(space, &FullDelta::new(objective))
    }

    /// [`SimulatedAnnealing::run`] with every iteration published to `recorder` under
    /// `scope` (see [`SimulatedAnnealing::run_delta_observed`]).
    pub fn run_observed<S, O>(
        &self,
        space: &S,
        objective: &O,
        recorder: &dyn Recorder,
        scope: &str,
    ) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: Objective<S::Config> + ?Sized,
    {
        self.run_delta_observed(space, &FullDelta::new(objective), recorder, scope)
    }

    /// Run the optimizer with an incrementally evaluable objective: each proposal is
    /// scored through [`DeltaObjective::evaluate_move`], which recomputes only the
    /// components the neighbour move touched (reported by
    /// [`SearchSpace::neighbor_move`]) — for a separable objective like the
    /// work-distribution energy this makes the per-move cost O(1) component
    /// evaluations instead of one per component.
    pub fn run_delta<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: DeltaObjective<S::Config> + ?Sized,
    {
        self.run_delta_observed(space, objective, &NoopRecorder, "sa")
    }

    /// [`SimulatedAnnealing::run_delta`] with every iteration published to `recorder`
    /// under `scope` as a [`wd_obs::IterationEvent`] carrying exactly the values of
    /// the corresponding [`IterationRecord`].
    ///
    /// The recorder only observes — it is consulted *after* each trace record is
    /// produced and never touches the RNG stream — so the trajectory is bit-identical
    /// to the unobserved run for every recorder.  With the disabled
    /// [`NoopRecorder`] (which is what [`SimulatedAnnealing::run_delta`] passes), the
    /// per-iteration cost is one virtual `enabled()` call.
    pub fn run_delta_observed<S, O>(
        &self,
        space: &S,
        objective: &O,
        recorder: &dyn Recorder,
        scope: &str,
    ) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: DeltaObjective<S::Config> + ?Sized,
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = OptimizationTrace::new();
        let mut evaluations = 0usize;

        let mut current = space.random(&mut rng);
        evaluations += 1;
        let (mut current_energy, mut current_state) = objective.evaluate_with_state(&current);
        let mut best = current.clone();
        let mut best_energy = current_energy;

        let mut temperature = self.initial_temperature;
        let mut iteration = 0usize;

        while temperature >= self.stop_temperature && iteration < self.max_iterations {
            let (proposal, touched) = space.neighbor_move(&current, &mut rng);
            evaluations += 1;
            let (proposal_energy, proposal_state) =
                objective.evaluate_move(&current, &current_state, &proposal, &touched);

            let accepted = if proposal_energy < current_energy {
                true
            } else {
                // Metropolis criterion (Eq. 4): p = exp((E - E') / T)
                let p =
                    ((current_energy - proposal_energy) / temperature.max(f64::MIN_POSITIVE)).exp();
                rng.gen_bool(p.clamp(0.0, 1.0))
            };

            if accepted {
                current = proposal;
                current_energy = proposal_energy;
                current_state = proposal_state;
                if current_energy < best_energy {
                    best = current.clone();
                    best_energy = current_energy;
                }
            }

            let record = IterationRecord {
                iteration,
                proposed_energy: proposal_energy,
                current_energy,
                best_energy,
                temperature,
                accepted,
            };
            trace.push(record);
            if recorder.enabled() {
                recorder.iteration(scope, record.into());
            }

            temperature =
                self.schedule
                    .next_temperature(self.initial_temperature, temperature, iteration);
            iteration += 1;
        }

        Outcome {
            best_config: best,
            best_energy,
            evaluations,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GridSpace;

    /// Rastrigin-like rugged objective on the grid with the global optimum at (37, 91).
    fn rugged(config: &(u32, u32)) -> f64 {
        let dx = config.0 as f64 - 37.0;
        let dy = config.1 as f64 - 91.0;
        dx * dx + dy * dy + 20.0 * ((dx * 0.7).sin().abs() + (dy * 0.9).sin().abs())
    }

    #[test]
    fn finds_a_near_optimal_solution_on_a_rugged_landscape() {
        let space = GridSpace {
            width: 128,
            height: 128,
        };
        let sa = SimulatedAnnealing::with_iteration_budget(4000, 500.0, 11);
        let outcome = sa.run(&space, &rugged);
        // global optimum value is 0; random configurations average in the thousands
        assert!(
            outcome.best_energy < 150.0,
            "SA should land near the optimum, got {}",
            outcome.best_energy
        );
        assert!(outcome.evaluations <= 4000 + 32);
        assert_eq!(outcome.trace.len() + 1, outcome.evaluations);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let space = GridSpace {
            width: 64,
            height: 64,
        };
        for budget in [100usize, 500, 1000] {
            let sa = SimulatedAnnealing::with_iteration_budget(budget, 1000.0, 3);
            let outcome = sa.run(&space, &rugged);
            let got = outcome.trace.len();
            assert!(
                got.abs_diff(budget) <= budget / 50 + 2,
                "budget {budget} produced {got} iterations"
            );
        }
    }

    #[test]
    fn best_energy_series_is_non_increasing() {
        let space = GridSpace {
            width: 100,
            height: 100,
        };
        let sa = SimulatedAnnealing::with_iteration_budget(1500, 200.0, 5);
        let outcome = sa.run(&space, &rugged);
        let series = outcome.trace.best_energy_series();
        for pair in series.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12);
        }
        assert_eq!(*series.last().unwrap(), outcome.best_energy);
    }

    #[test]
    fn same_seed_reproduces_same_run() {
        let space = GridSpace {
            width: 80,
            height: 80,
        };
        let sa = SimulatedAnnealing::with_iteration_budget(800, 300.0, 42);
        let a = sa.run(&space, &rugged);
        let b = sa.run(&space, &rugged);
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.trace.records().len(), b.trace.records().len());

        let c = SimulatedAnnealing::with_iteration_budget(800, 300.0, 43).run(&space, &rugged);
        assert!(
            c.trace.records() != a.trace.records(),
            "different seeds should differ"
        );
    }

    #[test]
    fn accepts_worse_solutions_at_high_temperature() {
        let space = GridSpace {
            width: 50,
            height: 50,
        };
        let sa = SimulatedAnnealing::with_iteration_budget(2000, 2000.0, 9);
        let outcome = sa.run(&space, &rugged);
        let records = outcome.trace.records();
        let first_quarter = &records[..records.len() / 4];
        let last_quarter = &records[3 * records.len() / 4..];
        let uphill_accepts = |rs: &[IterationRecord]| {
            rs.iter()
                .filter(|r| r.accepted && r.proposed_energy > r.best_energy)
                .count() as f64
                / rs.len() as f64
        };
        assert!(
            uphill_accepts(first_quarter) > uphill_accepts(last_quarter),
            "uphill moves should become rarer as the system cools"
        );
    }

    #[test]
    fn more_iterations_do_not_hurt_solution_quality_on_average() {
        let space = GridSpace {
            width: 256,
            height: 256,
        };
        let average_energy = |budget: usize| -> f64 {
            (0..8)
                .map(|seed| {
                    SimulatedAnnealing::with_iteration_budget(budget, 500.0, seed)
                        .run(&space, &rugged)
                        .best_energy
                })
                .sum::<f64>()
                / 8.0
        };
        let short = average_energy(150);
        let long = average_energy(3000);
        assert!(
            long <= short,
            "3000-iteration runs ({long}) should on average beat 150-iteration runs ({short})"
        );
    }
}
