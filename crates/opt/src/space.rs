//! The search-space abstraction.

use rand::rngs::StdRng;
use rand::Rng;

use crate::delta::Touched;

/// A discrete configuration space that heuristics can sample and perturb.
///
/// Implementations describe *how the space looks* (random configurations, neighbour
/// moves, optional exhaustive enumeration); they know nothing about the objective.
pub trait SearchSpace {
    /// The configuration type.
    type Config: Clone;

    /// Draw a uniformly random configuration.
    fn random(&self, rng: &mut StdRng) -> Self::Config;

    /// Produce a configuration "close to" `config` (one or a few parameters changed).
    fn neighbor(&self, config: &Self::Config, rng: &mut StdRng) -> Self::Config;

    /// Like [`SearchSpace::neighbor`], but also describe which configuration
    /// *components* the move touched (see [`Touched`] for the indexing convention),
    /// which lets [`crate::DeltaObjective`]s re-score the move incrementally.
    ///
    /// The default implementation delegates to `neighbor` and reports
    /// [`Touched::Unknown`].  Overrides **must consume exactly the same RNG draws as
    /// `neighbor`** (the easiest way is to implement the move once, in
    /// `neighbor_move`, and have `neighbor` discard the `Touched` half), so that the
    /// incremental drivers replay the classic trajectories bit for bit; the reported
    /// set may over-approximate but must cover every component that changed.
    fn neighbor_move(&self, config: &Self::Config, rng: &mut StdRng) -> (Self::Config, Touched) {
        (self.neighbor(config, rng), Touched::Unknown)
    }

    /// Number of distinct configurations, when known and finite.
    fn cardinality(&self) -> Option<u128> {
        None
    }

    /// Exhaustively enumerate the space, when supported.  Methods that require
    /// enumeration (the paper's EM and EML) return an error for spaces that do not
    /// provide it.
    ///
    /// This is the *fallback* contract: spaces that can serve their enumeration order
    /// by index should implement [`SearchSpace::space_len`] and
    /// [`SearchSpace::config_at`] instead, which lets the enumeration drivers stream
    /// configurations in fixed-size chunks without ever materialising this `Vec`.
    fn enumerate(&self) -> Option<Vec<Self::Config>> {
        None
    }

    /// Number of configurations reachable through [`SearchSpace::config_at`], when the
    /// space supports indexed (lazy) access to its enumeration order.
    ///
    /// Returning `Some(n)` is a contract: `config_at(i)` must return `Some` for every
    /// `i < n` and `None` for `i >= n`, and the sequence `config_at(0), ...,
    /// config_at(n - 1)` must be exactly the [`SearchSpace::enumerate`] sequence
    /// whenever both are provided.  Drivers prefer this path: it bounds peak
    /// allocation by their chunk size instead of the space cardinality.
    fn space_len(&self) -> Option<usize> {
        None
    }

    /// The configuration at position `index` of the enumeration order, when the space
    /// supports indexed access (see [`SearchSpace::space_len`]).
    fn config_at(&self, index: usize) -> Option<Self::Config> {
        let _ = index;
        None
    }

    /// Recombine two parent configurations (used by the genetic algorithm).  The
    /// default implementation returns one of the parents unchanged, which degrades the
    /// GA into a mutation-only evolutionary algorithm but keeps the trait easy to
    /// implement.
    fn crossover(
        &self,
        parent_a: &Self::Config,
        parent_b: &Self::Config,
        rng: &mut StdRng,
    ) -> Self::Config {
        if rng.gen_bool(0.5) {
            parent_a.clone()
        } else {
            parent_b.clone()
        }
    }

    /// Like [`SearchSpace::crossover`], but also describe which configuration
    /// components of the child may differ from the **first** parent (`parent_a`)
    /// — the two-parent merge footprint, the recombination analogue of
    /// [`SearchSpace::neighbor_move`].  A [`crate::DeltaObjective`] holding
    /// `parent_a`'s evaluation state can then re-score the child by recomputing
    /// only the components it inherited from `parent_b`.
    ///
    /// The default implementation delegates to `crossover` and reports
    /// [`Touched::Unknown`].  Overrides **must consume exactly the same RNG
    /// draws as `crossover`** (implement the recombination once, here, and have
    /// `crossover` discard the footprint) so the incremental GA driver replays
    /// the classic trajectories bit for bit; the reported set may
    /// over-approximate but must cover every component where the child differs
    /// from `parent_a`.
    fn crossover_move(
        &self,
        parent_a: &Self::Config,
        parent_b: &Self::Config,
        rng: &mut StdRng,
    ) -> (Self::Config, Touched) {
        (self.crossover(parent_a, parent_b, rng), Touched::Unknown)
    }
}

/// A small, fully enumerable test space used by the crate's own unit tests: the grid
/// `{0..width} x {0..height}` with ±1 neighbourhood moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpace {
    /// Exclusive upper bound of the first coordinate.
    pub width: u32,
    /// Exclusive upper bound of the second coordinate.
    pub height: u32,
}

impl SearchSpace for GridSpace {
    type Config = (u32, u32);

    fn random(&self, rng: &mut StdRng) -> Self::Config {
        (rng.gen_range(0..self.width), rng.gen_range(0..self.height))
    }

    fn neighbor(&self, config: &Self::Config, rng: &mut StdRng) -> Self::Config {
        self.neighbor_move(config, rng).0
    }

    /// The ±1 move plus its exact footprint (component 0 = x, component 1 = y),
    /// generated once so `neighbor` consumes the same RNG draws.
    fn neighbor_move(&self, config: &Self::Config, rng: &mut StdRng) -> (Self::Config, Touched) {
        let (x, y) = *config;
        let dx: i64 = rng.gen_range(-1..=1);
        let dy: i64 = rng.gen_range(-1..=1);
        let next = (
            (x as i64 + dx).clamp(0, self.width as i64 - 1) as u32,
            (y as i64 + dy).clamp(0, self.height as i64 - 1) as u32,
        );
        let mut touched = Vec::new();
        if next.0 != x {
            touched.push(0);
        }
        if next.1 != y {
            touched.push(1);
        }
        (next, Touched::Components(touched))
    }

    fn cardinality(&self) -> Option<u128> {
        Some(self.width as u128 * self.height as u128)
    }

    fn enumerate(&self) -> Option<Vec<Self::Config>> {
        let mut all = Vec::with_capacity((self.width * self.height) as usize);
        for x in 0..self.width {
            for y in 0..self.height {
                all.push((x, y));
            }
        }
        Some(all)
    }

    fn space_len(&self) -> Option<usize> {
        Some(self.width as usize * self.height as usize)
    }

    fn config_at(&self, index: usize) -> Option<Self::Config> {
        if index >= self.width as usize * self.height as usize {
            return None;
        }
        // x-major, y-minor: the `enumerate` order
        Some((
            (index / self.height as usize) as u32,
            (index % self.height as usize) as u32,
        ))
    }

    fn crossover(
        &self,
        parent_a: &Self::Config,
        parent_b: &Self::Config,
        rng: &mut StdRng,
    ) -> Self::Config {
        self.crossover_move(parent_a, parent_b, rng).0
    }

    /// Uniform per-coordinate crossover plus its exact footprint relative to
    /// `parent_a` (component 0 = x, component 1 = y), generated once so
    /// `crossover` consumes the same RNG draws.
    fn crossover_move(
        &self,
        parent_a: &Self::Config,
        parent_b: &Self::Config,
        rng: &mut StdRng,
    ) -> (Self::Config, Touched) {
        let child = (
            if rng.gen_bool(0.5) {
                parent_a.0
            } else {
                parent_b.0
            },
            if rng.gen_bool(0.5) {
                parent_a.1
            } else {
                parent_b.1
            },
        );
        let mut touched = Vec::new();
        if child.0 != parent_a.0 {
            touched.push(0);
        }
        if child.1 != parent_a.1 {
            touched.push(1);
        }
        (child, Touched::Components(touched))
    }
}

/// Instrumentation wrapper around any [`SearchSpace`]: counts how often the wrapped
/// space is asked to materialise its full enumeration ([`SearchSpace::enumerate`])
/// versus serve single configurations by index ([`SearchSpace::config_at`]).
///
/// Tests and benches use it to *prove* that the streaming drivers never materialise a
/// lazy space: after a run, [`InstrumentedSpace::enumerate_calls`] must be zero and
/// every configuration must have flowed through `config_at` one chunk at a time.
pub struct InstrumentedSpace<'a, S> {
    inner: &'a S,
    enumerate_calls: std::sync::atomic::AtomicUsize,
    config_at_calls: std::sync::atomic::AtomicUsize,
}

impl<'a, S> InstrumentedSpace<'a, S> {
    /// Wrap a space with zeroed counters.
    pub fn new(inner: &'a S) -> Self {
        InstrumentedSpace {
            inner,
            enumerate_calls: std::sync::atomic::AtomicUsize::new(0),
            config_at_calls: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// How many times the full enumeration `Vec` was materialised.
    pub fn enumerate_calls(&self) -> usize {
        self.enumerate_calls
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// How many single configurations were served by index.
    pub fn config_at_calls(&self) -> usize {
        self.config_at_calls
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl<S: SearchSpace> SearchSpace for InstrumentedSpace<'_, S> {
    type Config = S::Config;

    fn random(&self, rng: &mut StdRng) -> S::Config {
        self.inner.random(rng)
    }

    fn neighbor(&self, config: &S::Config, rng: &mut StdRng) -> S::Config {
        self.inner.neighbor(config, rng)
    }

    fn neighbor_move(&self, config: &S::Config, rng: &mut StdRng) -> (S::Config, Touched) {
        self.inner.neighbor_move(config, rng)
    }

    fn cardinality(&self) -> Option<u128> {
        self.inner.cardinality()
    }

    fn enumerate(&self) -> Option<Vec<S::Config>> {
        self.enumerate_calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.enumerate()
    }

    fn space_len(&self) -> Option<usize> {
        self.inner.space_len()
    }

    fn config_at(&self, index: usize) -> Option<S::Config> {
        self.config_at_calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.config_at(index)
    }

    fn crossover(&self, parent_a: &S::Config, parent_b: &S::Config, rng: &mut StdRng) -> S::Config {
        self.inner.crossover(parent_a, parent_b, rng)
    }

    fn crossover_move(
        &self,
        parent_a: &S::Config,
        parent_b: &S::Config,
        rng: &mut StdRng,
    ) -> (S::Config, Touched) {
        self.inner.crossover_move(parent_a, parent_b, rng)
    }
}

/// Adapter that hides a space's indexed access ([`SearchSpace::space_len`] /
/// [`SearchSpace::config_at`] report `None`), forcing drivers onto the materialising
/// [`SearchSpace::enumerate`] fallback.
///
/// Exists for benches and tests that compare the streaming fast path against the
/// classic full-`Vec` enumeration on the *same* space.
#[derive(Debug, Clone, Copy)]
pub struct MaterializedOnly<'a, S>(&'a S);

impl<'a, S> MaterializedOnly<'a, S> {
    /// Hide `inner`'s indexed access.
    pub fn new(inner: &'a S) -> Self {
        MaterializedOnly(inner)
    }
}

impl<S: SearchSpace> SearchSpace for MaterializedOnly<'_, S> {
    type Config = S::Config;

    fn random(&self, rng: &mut StdRng) -> S::Config {
        self.0.random(rng)
    }

    fn neighbor(&self, config: &S::Config, rng: &mut StdRng) -> S::Config {
        self.0.neighbor(config, rng)
    }

    fn neighbor_move(&self, config: &S::Config, rng: &mut StdRng) -> (S::Config, Touched) {
        self.0.neighbor_move(config, rng)
    }

    fn cardinality(&self) -> Option<u128> {
        self.0.cardinality()
    }

    fn enumerate(&self) -> Option<Vec<S::Config>> {
        self.0.enumerate()
    }

    fn crossover(&self, parent_a: &S::Config, parent_b: &S::Config, rng: &mut StdRng) -> S::Config {
        self.0.crossover(parent_a, parent_b, rng)
    }

    fn crossover_move(
        &self,
        parent_a: &S::Config,
        parent_b: &S::Config,
        rng: &mut StdRng,
    ) -> (S::Config, Touched) {
        self.0.crossover_move(parent_a, parent_b, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn grid_space_samples_within_bounds() {
        let space = GridSpace {
            width: 7,
            height: 3,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let (x, y) = space.random(&mut rng);
            assert!(x < 7 && y < 3);
        }
    }

    #[test]
    fn grid_neighbors_stay_close_and_in_bounds() {
        let space = GridSpace {
            width: 5,
            height: 5,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut config = (2u32, 2u32);
        for _ in 0..500 {
            let next = space.neighbor(&config, &mut rng);
            assert!((next.0 as i64 - config.0 as i64).abs() <= 1);
            assert!((next.1 as i64 - config.1 as i64).abs() <= 1);
            assert!(next.0 < 5 && next.1 < 5);
            config = next;
        }
    }

    #[test]
    fn grid_enumeration_matches_cardinality() {
        let space = GridSpace {
            width: 6,
            height: 4,
        };
        let all = space.enumerate().unwrap();
        assert_eq!(all.len() as u128, space.cardinality().unwrap());
        // no duplicates
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }

    #[test]
    fn grid_indexed_access_matches_enumeration_order() {
        let space = GridSpace {
            width: 6,
            height: 4,
        };
        let all = space.enumerate().unwrap();
        assert_eq!(space.space_len(), Some(all.len()));
        for (index, config) in all.iter().enumerate() {
            assert_eq!(space.config_at(index), Some(*config));
        }
        assert_eq!(space.config_at(all.len()), None);
    }

    #[test]
    fn instrumented_space_counts_both_access_paths() {
        let space = GridSpace {
            width: 3,
            height: 3,
        };
        let instrumented = InstrumentedSpace::new(&space);
        assert_eq!(instrumented.enumerate_calls(), 0);
        assert_eq!(instrumented.config_at_calls(), 0);
        assert_eq!(instrumented.space_len(), Some(9));
        let _ = instrumented.config_at(4);
        let _ = instrumented.config_at(5);
        let _ = instrumented.enumerate();
        assert_eq!(instrumented.config_at_calls(), 2);
        assert_eq!(instrumented.enumerate_calls(), 1);
        assert_eq!(instrumented.cardinality(), Some(9));
    }

    #[test]
    fn materialized_only_hides_indexed_access() {
        let space = GridSpace {
            width: 3,
            height: 3,
        };
        let hidden = MaterializedOnly::new(&space);
        assert_eq!(hidden.space_len(), None);
        assert_eq!(hidden.config_at(0), None);
        assert_eq!(hidden.enumerate(), space.enumerate());
        assert_eq!(hidden.cardinality(), Some(9));
    }

    #[test]
    fn default_crossover_returns_one_parent() {
        struct Unit;
        impl SearchSpace for Unit {
            type Config = u8;
            fn random(&self, _rng: &mut StdRng) -> u8 {
                0
            }
            fn neighbor(&self, c: &u8, _rng: &mut StdRng) -> u8 {
                *c
            }
        }
        let mut rng = StdRng::seed_from_u64(3);
        let child = Unit.crossover(&1, &2, &mut rng);
        assert!(child == 1 || child == 2);
        assert_eq!(Unit.cardinality(), None);
        assert!(Unit.enumerate().is_none());
    }

    #[test]
    fn grid_crossover_move_footprint_is_sound() {
        let space = GridSpace {
            width: 10,
            height: 10,
        };
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..200u32 {
            let parent_a = (i % 10, (i * 3) % 10);
            let parent_b = ((i * 7) % 10, (i * 9 + 1) % 10);
            let (child, touched) = space.crossover_move(&parent_a, &parent_b, &mut rng);
            // every component not listed must equal the first parent's
            if !touched.may_touch(0) {
                assert_eq!(child.0, parent_a.0);
            }
            if !touched.may_touch(1) {
                assert_eq!(child.1, parent_a.1);
            }
        }
        // crossover and crossover_move consume the same RNG draws
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let child = space.crossover(&(0, 0), &(9, 9), &mut rng_a);
            let (child_move, _) = space.crossover_move(&(0, 0), &(9, 9), &mut rng_b);
            assert_eq!(child, child_move);
        }
    }

    #[test]
    fn grid_crossover_mixes_coordinates() {
        let space = GridSpace {
            width: 10,
            height: 10,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut saw_mix = false;
        for _ in 0..100 {
            let child = space.crossover(&(0, 0), &(9, 9), &mut rng);
            assert!(child == (0, 0) || child == (9, 9) || child == (0, 9) || child == (9, 0));
            if child == (0, 9) || child == (9, 0) {
                saw_mix = true;
            }
        }
        assert!(
            saw_mix,
            "uniform crossover should sometimes mix coordinates"
        );
    }
}
