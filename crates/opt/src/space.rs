//! The search-space abstraction.

use rand::rngs::StdRng;
use rand::Rng;

/// A discrete configuration space that heuristics can sample and perturb.
///
/// Implementations describe *how the space looks* (random configurations, neighbour
/// moves, optional exhaustive enumeration); they know nothing about the objective.
pub trait SearchSpace {
    /// The configuration type.
    type Config: Clone;

    /// Draw a uniformly random configuration.
    fn random(&self, rng: &mut StdRng) -> Self::Config;

    /// Produce a configuration "close to" `config` (one or a few parameters changed).
    fn neighbor(&self, config: &Self::Config, rng: &mut StdRng) -> Self::Config;

    /// Number of distinct configurations, when known and finite.
    fn cardinality(&self) -> Option<u128> {
        None
    }

    /// Exhaustively enumerate the space, when supported.  Methods that require
    /// enumeration (the paper's EM and EML) return an error for spaces that do not
    /// provide it.
    fn enumerate(&self) -> Option<Vec<Self::Config>> {
        None
    }

    /// Recombine two parent configurations (used by the genetic algorithm).  The
    /// default implementation returns one of the parents unchanged, which degrades the
    /// GA into a mutation-only evolutionary algorithm but keeps the trait easy to
    /// implement.
    fn crossover(
        &self,
        parent_a: &Self::Config,
        parent_b: &Self::Config,
        rng: &mut StdRng,
    ) -> Self::Config {
        if rng.gen_bool(0.5) {
            parent_a.clone()
        } else {
            parent_b.clone()
        }
    }
}

/// A small, fully enumerable test space used by the crate's own unit tests: the grid
/// `{0..width} x {0..height}` with ±1 neighbourhood moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpace {
    /// Exclusive upper bound of the first coordinate.
    pub width: u32,
    /// Exclusive upper bound of the second coordinate.
    pub height: u32,
}

impl SearchSpace for GridSpace {
    type Config = (u32, u32);

    fn random(&self, rng: &mut StdRng) -> Self::Config {
        (rng.gen_range(0..self.width), rng.gen_range(0..self.height))
    }

    fn neighbor(&self, config: &Self::Config, rng: &mut StdRng) -> Self::Config {
        let (x, y) = *config;
        let dx: i64 = rng.gen_range(-1..=1);
        let dy: i64 = rng.gen_range(-1..=1);
        (
            (x as i64 + dx).clamp(0, self.width as i64 - 1) as u32,
            (y as i64 + dy).clamp(0, self.height as i64 - 1) as u32,
        )
    }

    fn cardinality(&self) -> Option<u128> {
        Some(self.width as u128 * self.height as u128)
    }

    fn enumerate(&self) -> Option<Vec<Self::Config>> {
        let mut all = Vec::with_capacity((self.width * self.height) as usize);
        for x in 0..self.width {
            for y in 0..self.height {
                all.push((x, y));
            }
        }
        Some(all)
    }

    fn crossover(
        &self,
        parent_a: &Self::Config,
        parent_b: &Self::Config,
        rng: &mut StdRng,
    ) -> Self::Config {
        // uniform crossover per coordinate
        (
            if rng.gen_bool(0.5) {
                parent_a.0
            } else {
                parent_b.0
            },
            if rng.gen_bool(0.5) {
                parent_a.1
            } else {
                parent_b.1
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn grid_space_samples_within_bounds() {
        let space = GridSpace {
            width: 7,
            height: 3,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let (x, y) = space.random(&mut rng);
            assert!(x < 7 && y < 3);
        }
    }

    #[test]
    fn grid_neighbors_stay_close_and_in_bounds() {
        let space = GridSpace {
            width: 5,
            height: 5,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut config = (2u32, 2u32);
        for _ in 0..500 {
            let next = space.neighbor(&config, &mut rng);
            assert!((next.0 as i64 - config.0 as i64).abs() <= 1);
            assert!((next.1 as i64 - config.1 as i64).abs() <= 1);
            assert!(next.0 < 5 && next.1 < 5);
            config = next;
        }
    }

    #[test]
    fn grid_enumeration_matches_cardinality() {
        let space = GridSpace {
            width: 6,
            height: 4,
        };
        let all = space.enumerate().unwrap();
        assert_eq!(all.len() as u128, space.cardinality().unwrap());
        // no duplicates
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }

    #[test]
    fn default_crossover_returns_one_parent() {
        struct Unit;
        impl SearchSpace for Unit {
            type Config = u8;
            fn random(&self, _rng: &mut StdRng) -> u8 {
                0
            }
            fn neighbor(&self, c: &u8, _rng: &mut StdRng) -> u8 {
                *c
            }
        }
        let mut rng = StdRng::seed_from_u64(3);
        let child = Unit.crossover(&1, &2, &mut rng);
        assert!(child == 1 || child == 2);
        assert_eq!(Unit.cardinality(), None);
        assert!(Unit.enumerate().is_none());
    }

    #[test]
    fn grid_crossover_mixes_coordinates() {
        let space = GridSpace {
            width: 10,
            height: 10,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut saw_mix = false;
        for _ in 0..100 {
            let child = space.crossover(&(0, 0), &(9, 9), &mut rng);
            assert!(child == (0, 0) || child == (9, 9) || child == (0, 9) || child == (9, 0));
            if child == (0, 9) || child == (9, 0) {
                saw_mix = true;
            }
        }
        assert!(
            saw_mix,
            "uniform crossover should sometimes mix coordinates"
        );
    }
}
