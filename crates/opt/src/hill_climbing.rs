//! Random-restart hill climbing (a "local search" baseline, cf. Section III-A).

use rand::rngs::StdRng;
use rand::SeedableRng;
use wd_obs::{NoopRecorder, Recorder};

use crate::delta::{DeltaObjective, FullDelta};
use crate::objective::Objective;
use crate::outcome::Outcome;
use crate::space::SearchSpace;
use crate::trace::{IterationRecord, OptimizationTrace};

/// First-improvement hill climbing with random restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HillClimbing {
    /// Total evaluation budget across all restarts.
    pub max_evaluations: usize,
    /// Number of consecutive non-improving proposals after which the climber restarts
    /// from a fresh random configuration.
    pub patience: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HillClimbing {
    /// A climber with the given evaluation budget.
    pub fn with_budget(max_evaluations: usize, seed: u64) -> Self {
        HillClimbing {
            max_evaluations: max_evaluations.max(2),
            patience: 40,
            seed,
        }
    }

    /// Run the optimizer, re-scoring every proposal from scratch.
    ///
    /// This is [`HillClimbing::run_delta`] behind the full-evaluation adapter
    /// ([`FullDelta`]); the two entry points share one loop.
    pub fn run<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: Objective<S::Config> + ?Sized,
    {
        self.run_delta(space, &FullDelta::new(objective))
    }

    /// Run the optimizer with an incrementally evaluable objective: neighbour
    /// proposals are scored through [`DeltaObjective::evaluate_move`] against the
    /// current configuration's state (random restarts pay a full evaluation) —
    /// bit-identical to [`HillClimbing::run`] for a correct [`DeltaObjective`].
    pub fn run_delta<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: DeltaObjective<S::Config> + ?Sized,
    {
        self.run_delta_observed(space, objective, &NoopRecorder, "hill_climbing")
    }

    /// [`HillClimbing::run_delta`] with every iteration published to `recorder` under
    /// `scope`.  The recorder only observes (consulted after each trace record, no
    /// RNG draws), so trajectories are bit-identical to the unobserved run.
    pub fn run_delta_observed<S, O>(
        &self,
        space: &S,
        objective: &O,
        recorder: &dyn Recorder,
        scope: &str,
    ) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: DeltaObjective<S::Config> + ?Sized,
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = OptimizationTrace::new();
        let mut evaluations = 0usize;

        let mut current = space.random(&mut rng);
        evaluations += 1;
        let (mut current_energy, mut current_state) = objective.evaluate_with_state(&current);
        let mut best = current.clone();
        let mut best_energy = current_energy;
        let mut stale = 0usize;
        let mut iteration = 0usize;

        while evaluations < self.max_evaluations {
            let (proposal, touched) = space.neighbor_move(&current, &mut rng);
            evaluations += 1;
            let (proposal_energy, proposal_state) =
                objective.evaluate_move(&current, &current_state, &proposal, &touched);
            let accepted = proposal_energy < current_energy;
            if accepted {
                current = proposal;
                current_energy = proposal_energy;
                current_state = proposal_state;
                stale = 0;
                if current_energy < best_energy {
                    best = current.clone();
                    best_energy = current_energy;
                }
            } else {
                stale += 1;
            }

            let record = IterationRecord {
                iteration,
                proposed_energy: proposal_energy,
                current_energy,
                best_energy,
                temperature: 0.0,
                accepted,
            };
            trace.push(record);
            if recorder.enabled() {
                recorder.iteration(scope, record.into());
            }
            iteration += 1;

            if stale >= self.patience && evaluations < self.max_evaluations {
                current = space.random(&mut rng);
                evaluations += 1;
                let (energy, state) = objective.evaluate_with_state(&current);
                current_energy = energy;
                current_state = state;
                stale = 0;
                if current_energy < best_energy {
                    best = current.clone();
                    best_energy = current_energy;
                }
            }
        }

        Outcome {
            best_config: best,
            best_energy,
            evaluations,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GridSpace;

    fn bowl(config: &(u32, u32)) -> f64 {
        let dx = config.0 as f64 - 20.0;
        let dy = config.1 as f64 - 30.0;
        dx * dx + dy * dy
    }

    #[test]
    fn converges_on_a_convex_landscape() {
        let space = GridSpace {
            width: 64,
            height: 64,
        };
        let outcome = HillClimbing::with_budget(3000, 1).run(&space, &bowl);
        assert!(outcome.best_energy <= 2.0, "got {}", outcome.best_energy);
    }

    #[test]
    fn respects_the_evaluation_budget() {
        let space = GridSpace {
            width: 64,
            height: 64,
        };
        let outcome = HillClimbing::with_budget(500, 2).run(&space, &bowl);
        assert!(outcome.evaluations <= 501);
    }

    #[test]
    fn runs_are_reproducible() {
        let space = GridSpace {
            width: 64,
            height: 64,
        };
        let a = HillClimbing::with_budget(400, 9).run(&space, &bowl);
        let b = HillClimbing::with_budget(400, 9).run(&space, &bowl);
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.best_energy, b.best_energy);
    }
}
