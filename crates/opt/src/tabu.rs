//! Tabu search (one of the alternative heuristics mentioned in Section III-A).

use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wd_obs::{NoopRecorder, Recorder};

use crate::delta::{DeltaObjective, FullDelta};
use crate::objective::Objective;
use crate::outcome::Outcome;
use crate::space::SearchSpace;
use crate::trace::{IterationRecord, OptimizationTrace};

/// Tabu search: best-of-neighbourhood moves with a short-term memory that forbids
/// revisiting recently seen configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TabuSearch {
    /// Number of iterations (each iteration samples `neighbourhood` candidates).
    pub iterations: usize,
    /// Number of neighbour candidates sampled per iteration.
    pub neighbourhood: usize,
    /// Length of the tabu list.
    pub tabu_tenure: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TabuSearch {
    /// Reasonable defaults for the given iteration budget.
    pub fn with_budget(iterations: usize, seed: u64) -> Self {
        TabuSearch {
            iterations: iterations.max(1),
            neighbourhood: 8,
            tabu_tenure: 64,
            seed,
        }
    }

    /// Run the search, re-scoring every candidate from scratch.  Configurations must
    /// be hashable so the tabu list can store them.
    ///
    /// This is [`TabuSearch::run_delta`] behind the full-evaluation adapter
    /// ([`FullDelta`]); the two entry points share one loop.
    pub fn run<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        S::Config: Hash + Eq,
        O: Objective<S::Config> + ?Sized,
    {
        self.run_delta(space, &FullDelta::new(objective))
    }

    /// Run the search with an incrementally evaluable objective: every neighbourhood
    /// candidate is scored through [`DeltaObjective::evaluate_move`] against the
    /// current configuration's state (tabu restarts pay a full evaluation) —
    /// bit-identical to [`TabuSearch::run`] for a correct [`DeltaObjective`].
    pub fn run_delta<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        S::Config: Hash + Eq,
        O: DeltaObjective<S::Config> + ?Sized,
    {
        self.run_delta_observed(space, objective, &NoopRecorder, "tabu")
    }

    /// [`TabuSearch::run_delta`] with every iteration published to `recorder` under
    /// `scope`.  The recorder only observes (consulted after each trace record, no
    /// RNG draws), so trajectories are bit-identical to the unobserved run.
    pub fn run_delta_observed<S, O>(
        &self,
        space: &S,
        objective: &O,
        recorder: &dyn Recorder,
        scope: &str,
    ) -> Outcome<S::Config>
    where
        S: SearchSpace,
        S::Config: Hash + Eq,
        O: DeltaObjective<S::Config> + ?Sized,
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = OptimizationTrace::new();
        let mut evaluations = 0usize;

        let mut current = space.random(&mut rng);
        evaluations += 1;
        let (mut current_energy, mut current_state) = objective.evaluate_with_state(&current);
        let mut best = current.clone();
        let mut best_energy = current_energy;

        let mut tabu_set: HashSet<S::Config> = HashSet::new();
        let mut tabu_queue: VecDeque<S::Config> = VecDeque::new();
        tabu_set.insert(current.clone());
        tabu_queue.push_back(current.clone());

        for iteration in 0..self.iterations {
            // sample the neighbourhood and pick the best non-tabu candidate
            // (aspiration: a tabu candidate is allowed if it improves the global best)
            let mut chosen: Option<(S::Config, f64, O::State)> = None;
            for _ in 0..self.neighbourhood {
                let (candidate, touched) = space.neighbor_move(&current, &mut rng);
                evaluations += 1;
                let (energy, state) =
                    objective.evaluate_move(&current, &current_state, &candidate, &touched);
                let is_tabu = tabu_set.contains(&candidate);
                let aspirated = energy < best_energy;
                if is_tabu && !aspirated {
                    continue;
                }
                if chosen.as_ref().is_none_or(|(_, e, _)| energy < *e) {
                    chosen = Some((candidate, energy, state));
                }
            }

            let (next, next_energy, next_state) = match chosen {
                Some(triple) => triple,
                // the whole neighbourhood was tabu: restart from a random configuration
                None => {
                    let fresh = space.random(&mut rng);
                    evaluations += 1;
                    let (energy, state) = objective.evaluate_with_state(&fresh);
                    (fresh, energy, state)
                }
            };

            current = next;
            current_energy = next_energy;
            current_state = next_state;
            if current_energy < best_energy {
                best = current.clone();
                best_energy = current_energy;
            }

            if tabu_set.insert(current.clone()) {
                tabu_queue.push_back(current.clone());
                if tabu_queue.len() > self.tabu_tenure {
                    if let Some(expired) = tabu_queue.pop_front() {
                        tabu_set.remove(&expired);
                    }
                }
            }

            let record = IterationRecord {
                iteration,
                proposed_energy: current_energy,
                current_energy,
                best_energy,
                temperature: 0.0,
                accepted: true,
            };
            trace.push(record);
            if recorder.enabled() {
                recorder.iteration(scope, record.into());
            }
        }

        Outcome {
            best_config: best,
            best_energy,
            evaluations,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GridSpace;

    fn rugged(config: &(u32, u32)) -> f64 {
        let dx = config.0 as f64 - 45.0;
        let dy = config.1 as f64 - 17.0;
        dx * dx + dy * dy + 15.0 * ((dx * 0.8).sin().abs() + (dy * 0.6).sin().abs())
    }

    #[test]
    fn finds_a_good_solution() {
        let space = GridSpace {
            width: 96,
            height: 96,
        };
        let outcome = TabuSearch::with_budget(400, 7).run(&space, &rugged);
        assert!(outcome.best_energy < 120.0, "got {}", outcome.best_energy);
    }

    #[test]
    fn evaluations_scale_with_neighbourhood_size() {
        let space = GridSpace {
            width: 32,
            height: 32,
        };
        let search = TabuSearch {
            iterations: 50,
            neighbourhood: 4,
            tabu_tenure: 16,
            seed: 1,
        };
        let outcome = search.run(&space, &rugged);
        // 1 initial + <= iterations * neighbourhood (+ occasional restarts)
        assert!(outcome.evaluations >= 50);
        assert!(outcome.evaluations <= 1 + 50 * 5);
    }

    #[test]
    fn runs_are_reproducible() {
        let space = GridSpace {
            width: 64,
            height: 64,
        };
        let a = TabuSearch::with_budget(120, 3).run(&space, &rugged);
        let b = TabuSearch::with_budget(120, 3).run(&space, &rugged);
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.best_energy, b.best_energy);
    }
}
