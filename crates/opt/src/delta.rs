//! Incremental (delta) evaluation: the contract that lets local-search walks stop
//! re-scoring untouched parts of a configuration.
//!
//! A neighbour move changes one or two parameters of a configuration; when the
//! objective is *separable* — the energy composes per-component contributions, like the
//! work-distribution energy `E = max(T_host, max_d T_d)` where each device's time
//! depends only on that device's own parameters — re-scoring the whole configuration
//! wastes all but one of its component evaluations.  [`DeltaObjective`] captures the
//! incremental alternative: a full evaluation returns an opaque per-configuration
//! [`DeltaObjective::State`] (e.g. the per-device times), and every subsequent move is
//! scored by recomputing only the components the move *touched* and re-composing the
//! rest from the state.
//!
//! Which components a move touched is reported by
//! [`SearchSpace::neighbor_move`](crate::SearchSpace::neighbor_move) as a [`Touched`]
//! value.  The component indexing is a convention shared between the space and the
//! objective (for work distribution: component 0 is the host, component `i + 1` is
//! accelerator `i`); spaces that cannot describe their moves report
//! [`Touched::Unknown`], which delta objectives must treat as "anything may have
//! changed" (diff the configurations, or fall back to a full evaluation).
//!
//! The drivers ([`crate::SimulatedAnnealing::run_delta`],
//! [`crate::HillClimbing::run_delta`], [`crate::TabuSearch::run_delta`],
//! [`crate::GeneticAlgorithm::run_delta`]) are built so
//! that a correct `DeltaObjective` produces **bit-identical trajectories** to the full
//! re-evaluation path (`run`): same RNG stream, same accepted moves, same energies.
//! `run` itself is implemented through [`FullDelta`], the adapter that turns any
//! [`Objective`] into a (trivially non-incremental) `DeltaObjective`, so there is one
//! loop per driver, not two.

use crate::objective::Objective;

/// Which components of a configuration one neighbour move touched.
///
/// Component indices are a convention shared between the [`crate::SearchSpace`] that
/// produced the move and the [`DeltaObjective`] consuming it.  The set may
/// *over*-approximate (listing an unchanged component only costs a redundant
/// recomputation) but must never under-approximate: every component in which the two
/// configurations differ must be listed, or the recomposed energy is wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Touched {
    /// The move's footprint is unknown; delta objectives must diff the configurations
    /// or fall back to a full evaluation.  This is what the default
    /// [`crate::SearchSpace::neighbor_move`] reports.
    Unknown,
    /// The move touched exactly (or at most) the listed components.
    Components(Vec<usize>),
}

impl Touched {
    /// Whether `component` may have changed under this move description.
    pub fn may_touch(&self, component: usize) -> bool {
        match self {
            Touched::Unknown => true,
            Touched::Components(components) => components.contains(&component),
        }
    }

    /// The union of two move footprints — e.g. a crossover's two-parent merge
    /// footprint combined with a follow-up mutation's.  `Unknown` absorbs
    /// everything (the union may touch anything); component lists concatenate
    /// without duplicates.
    pub fn union(&self, other: &Touched) -> Touched {
        match (self, other) {
            (Touched::Unknown, _) | (_, Touched::Unknown) => Touched::Unknown,
            (Touched::Components(a), Touched::Components(b)) => {
                let mut components = a.clone();
                for &component in b {
                    if !components.contains(&component) {
                        components.push(component);
                    }
                }
                Touched::Components(components)
            }
        }
    }
}

/// An [`Objective`] that can re-score a configuration *incrementally* from the
/// evaluation state of a neighbouring configuration.
///
/// # Contract
///
/// For every configuration `c`, `evaluate_with_state(c).0` must be **bit-identical**
/// to [`Objective::evaluate`]`(c)`; and for every `(base, state)` produced by either
/// method and every `config` whose differences from `base` are covered by `touched`,
/// `evaluate_move(base, state, config, touched)` must be bit-identical to
/// `evaluate_with_state(config)`.  The drivers rely on this to make the incremental
/// path invisible in the results (property-tested in the workspace).
pub trait DeltaObjective<C>: Objective<C> {
    /// Opaque per-configuration evaluation state (for a separable objective: the
    /// per-component contributions the energy composes).
    type State;

    /// Score `config` from scratch, producing the reusable state.
    fn evaluate_with_state(&self, config: &C) -> (f64, Self::State);

    /// Score `config`, which differs from the already-scored `base` (whose state is
    /// `state`) only in the components covered by `touched`; implementations recompute
    /// those components and re-compose the rest from `state`.
    fn evaluate_move(
        &self,
        base: &C,
        state: &Self::State,
        config: &C,
        touched: &Touched,
    ) -> (f64, Self::State);

    /// Batched [`DeltaObjective::evaluate_with_state`]: score many configurations in
    /// one call.  Element `i` of the result must be bit-identical to
    /// `evaluate_with_state(&configs[i])` (which the default loop guarantees);
    /// overrides exist so adapters can route whole generations through
    /// [`Objective::evaluate_batch`] (batch dedup, platform parallelism).
    fn evaluate_with_state_batch(&self, configs: &[C]) -> Vec<(f64, Self::State)> {
        configs
            .iter()
            .map(|config| self.evaluate_with_state(config))
            .collect()
    }

    /// Batched [`DeltaObjective::evaluate_move`] over pending moves
    /// `(base, state, config, touched)` — e.g. one generation of GA offspring, each
    /// scored against the evaluation state retained for its first parent.  Element
    /// `i` must be bit-identical to the scalar `evaluate_move` on `moves[i]` (the
    /// default loop guarantees it).
    #[allow(clippy::type_complexity)]
    fn evaluate_move_batch(
        &self,
        moves: &[(&C, &Self::State, &C, &Touched)],
    ) -> Vec<(f64, Self::State)> {
        moves
            .iter()
            .map(|(base, state, config, touched)| self.evaluate_move(base, state, config, touched))
            .collect()
    }
}

/// Adapter that turns any [`Objective`] into a [`DeltaObjective`] that performs a full
/// evaluation on every move (state `()`).
///
/// This is how the drivers' classic `run` entry points share one loop with
/// `run_delta`: `run(space, objective)` is `run_delta(space, &FullDelta::new(objective))`.
pub struct FullDelta<'a, O: ?Sized> {
    inner: &'a O,
}

impl<'a, O: ?Sized> FullDelta<'a, O> {
    /// Wrap an objective.
    pub fn new(inner: &'a O) -> Self {
        FullDelta { inner }
    }
}

impl<C, O> Objective<C> for FullDelta<'_, O>
where
    O: Objective<C> + ?Sized,
{
    fn evaluate(&self, config: &C) -> f64 {
        self.inner.evaluate(config)
    }

    fn evaluate_batch(&self, configs: &[C]) -> Vec<f64> {
        self.inner.evaluate_batch(configs)
    }
}

impl<C, O> DeltaObjective<C> for FullDelta<'_, O>
where
    C: Clone,
    O: Objective<C> + ?Sized,
{
    type State = ();

    fn evaluate_with_state(&self, config: &C) -> (f64, ()) {
        (self.inner.evaluate(config), ())
    }

    fn evaluate_move(&self, _base: &C, _state: &(), config: &C, _touched: &Touched) -> (f64, ()) {
        (self.inner.evaluate(config), ())
    }

    fn evaluate_with_state_batch(&self, configs: &[C]) -> Vec<(f64, ())> {
        self.inner
            .evaluate_batch(configs)
            .into_iter()
            .map(|energy| (energy, ()))
            .collect()
    }

    fn evaluate_move_batch(&self, moves: &[(&C, &(), &C, &Touched)]) -> Vec<(f64, ())> {
        let configs: Vec<C> = moves
            .iter()
            .map(|&(_, _, config, _)| config.clone())
            .collect();
        self.inner
            .evaluate_batch(&configs)
            .into_iter()
            .map(|energy| (energy, ()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_membership() {
        assert!(Touched::Unknown.may_touch(0));
        assert!(Touched::Unknown.may_touch(17));
        let some = Touched::Components(vec![0, 2]);
        assert!(some.may_touch(0));
        assert!(!some.may_touch(1));
        assert!(some.may_touch(2));
        assert_eq!(Touched::Components(vec![]), Touched::Components(vec![]));
    }

    #[test]
    fn touched_union_merges_footprints() {
        let a = Touched::Components(vec![0, 2]);
        let b = Touched::Components(vec![2, 3]);
        assert_eq!(a.union(&b), Touched::Components(vec![0, 2, 3]));
        assert_eq!(a.union(&Touched::Unknown), Touched::Unknown);
        assert_eq!(Touched::Unknown.union(&b), Touched::Unknown);
        assert_eq!(
            Touched::Components(vec![]).union(&Touched::Components(vec![])),
            Touched::Components(vec![])
        );
    }

    #[test]
    fn batched_delta_evaluation_matches_the_scalar_calls() {
        let inner = |x: &i64| (*x as f64) * 1.5;
        let delta = FullDelta::new(&inner);
        let scored = delta.evaluate_with_state_batch(&[1, 2, 3]);
        assert_eq!(
            scored.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![1.5, 3.0, 4.5]
        );
        let touched = Touched::Components(vec![0]);
        let moves = vec![(&1i64, &(), &5i64, &touched), (&2i64, &(), &6i64, &touched)];
        let moved = delta.evaluate_move_batch(&moves);
        assert_eq!(
            moved.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![7.5, 9.0]
        );
    }

    #[test]
    fn full_delta_matches_the_inner_objective() {
        let inner = |x: &i64| (*x as f64) * 1.5;
        let delta = FullDelta::new(&inner);
        assert_eq!(Objective::evaluate(&delta, &4), 6.0);
        assert_eq!(delta.evaluate_batch(&[1, 2]), vec![1.5, 3.0]);
        let (energy, state) = delta.evaluate_with_state(&4);
        assert_eq!(energy, 6.0);
        let (moved, _) = delta.evaluate_move(&4, &state, &6, &Touched::Unknown);
        assert_eq!(moved, 9.0);
        // the touched description is irrelevant to the full-evaluation adapter
        let (moved, _) = delta.evaluate_move(&4, &state, &6, &Touched::Components(vec![0]));
        assert_eq!(moved, 9.0);
    }
}
