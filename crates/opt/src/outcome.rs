//! The result returned by every optimization method, plus the deterministic
//! outcome-merge helper shared by the batched and sharded enumeration drivers.

use crate::trace::OptimizationTrace;

/// Pick the best `(global_index, energy)` pair: lowest energy, earliest index on ties.
///
/// Energies are ordered by [`f64::total_cmp`]; objectives are expected to return real
/// (non-NaN) energies — under `total_cmp` a positive NaN sorts after every real energy
/// (it loses), while a sign-bit-set NaN sorts before them (it would win).
///
/// For distinct indices this is a strict minimum under the lexicographic
/// `(energy, index)` order, so reductions built on it are associative and commutative:
/// batched, parallel and sharded enumerations merge partial results in *any* order and
/// still produce the result of a sequential scan, bit for bit.
pub fn better_indexed(best: (usize, f64), candidate: (usize, f64)) -> (usize, f64) {
    match candidate.1.total_cmp(&best.1) {
        std::cmp::Ordering::Less => candidate,
        std::cmp::Ordering::Equal if candidate.0 < best.0 => candidate,
        _ => best,
    }
}

/// An [`Outcome`] that also reports *where* in enumeration order the best configuration
/// sits.  Produced by [`crate::ParallelEnumeration::run_indexed`]; the global index is
/// what distributed drivers need to merge per-shard results deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedOutcome<C> {
    /// Position of the best configuration in the enumeration order of the space that
    /// was scanned (shard-local when a shard view was scanned).
    pub best_index: usize,
    /// The regular outcome.
    pub outcome: Outcome<C>,
}

/// Counters describing how much supervision a fault-tolerant run needed: how many
/// shard attempts were started, how many of those were retries after a failure, how
/// many leases expired, and how many abandoned ranges were work-stolen by survivors.
///
/// Like [`crate::CacheStats`] this is a plain mergeable counter set: per-shard values
/// sum into a campaign total in any order.  A fault-free run reports one attempt per
/// shard and zeros everywhere else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceStats {
    /// Shard attempts started (first tries and retries alike).
    pub attempts: usize,
    /// Attempts that were retries of a previously failed attempt.
    pub retries: usize,
    /// Lease expiries observed (a stalled shard fencing itself off).
    pub lease_expiries: usize,
    /// Ranges taken over from a dead shard by a surviving one (or by the
    /// coordinator's final drain).
    pub steals: usize,
}

impl ResilienceStats {
    /// Whether any recovery action was needed at all.
    pub fn recovered_from_faults(&self) -> bool {
        self.retries > 0 || self.lease_expiries > 0 || self.steals > 0
    }

    /// Combine two counter sets (e.g. the per-shard stats of a supervised campaign).
    pub fn merged(self, other: ResilienceStats) -> ResilienceStats {
        ResilienceStats {
            attempts: self.attempts + other.attempts,
            retries: self.retries + other.retries,
            lease_expiries: self.lease_expiries + other.lease_expiries,
            steals: self.steals + other.steals,
        }
    }
}

impl std::ops::Add for ResilienceStats {
    type Output = ResilienceStats;

    fn add(self, other: ResilienceStats) -> ResilienceStats {
        self.merged(other)
    }
}

impl std::ops::AddAssign for ResilienceStats {
    fn add_assign(&mut self, other: ResilienceStats) {
        *self = self.merged(other);
    }
}

impl std::iter::Sum for ResilienceStats {
    fn sum<I: Iterator<Item = ResilienceStats>>(iter: I) -> ResilienceStats {
        iter.fold(ResilienceStats::default(), ResilienceStats::merged)
    }
}

/// Result of running an optimization method.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome<C> {
    /// The best configuration found.
    pub best_config: C,
    /// Its energy (objective value).
    pub best_energy: f64,
    /// How many objective evaluations the method performed — the paper's measure of
    /// optimization effort ("number of experiments").
    pub evaluations: usize,
    /// Per-iteration trace (empty for enumeration, which has no meaningful iteration
    /// order).
    pub trace: OptimizationTrace,
}

impl<C> Outcome<C> {
    /// Map the configuration type (useful when adapting generic outcomes to
    /// domain-specific reports).
    pub fn map_config<D>(self, f: impl FnOnce(C) -> D) -> Outcome<D> {
        Outcome {
            best_config: f(self.best_config),
            best_energy: self.best_energy,
            evaluations: self.evaluations,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_indexed_prefers_lower_energy_then_earlier_index() {
        assert_eq!(better_indexed((3, 1.0), (9, 0.5)), (9, 0.5));
        assert_eq!(better_indexed((3, 0.5), (9, 1.0)), (3, 0.5));
        // ties break towards the earliest global index, in either argument order
        assert_eq!(better_indexed((3, 1.0), (9, 1.0)), (3, 1.0));
        assert_eq!(better_indexed((9, 1.0), (3, 1.0)), (3, 1.0));
    }

    #[test]
    fn better_indexed_reduces_order_independently() {
        let pairs = [(4usize, 2.0), (1, 3.0), (7, 2.0), (2, 5.0), (11, 2.0)];
        let forward = pairs.iter().copied().reduce(better_indexed).unwrap();
        let backward = pairs.iter().rev().copied().reduce(better_indexed).unwrap();
        assert_eq!(forward, (4, 2.0));
        assert_eq!(forward, backward);
    }

    #[test]
    fn resilience_stats_sum_order_independently() {
        let a = ResilienceStats {
            attempts: 3,
            retries: 2,
            lease_expiries: 1,
            steals: 0,
        };
        let b = ResilienceStats {
            attempts: 1,
            retries: 0,
            lease_expiries: 0,
            steals: 1,
        };
        assert_eq!(a + b, b + a);
        assert_eq!([a, b].into_iter().sum::<ResilienceStats>(), a.merged(b));
        assert!(a.recovered_from_faults());
        assert!(!ResilienceStats {
            attempts: 4,
            ..ResilienceStats::default()
        }
        .recovered_from_faults());
    }

    #[test]
    fn map_config_preserves_everything_else() {
        let outcome = Outcome {
            best_config: 42u32,
            best_energy: 1.5,
            evaluations: 10,
            trace: OptimizationTrace::new(),
        };
        let mapped = outcome.map_config(|c| format!("cfg-{c}"));
        assert_eq!(mapped.best_config, "cfg-42");
        assert_eq!(mapped.best_energy, 1.5);
        assert_eq!(mapped.evaluations, 10);
    }
}
