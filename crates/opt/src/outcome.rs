//! The result returned by every optimization method.

use crate::trace::OptimizationTrace;

/// Result of running an optimization method.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome<C> {
    /// The best configuration found.
    pub best_config: C,
    /// Its energy (objective value).
    pub best_energy: f64,
    /// How many objective evaluations the method performed — the paper's measure of
    /// optimization effort ("number of experiments").
    pub evaluations: usize,
    /// Per-iteration trace (empty for enumeration, which has no meaningful iteration
    /// order).
    pub trace: OptimizationTrace,
}

impl<C> Outcome<C> {
    /// Map the configuration type (useful when adapting generic outcomes to
    /// domain-specific reports).
    pub fn map_config<D>(self, f: impl FnOnce(C) -> D) -> Outcome<D> {
        Outcome {
            best_config: f(self.best_config),
            best_energy: self.best_energy,
            evaluations: self.evaluations,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_config_preserves_everything_else() {
        let outcome = Outcome {
            best_config: 42u32,
            best_energy: 1.5,
            evaluations: 10,
            trace: OptimizationTrace::new(),
        };
        let mapped = outcome.map_config(|c| format!("cfg-{c}"));
        assert_eq!(mapped.best_config, "cfg-42");
        assert_eq!(mapped.best_energy, 1.5);
        assert_eq!(mapped.evaluations, 10);
    }
}
