//! A simple generational genetic algorithm (another Section III-A alternative).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::objective::{CountingObjective, Objective};
use crate::outcome::Outcome;
use crate::space::SearchSpace;
use crate::trace::{IterationRecord, OptimizationTrace};

/// Hyper-parameters of the genetic algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticParams {
    /// Number of individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size used for parent selection.
    pub tournament: usize,
    /// Probability that a child is mutated (one neighbour move).
    pub mutation_rate: f64,
    /// Number of elite individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneticParams {
    fn default() -> Self {
        GeneticParams {
            population: 32,
            generations: 40,
            tournament: 3,
            mutation_rate: 0.35,
            elitism: 2,
            seed: 0x6e6e_6e6e,
        }
    }
}

/// Generational GA with tournament selection, uniform crossover (delegated to the
/// search space) and neighbour-move mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticAlgorithm {
    /// Hyper-parameters.
    pub params: GeneticParams,
}

impl GeneticAlgorithm {
    /// Create a GA with the given parameters.
    pub fn new(params: GeneticParams) -> Self {
        GeneticAlgorithm { params }
    }

    /// A GA whose total evaluation budget is approximately `budget`.
    pub fn with_budget(budget: usize, seed: u64) -> Self {
        let population = 32usize;
        let generations = (budget / population).max(1);
        GeneticAlgorithm {
            params: GeneticParams {
                population,
                generations,
                seed,
                ..GeneticParams::default()
            },
        }
    }

    /// Run the GA.
    pub fn run<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: Objective<S::Config> + ?Sized,
    {
        let p = &self.params;
        let counting = CountingObjective::new(objective);
        let mut rng = StdRng::seed_from_u64(p.seed);
        let mut trace = OptimizationTrace::new();

        let population_size = p.population.max(2);
        let mut population: Vec<(S::Config, f64)> = (0..population_size)
            .map(|_| {
                let config = space.random(&mut rng);
                let energy = counting.evaluate(&config);
                (config, energy)
            })
            .collect();

        let mut best = population
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .cloned()
            .expect("population is non-empty");

        for generation in 0..p.generations {
            // sort ascending by energy for elitism
            population.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut next: Vec<(S::Config, f64)> = population
                .iter()
                .take(p.elitism.min(population_size))
                .cloned()
                .collect();

            while next.len() < population_size {
                let parent_a = tournament(&population, p.tournament, &mut rng);
                let parent_b = tournament(&population, p.tournament, &mut rng);
                let mut child = space.crossover(&parent_a.0, &parent_b.0, &mut rng);
                if rng.gen_bool(p.mutation_rate.clamp(0.0, 1.0)) {
                    child = space.neighbor(&child, &mut rng);
                }
                let energy = counting.evaluate(&child);
                next.push((child, energy));
            }
            population = next;

            if let Some(generation_best) = population.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
                if generation_best.1 < best.1 {
                    best = generation_best.clone();
                }
            }

            trace.push(IterationRecord {
                iteration: generation,
                proposed_energy: population
                    .iter()
                    .map(|(_, e)| *e)
                    .fold(f64::INFINITY, f64::min),
                current_energy: population.iter().map(|(_, e)| *e).sum::<f64>()
                    / population.len() as f64,
                best_energy: best.1,
                temperature: 0.0,
                accepted: true,
            });
        }

        Outcome {
            best_config: best.0,
            best_energy: best.1,
            evaluations: counting.evaluations(),
            trace,
        }
    }
}

fn tournament<'a, C>(population: &'a [(C, f64)], size: usize, rng: &mut StdRng) -> &'a (C, f64) {
    let size = size.max(1);
    let mut best: Option<&(C, f64)> = None;
    for _ in 0..size {
        let candidate = &population[rng.gen_range(0..population.len())];
        if best.is_none_or(|b| candidate.1 < b.1) {
            best = Some(candidate);
        }
    }
    best.expect("tournament size >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GridSpace;

    fn rugged(config: &(u32, u32)) -> f64 {
        let dx = config.0 as f64 - 70.0;
        let dy = config.1 as f64 - 21.0;
        dx * dx + dy * dy + 10.0 * ((dx * 0.5).sin().abs() + (dy * 0.3).sin().abs())
    }

    #[test]
    fn improves_over_generations() {
        let space = GridSpace {
            width: 128,
            height: 128,
        };
        let outcome = GeneticAlgorithm::with_budget(2000, 5).run(&space, &rugged);
        assert!(outcome.best_energy < 300.0, "got {}", outcome.best_energy);
        let series = outcome.trace.best_energy_series();
        assert!(series.last().unwrap() <= series.first().unwrap());
    }

    #[test]
    fn evaluation_budget_is_approximately_respected() {
        let space = GridSpace {
            width: 64,
            height: 64,
        };
        let outcome = GeneticAlgorithm::with_budget(1000, 1).run(&space, &rugged);
        assert!(outcome.evaluations <= 1100, "got {}", outcome.evaluations);
        assert!(outcome.evaluations >= 500);
    }

    #[test]
    fn runs_are_reproducible() {
        let space = GridSpace {
            width: 64,
            height: 64,
        };
        let a = GeneticAlgorithm::with_budget(600, 9).run(&space, &rugged);
        let b = GeneticAlgorithm::with_budget(600, 9).run(&space, &rugged);
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.best_energy, b.best_energy);
    }

    #[test]
    fn elitism_preserves_the_best_individual() {
        let space = GridSpace {
            width: 32,
            height: 32,
        };
        let ga = GeneticAlgorithm::new(GeneticParams {
            population: 10,
            generations: 30,
            elitism: 2,
            ..GeneticParams::default()
        });
        let outcome = ga.run(&space, &rugged);
        // best energy series must be non-increasing when elitism is enabled
        for pair in outcome.trace.best_energy_series().windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12);
        }
    }
}
