//! A simple generational genetic algorithm (another Section III-A alternative).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wd_obs::{NoopRecorder, Recorder};

use crate::delta::{DeltaObjective, FullDelta, Touched};
use crate::objective::Objective;
use crate::outcome::Outcome;
use crate::space::SearchSpace;
use crate::trace::{IterationRecord, OptimizationTrace};

/// Hyper-parameters of the genetic algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticParams {
    /// Number of individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size used for parent selection.
    pub tournament: usize,
    /// Probability that a child is mutated (one neighbour move).
    pub mutation_rate: f64,
    /// Number of elite individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneticParams {
    fn default() -> Self {
        GeneticParams {
            population: 32,
            generations: 40,
            tournament: 3,
            mutation_rate: 0.35,
            elitism: 2,
            seed: 0x6e6e_6e6e,
        }
    }
}

/// Generational GA with tournament selection, uniform crossover (delegated to the
/// search space) and neighbour-move mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticAlgorithm {
    /// Hyper-parameters.
    pub params: GeneticParams,
}

impl GeneticAlgorithm {
    /// Create a GA with the given parameters.
    pub fn new(params: GeneticParams) -> Self {
        GeneticAlgorithm { params }
    }

    /// A GA whose total evaluation budget is approximately `budget`.
    pub fn with_budget(budget: usize, seed: u64) -> Self {
        let population = 32usize;
        let generations = (budget / population).max(1);
        GeneticAlgorithm {
            params: GeneticParams {
                population,
                generations,
                seed,
                ..GeneticParams::default()
            },
        }
    }

    /// Run the GA, re-scoring every child from scratch.
    ///
    /// This is [`GeneticAlgorithm::run_delta`] behind the full-evaluation adapter
    /// ([`FullDelta`]), so the two entry points share one loop and — for a correct
    /// [`DeltaObjective`] — produce bit-identical trajectories.  Through the
    /// adapter, whole generations are scored via [`Objective::evaluate_batch`]
    /// (batch dedup and platform parallelism come for free).
    pub fn run<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: Objective<S::Config> + ?Sized,
    {
        self.run_delta(space, &FullDelta::new(objective))
    }

    /// Run the GA with an incrementally evaluable objective.
    ///
    /// Each generation runs in two phases.  Phase one draws all offspring —
    /// tournament selection, [`SearchSpace::crossover_move`] recombination, and
    /// the optional [`SearchSpace::neighbor_move`] mutation, whose footprints
    /// merge via [`Touched::union`] — consuming exactly the RNG draws of the
    /// classic generate-and-score loop (scoring never consumed RNG).  Phase two
    /// scores the whole generation through
    /// [`DeltaObjective::evaluate_move_batch`]: every child is re-scored against
    /// the evaluation state retained for its **first** parent, so only the
    /// components inherited from the second parent (plus any mutated ones) are
    /// recomputed.
    pub fn run_delta<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: DeltaObjective<S::Config> + ?Sized,
        O::State: Clone,
    {
        self.run_delta_observed(space, objective, &NoopRecorder, "genetic")
    }

    /// [`GeneticAlgorithm::run_delta`] with every generation published to `recorder`
    /// under `scope` (one [`wd_obs::IterationEvent`] per generation, carrying exactly
    /// the values of the corresponding [`IterationRecord`]).  The recorder only
    /// observes, so trajectories are bit-identical to the unobserved run.
    pub fn run_delta_observed<S, O>(
        &self,
        space: &S,
        objective: &O,
        recorder: &dyn Recorder,
        scope: &str,
    ) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: DeltaObjective<S::Config> + ?Sized,
        O::State: Clone,
    {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(p.seed);
        let mut trace = OptimizationTrace::new();
        let mut evaluations = 0usize;

        let population_size = p.population.max(2);
        // draw the whole initial population before scoring it: sampling consumes
        // RNG, scoring does not, so the stream matches the classic
        // one-individual-at-a-time loop draw for draw
        let configs: Vec<S::Config> = (0..population_size)
            .map(|_| space.random(&mut rng))
            .collect();
        evaluations += configs.len();
        let scored = objective.evaluate_with_state_batch(&configs);
        let mut population: Vec<(S::Config, f64, O::State)> = configs
            .into_iter()
            .zip(scored)
            .map(|(config, (energy, state))| (config, energy, state))
            .collect();

        let mut best = population
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(config, energy, _)| (config.clone(), *energy))
            .expect("population is non-empty");

        for generation in 0..p.generations {
            // sort ascending by energy for elitism
            population.sort_by(|a, b| a.1.total_cmp(&b.1));
            let elite_count = p.elitism.min(population_size);

            // phase one: generate every child of this generation
            let offspring_count = population_size - elite_count;
            let mut children: Vec<(S::Config, usize, Touched)> =
                Vec::with_capacity(offspring_count);
            for _ in 0..offspring_count {
                let parent_a = tournament_index(&population, p.tournament, &mut rng);
                let parent_b = tournament_index(&population, p.tournament, &mut rng);
                let (mut child, mut touched) = space.crossover_move(
                    &population[parent_a].0,
                    &population[parent_b].0,
                    &mut rng,
                );
                if rng.gen_bool(p.mutation_rate.clamp(0.0, 1.0)) {
                    let (mutated, mutation_touched) = space.neighbor_move(&child, &mut rng);
                    child = mutated;
                    touched = touched.union(&mutation_touched);
                }
                children.push((child, parent_a, touched));
            }

            // phase two: score the generation in one batched delta call, each
            // child against its first parent's retained state
            evaluations += children.len();
            #[allow(clippy::type_complexity)] // the DeltaObjective::evaluate_move_batch tuple
            let moves: Vec<(&S::Config, &O::State, &S::Config, &Touched)> = children
                .iter()
                .map(|(child, parent_a, touched)| {
                    (
                        &population[*parent_a].0,
                        &population[*parent_a].2,
                        child,
                        touched,
                    )
                })
                .collect();
            let scored = objective.evaluate_move_batch(&moves);

            let mut next: Vec<(S::Config, f64, O::State)> =
                population.iter().take(elite_count).cloned().collect();
            for ((child, _, _), (energy, state)) in children.into_iter().zip(scored) {
                next.push((child, energy, state));
            }
            population = next;

            if let Some(generation_best) = population.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
                if generation_best.1 < best.1 {
                    best = (generation_best.0.clone(), generation_best.1);
                }
            }

            let record = IterationRecord {
                iteration: generation,
                proposed_energy: population
                    .iter()
                    .map(|(_, e, _)| *e)
                    .fold(f64::INFINITY, f64::min),
                current_energy: population.iter().map(|(_, e, _)| *e).sum::<f64>()
                    / population.len() as f64,
                best_energy: best.1,
                temperature: 0.0,
                accepted: true,
            };
            trace.push(record);
            if recorder.enabled() {
                recorder.iteration(scope, record.into());
            }
        }

        Outcome {
            best_config: best.0,
            best_energy: best.1,
            evaluations,
            trace,
        }
    }
}

fn tournament_index<C, S>(population: &[(C, f64, S)], size: usize, rng: &mut StdRng) -> usize {
    let size = size.max(1);
    let mut best: Option<usize> = None;
    for _ in 0..size {
        let candidate = rng.gen_range(0..population.len());
        if best.is_none_or(|b| population[candidate].1 < population[b].1) {
            best = Some(candidate);
        }
    }
    best.expect("tournament size >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GridSpace;

    fn rugged(config: &(u32, u32)) -> f64 {
        let dx = config.0 as f64 - 70.0;
        let dy = config.1 as f64 - 21.0;
        dx * dx + dy * dy + 10.0 * ((dx * 0.5).sin().abs() + (dy * 0.3).sin().abs())
    }

    #[test]
    fn improves_over_generations() {
        let space = GridSpace {
            width: 128,
            height: 128,
        };
        let outcome = GeneticAlgorithm::with_budget(2000, 5).run(&space, &rugged);
        assert!(outcome.best_energy < 300.0, "got {}", outcome.best_energy);
        let series = outcome.trace.best_energy_series();
        assert!(series.last().unwrap() <= series.first().unwrap());
    }

    #[test]
    fn evaluation_budget_is_approximately_respected() {
        let space = GridSpace {
            width: 64,
            height: 64,
        };
        let outcome = GeneticAlgorithm::with_budget(1000, 1).run(&space, &rugged);
        assert!(outcome.evaluations <= 1100, "got {}", outcome.evaluations);
        assert!(outcome.evaluations >= 500);
    }

    #[test]
    fn runs_are_reproducible() {
        let space = GridSpace {
            width: 64,
            height: 64,
        };
        let a = GeneticAlgorithm::with_budget(600, 9).run(&space, &rugged);
        let b = GeneticAlgorithm::with_budget(600, 9).run(&space, &rugged);
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.best_energy, b.best_energy);
    }

    #[test]
    fn elitism_preserves_the_best_individual() {
        let space = GridSpace {
            width: 32,
            height: 32,
        };
        let ga = GeneticAlgorithm::new(GeneticParams {
            population: 10,
            generations: 30,
            elitism: 2,
            ..GeneticParams::default()
        });
        let outcome = ga.run(&space, &rugged);
        // best energy series must be non-increasing when elitism is enabled
        for pair in outcome.trace.best_energy_series().windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12);
        }
    }
}
