//! Exhaustive enumeration ("brute force") of the configuration space.
//!
//! Enumeration underlies the paper's EM and EML reference methods: it is guaranteed to
//! find the optimum but requires one evaluation per configuration — 19 926 experiments
//! for the paper's grid — which is exactly the cost the SA-based methods avoid.
//!
//! Two drivers are provided:
//!
//! * [`Enumeration`] — the classic one-configuration-at-a-time scan, optionally
//!   spreading single evaluations over rayon workers;
//! * [`ParallelEnumeration`] — the batched path: the space is cut into contiguous
//!   batches which are scored through [`Objective::evaluate_batch`] on rayon workers,
//!   letting batch-capable objectives (the platform's `execute_many`, vectorised
//!   prediction models, a shared [`crate::CachedObjective`]) amortise per-call
//!   overheads.  Results are bit-identical to the sequential scan regardless of thread
//!   count or batch size: ties are broken towards the earliest configuration in
//!   enumeration order.
//!
//! Both drivers are **zero-materialization** on spaces that implement the indexed
//! contract ([`SearchSpace::space_len`] / [`SearchSpace::config_at`]): configurations
//! are produced by global index in fixed-size chunks and dropped as soon as their
//! batch is scored, so peak allocation is bounded by the batch size (times the number
//! of workers), not by the space cardinality.  Spaces without indexed access fall back
//! to the materialising [`SearchSpace::enumerate`] path.

use rayon::prelude::*;

use crate::objective::{CountingObjective, Objective};
use crate::outcome::{better_indexed as better, IndexedOutcome, Outcome};
use crate::space::SearchSpace;
use crate::trace::OptimizationTrace;

/// The indexed-contract clause quoted by [`EnumerationError::MissingConfig`]: a space
/// claims `space_len()` coverage, so `config_at` must succeed inside it.
const COVERAGE: &str = "space_len() implies config_at() coverage for every index below it";

/// Why an enumeration run could not produce an outcome.
///
/// These are contract violations of the *space*, not evaluation failures: the
/// panicking drivers ([`Enumeration::run`], [`ParallelEnumeration::run`]) raise them
/// as panics for exploratory code, the `try_` variants surface them as values so
/// long-lived callers (the campaign coordinator) can recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumerationError {
    /// The space supports neither indexed access ([`SearchSpace::space_len`] /
    /// [`SearchSpace::config_at`]) nor materialisation ([`SearchSpace::enumerate`]).
    NotEnumerable,
    /// The space reported zero configurations.
    Empty,
    /// The space promised `space_len()` coverage but `config_at(index)` returned
    /// `None` inside that range.
    MissingConfig {
        /// The enumeration index that failed to materialise.
        index: usize,
    },
}

impl std::fmt::Display for EnumerationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnumerationError::NotEnumerable => {
                write!(f, "enumeration requires an enumerable search space")
            }
            EnumerationError::Empty => write!(f, "cannot enumerate an empty space"),
            EnumerationError::MissingConfig { index } => write!(
                f,
                "search space broke its indexing contract ({COVERAGE}): \
                 config_at({index}) returned None"
            ),
        }
    }
}

impl std::error::Error for EnumerationError {}

/// The enumeration source of one run: either the space serves indices lazily, or its
/// enumeration was materialised once up front (the fallback).
enum Source<C> {
    Lazy,
    Materialized(Vec<C>),
}

/// Resolve the enumeration source and length of `space`, preferring indexed access.
fn source_of<S: SearchSpace>(space: &S) -> Result<(Source<S::Config>, usize), EnumerationError> {
    if let Some(len) = space.space_len() {
        if len == 0 {
            return Err(EnumerationError::Empty);
        }
        return Ok((Source::Lazy, len));
    }
    let configs = space.enumerate().ok_or(EnumerationError::NotEnumerable)?;
    if configs.is_empty() {
        return Err(EnumerationError::Empty);
    }
    let len = configs.len();
    Ok((Source::Materialized(configs), len))
}

impl<C> Source<C> {
    /// The winning configuration, re-materialised by index for the lazy source.
    fn into_best<S: SearchSpace<Config = C>>(
        self,
        space: &S,
        best_index: usize,
    ) -> Result<C, EnumerationError> {
        match self {
            Source::Lazy => space
                .config_at(best_index)
                .ok_or(EnumerationError::MissingConfig { index: best_index }),
            Source::Materialized(mut configs) => Ok(configs.swap_remove(best_index)),
        }
    }
}

/// Exhaustive search over an enumerable space, one evaluation at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Enumeration {
    /// Evaluate configurations in parallel with rayon.  The result is identical; only
    /// wall-clock time changes.
    pub parallel: bool,
}

impl Enumeration {
    /// Sequential enumeration.
    pub fn sequential() -> Self {
        Enumeration { parallel: false }
    }

    /// Rayon-parallel enumeration.
    pub fn parallel() -> Self {
        Enumeration { parallel: true }
    }

    /// Run the exhaustive search.
    ///
    /// # Panics
    ///
    /// Panics on any [`EnumerationError`] (non-enumerable space, empty space, broken
    /// indexing contract); [`Enumeration::try_run`] surfaces the same conditions as
    /// values.
    pub fn run<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace + Sync,
        S::Config: Send + Sync,
        O: Objective<S::Config> + Sync + ?Sized,
    {
        self.try_run(space, objective)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Run the exhaustive search, surfacing space-contract violations as values.
    ///
    /// # Errors
    ///
    /// [`EnumerationError::NotEnumerable`] when the space supports neither indexed
    /// access nor enumeration, [`EnumerationError::Empty`] for zero configurations,
    /// and [`EnumerationError::MissingConfig`] when `config_at` breaks the
    /// `space_len()` coverage contract.
    pub fn try_run<S, O>(
        &self,
        space: &S,
        objective: &O,
    ) -> Result<Outcome<S::Config>, EnumerationError>
    where
        S: SearchSpace + Sync,
        S::Config: Send + Sync,
        O: Objective<S::Config> + Sync + ?Sized,
    {
        let (source, len) = source_of(space)?;
        let counting = CountingObjective::new(objective);
        let evaluate_at = |index: usize| -> Result<(usize, f64), EnumerationError> {
            let energy = match &source {
                Source::Lazy => counting.evaluate(
                    &space
                        .config_at(index)
                        .ok_or(EnumerationError::MissingConfig { index })?,
                ),
                Source::Materialized(configs) => counting.evaluate(&configs[index]),
            };
            Ok((index, energy))
        };

        let best = if self.parallel {
            (0..len)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(evaluate_at)
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .reduce(better)
        } else {
            // streaming fold: the sequential path never holds all scores at once
            let mut best = None;
            for index in 0..len {
                let scored = evaluate_at(index)?;
                best = Some(match best {
                    None => scored,
                    Some(incumbent) => better(incumbent, scored),
                });
            }
            best
        }
        .ok_or(EnumerationError::Empty)?;

        Ok(Outcome {
            best_config: source.into_best(space, best.0)?,
            best_energy: best.1,
            evaluations: counting.evaluations(),
            trace: OptimizationTrace::new(),
        })
    }
}

/// Default number of configurations per batch of [`ParallelEnumeration`].
pub const DEFAULT_BATCH_SIZE: usize = 512;

/// Exhaustive search that scores the space in parallel batches via
/// [`Objective::evaluate_batch`].
///
/// This is the preferred enumeration driver: for objectives with a batch-capable
/// backend every batch becomes one bulk request, and for plain objectives the batches
/// still spread over rayon workers.  On indexed spaces each worker materialises at
/// most one batch of configurations at a time.  The outcome is deterministic —
/// identical to [`Enumeration::sequential`] — independent of thread count and batch
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelEnumeration {
    /// Number of configurations per [`Objective::evaluate_batch`] call.
    pub batch_size: usize,
}

impl Default for ParallelEnumeration {
    fn default() -> Self {
        ParallelEnumeration {
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }
}

impl ParallelEnumeration {
    /// Batched enumeration with the default batch size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the batch size (values below 1 are clamped to 1).
    pub fn with_batch_size(batch_size: usize) -> Self {
        ParallelEnumeration {
            batch_size: batch_size.max(1),
        }
    }

    /// Run the exhaustive batched search.
    ///
    /// Delegates to [`ParallelEnumeration::run_indexed`] — there is exactly one
    /// chunk/merge implementation.
    ///
    /// # Panics
    ///
    /// Panics on any [`EnumerationError`]; [`ParallelEnumeration::try_run`] surfaces
    /// the same conditions as values.
    pub fn run<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace + Sync,
        S::Config: Send + Sync,
        O: Objective<S::Config> + Sync + ?Sized,
    {
        self.run_indexed(space, objective).outcome
    }

    /// Run the exhaustive batched search, surfacing space-contract violations as
    /// values ([`ParallelEnumeration::try_run_indexed`] without the index).
    ///
    /// # Errors
    ///
    /// See [`ParallelEnumeration::try_run_indexed`].
    pub fn try_run<S, O>(
        &self,
        space: &S,
        objective: &O,
    ) -> Result<Outcome<S::Config>, EnumerationError>
    where
        S: SearchSpace + Sync,
        S::Config: Send + Sync,
        O: Objective<S::Config> + Sync + ?Sized,
    {
        Ok(self.try_run_indexed(space, objective)?.outcome)
    }

    /// Run the exhaustive batched search and also report the enumeration-order index of
    /// the best configuration.
    ///
    /// The index is what distributed drivers (one [`crate::ShardView`] per node) need:
    /// translating shard-local indices to global ones and merging with
    /// [`crate::better_indexed`] reproduces the single-node result exactly.
    ///
    /// # Panics
    ///
    /// Panics on any [`EnumerationError`];
    /// [`ParallelEnumeration::try_run_indexed`] surfaces the same conditions as
    /// values.
    pub fn run_indexed<S, O>(&self, space: &S, objective: &O) -> IndexedOutcome<S::Config>
    where
        S: SearchSpace + Sync,
        S::Config: Send + Sync,
        O: Objective<S::Config> + Sync + ?Sized,
    {
        self.try_run_indexed(space, objective)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Run the exhaustive batched search, reporting the enumeration-order index of
    /// the best configuration and surfacing space-contract violations as values.
    ///
    /// # Errors
    ///
    /// [`EnumerationError::NotEnumerable`] when the space supports neither indexed
    /// access nor enumeration, [`EnumerationError::Empty`] for zero configurations,
    /// and [`EnumerationError::MissingConfig`] when `config_at` breaks the
    /// `space_len()` coverage contract.
    pub fn try_run_indexed<S, O>(
        &self,
        space: &S,
        objective: &O,
    ) -> Result<IndexedOutcome<S::Config>, EnumerationError>
    where
        S: SearchSpace + Sync,
        S::Config: Send + Sync,
        O: Objective<S::Config> + Sync + ?Sized,
    {
        let (source, len) = source_of(space)?;
        let counting = CountingObjective::new(objective);
        let batch_size = self.batch_size.max(1);

        // Score each contiguous chunk on a rayon worker, reducing every chunk to its
        // local best before the (cheap, sequential) global reduction.  For the lazy
        // source the chunk's configurations are materialised here and dropped at the
        // end of the closure — the full grid never exists at once.
        let chunk_count = len.div_ceil(batch_size);
        let best = (0..chunk_count)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|chunk| -> Result<(usize, f64), EnumerationError> {
                let start = chunk * batch_size;
                let end = (start + batch_size).min(len);
                let streamed: Vec<S::Config>;
                let batch: &[S::Config] = match &source {
                    Source::Lazy => {
                        streamed = (start..end)
                            .map(|index| {
                                space
                                    .config_at(index)
                                    .ok_or(EnumerationError::MissingConfig { index })
                            })
                            .collect::<Result<_, _>>()?;
                        &streamed
                    }
                    Source::Materialized(configs) => &configs[start..end],
                };
                let energies = counting.evaluate_batch(batch);
                energies
                    .into_iter()
                    .enumerate()
                    .map(|(local, energy)| (start + local, energy))
                    .reduce(better)
                    // chunk ranges are non-empty by construction (start < end <= len)
                    .ok_or(EnumerationError::Empty)
            })
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .reduce(better)
            .ok_or(EnumerationError::Empty)?;

        Ok(IndexedOutcome {
            best_index: best.0,
            outcome: Outcome {
                best_config: source.into_best(space, best.0)?,
                best_energy: best.1,
                evaluations: counting.evaluations(),
                trace: OptimizationTrace::new(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::CachedObjective;
    use crate::space::{GridSpace, InstrumentedSpace, MaterializedOnly};

    fn bowl(config: &(u32, u32)) -> f64 {
        let dx = config.0 as f64 - 13.0;
        let dy = config.1 as f64 - 5.0;
        dx * dx + dy * dy
    }

    #[test]
    fn finds_the_exact_optimum() {
        let space = GridSpace {
            width: 40,
            height: 20,
        };
        let outcome = Enumeration::sequential().run(&space, &bowl);
        assert_eq!(outcome.best_config, (13, 5));
        assert_eq!(outcome.best_energy, 0.0);
        assert_eq!(outcome.evaluations, 40 * 20);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let space = GridSpace {
            width: 64,
            height: 48,
        };
        let sequential = Enumeration::sequential().run(&space, &bowl);
        let parallel = Enumeration::parallel().run(&space, &bowl);
        assert_eq!(sequential.best_config, parallel.best_config);
        assert_eq!(sequential.best_energy, parallel.best_energy);
        assert_eq!(sequential.evaluations, parallel.evaluations);
    }

    #[test]
    fn batched_enumeration_matches_sequential_for_any_batch_size() {
        let space = GridSpace {
            width: 37,
            height: 29,
        };
        let sequential = Enumeration::sequential().run(&space, &bowl);
        for batch_size in [1usize, 7, 64, 512, 10_000] {
            let batched = ParallelEnumeration::with_batch_size(batch_size).run(&space, &bowl);
            assert_eq!(
                batched.best_config, sequential.best_config,
                "batch {batch_size}"
            );
            assert_eq!(batched.best_energy, sequential.best_energy);
            assert_eq!(batched.evaluations, 37 * 29);
        }
    }

    #[test]
    fn lazy_and_materialized_paths_are_bit_identical() {
        let space = GridSpace {
            width: 41,
            height: 17,
        };
        let hidden = MaterializedOnly::new(&space);
        for batch_size in [1usize, 13, 512] {
            let driver = ParallelEnumeration::with_batch_size(batch_size);
            let lazy = driver.run_indexed(&space, &bowl);
            let materialized = driver.run_indexed(&hidden, &bowl);
            assert_eq!(lazy.best_index, materialized.best_index);
            assert_eq!(lazy.outcome.best_config, materialized.outcome.best_config);
            assert_eq!(
                lazy.outcome.best_energy.to_bits(),
                materialized.outcome.best_energy.to_bits()
            );
            assert_eq!(lazy.outcome.evaluations, materialized.outcome.evaluations);
        }
    }

    #[test]
    fn indexed_spaces_are_never_materialized() {
        let space = GridSpace {
            width: 30,
            height: 30,
        };
        let instrumented = InstrumentedSpace::new(&space);
        let outcome = ParallelEnumeration::with_batch_size(64).run(&instrumented, &bowl);
        assert_eq!(outcome.best_config, (13, 5));
        assert_eq!(
            instrumented.enumerate_calls(),
            0,
            "the streaming driver must not materialise an indexed space"
        );
        // every configuration was served by index, plus one re-materialisation of
        // the winner
        assert_eq!(instrumented.config_at_calls(), 900 + 1);

        let instrumented = InstrumentedSpace::new(&space);
        let classic = Enumeration::sequential().run(&instrumented, &bowl);
        assert_eq!(classic.best_config, (13, 5));
        assert_eq!(instrumented.enumerate_calls(), 0);
    }

    #[test]
    fn run_indexed_reports_the_enumeration_position_of_the_best() {
        let space = GridSpace {
            width: 20,
            height: 10,
        };
        let indexed = ParallelEnumeration::with_batch_size(17).run_indexed(&space, &bowl);
        let configs = space.enumerate().unwrap();
        assert_eq!(configs[indexed.best_index], indexed.outcome.best_config);
        assert_eq!(indexed.outcome.best_config, (13, 5));
        assert_eq!(indexed.outcome.evaluations, 200);
    }

    #[test]
    fn ties_break_towards_the_earliest_configuration() {
        // A plateau objective: every configuration has the same energy, so the winner
        // must be the first configuration in enumeration order for every driver.
        let space = GridSpace {
            width: 9,
            height: 11,
        };
        let flat = |_: &(u32, u32)| 1.0;
        let first = space.enumerate().unwrap()[0];
        assert_eq!(
            Enumeration::sequential().run(&space, &flat).best_config,
            first
        );
        assert_eq!(
            Enumeration::parallel().run(&space, &flat).best_config,
            first
        );
        assert_eq!(
            ParallelEnumeration::with_batch_size(13)
                .run(&space, &flat)
                .best_config,
            first
        );
    }

    #[test]
    fn batched_enumeration_through_a_cache_evaluates_each_config_once() {
        let space = GridSpace {
            width: 16,
            height: 16,
        };
        let cached = CachedObjective::new(&bowl);
        let cold = ParallelEnumeration::new().run(&space, &cached);
        assert_eq!(cached.stats().misses, 256);
        assert_eq!(cached.stats().hits, 0);

        // a warm re-run answers everything from the cache and returns the same result
        let warm = ParallelEnumeration::new().run(&space, &cached);
        assert_eq!(cached.stats().misses, 256);
        assert_eq!(cached.stats().hits, 256);
        assert_eq!(warm.best_config, cold.best_config);
        assert_eq!(warm.best_energy, cold.best_energy);
    }

    #[test]
    fn evaluation_count_equals_cardinality() {
        let space = GridSpace {
            width: 17,
            height: 23,
        };
        let outcome = Enumeration::parallel().run(&space, &bowl);
        assert_eq!(outcome.evaluations as u128, space.cardinality().unwrap());
    }

    #[test]
    #[should_panic(expected = "enumeration requires an enumerable search space")]
    fn non_enumerable_space_panics() {
        use rand::rngs::StdRng;
        struct Opaque;
        impl SearchSpace for Opaque {
            type Config = u8;
            fn random(&self, _rng: &mut StdRng) -> u8 {
                0
            }
            fn neighbor(&self, c: &u8, _rng: &mut StdRng) -> u8 {
                *c
            }
        }
        let _ = Enumeration::sequential().run(&Opaque, &|c: &u8| *c as f64);
    }

    #[test]
    #[should_panic(expected = "enumeration requires an enumerable search space")]
    fn batched_enumeration_also_requires_an_enumerable_space() {
        use rand::rngs::StdRng;
        struct Opaque;
        impl SearchSpace for Opaque {
            type Config = u8;
            fn random(&self, _rng: &mut StdRng) -> u8 {
                0
            }
            fn neighbor(&self, c: &u8, _rng: &mut StdRng) -> u8 {
                *c
            }
        }
        let _ = ParallelEnumeration::new().run(&Opaque, &|c: &u8| *c as f64);
    }

    #[test]
    fn try_runs_surface_contract_violations_as_values() {
        use rand::rngs::StdRng;
        struct Opaque;
        impl SearchSpace for Opaque {
            type Config = u8;
            fn random(&self, _rng: &mut StdRng) -> u8 {
                0
            }
            fn neighbor(&self, c: &u8, _rng: &mut StdRng) -> u8 {
                *c
            }
        }
        let objective = |c: &u8| f64::from(*c);
        assert_eq!(
            Enumeration::sequential()
                .try_run(&Opaque, &objective)
                .unwrap_err(),
            EnumerationError::NotEnumerable
        );
        assert_eq!(
            ParallelEnumeration::new()
                .try_run(&Opaque, &objective)
                .unwrap_err(),
            EnumerationError::NotEnumerable
        );

        let empty = GridSpace {
            width: 0,
            height: 5,
        };
        let grid_objective = |_: &(u32, u32)| 0.0;
        assert_eq!(
            Enumeration::parallel()
                .try_run(&empty, &grid_objective)
                .unwrap_err(),
            EnumerationError::Empty
        );
        assert_eq!(
            ParallelEnumeration::new()
                .try_run_indexed(&empty, &grid_objective)
                .unwrap_err(),
            EnumerationError::Empty
        );

        // the Ok path agrees with the panicking drivers bit for bit
        let space = GridSpace {
            width: 19,
            height: 7,
        };
        let indexed = ParallelEnumeration::with_batch_size(11)
            .try_run_indexed(&space, &bowl)
            .unwrap();
        let reference = ParallelEnumeration::with_batch_size(11).run_indexed(&space, &bowl);
        assert_eq!(indexed.best_index, reference.best_index);
        assert_eq!(indexed.outcome.best_config, reference.outcome.best_config);
        assert_eq!(
            indexed.outcome.best_energy.to_bits(),
            reference.outcome.best_energy.to_bits()
        );

        // errors display the condition (the panic wrappers re-raise these strings)
        assert!(EnumerationError::NotEnumerable
            .to_string()
            .contains("enumerable"));
        assert!(EnumerationError::Empty.to_string().contains("empty"));
        assert!(EnumerationError::MissingConfig { index: 3 }
            .to_string()
            .contains("config_at(3)"));
    }
}
