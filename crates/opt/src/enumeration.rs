//! Exhaustive enumeration ("brute force") of the configuration space.
//!
//! Enumeration underlies the paper's EM and EML reference methods: it is guaranteed to
//! find the optimum but requires one evaluation per configuration — 19 926 experiments
//! for the paper's grid — which is exactly the cost the SA-based methods avoid.

use rayon::prelude::*;

use crate::objective::{CountingObjective, Objective};
use crate::outcome::Outcome;
use crate::space::SearchSpace;
use crate::trace::OptimizationTrace;

/// Exhaustive search over an enumerable space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Enumeration {
    /// Evaluate configurations in parallel with rayon.  The result is identical; only
    /// wall-clock time changes.
    pub parallel: bool,
}

impl Enumeration {
    /// Sequential enumeration.
    pub fn sequential() -> Self {
        Enumeration { parallel: false }
    }

    /// Rayon-parallel enumeration.
    pub fn parallel() -> Self {
        Enumeration { parallel: true }
    }

    /// Run the exhaustive search.
    ///
    /// # Panics
    ///
    /// Panics if the space does not support enumeration ([`SearchSpace::enumerate`]
    /// returns `None`) or enumerates to zero configurations.
    pub fn run<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        S::Config: Send + Sync,
        O: Objective<S::Config> + Sync + ?Sized,
    {
        let configs = space
            .enumerate()
            .expect("enumeration requires an enumerable search space");
        assert!(!configs.is_empty(), "cannot enumerate an empty space");
        let counting = CountingObjective::new(objective);

        let best = if self.parallel {
            configs
                .into_par_iter()
                .map(|config| {
                    let energy = counting.evaluate(&config);
                    (config, energy)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty space")
        } else {
            configs
                .into_iter()
                .map(|config| {
                    let energy = counting.evaluate(&config);
                    (config, energy)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty space")
        };

        Outcome {
            best_config: best.0,
            best_energy: best.1,
            evaluations: counting.evaluations(),
            trace: OptimizationTrace::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GridSpace;

    fn bowl(config: &(u32, u32)) -> f64 {
        let dx = config.0 as f64 - 13.0;
        let dy = config.1 as f64 - 5.0;
        dx * dx + dy * dy
    }

    #[test]
    fn finds_the_exact_optimum() {
        let space = GridSpace { width: 40, height: 20 };
        let outcome = Enumeration::sequential().run(&space, &bowl);
        assert_eq!(outcome.best_config, (13, 5));
        assert_eq!(outcome.best_energy, 0.0);
        assert_eq!(outcome.evaluations, 40 * 20);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let space = GridSpace { width: 64, height: 48 };
        let sequential = Enumeration::sequential().run(&space, &bowl);
        let parallel = Enumeration::parallel().run(&space, &bowl);
        assert_eq!(sequential.best_config, parallel.best_config);
        assert_eq!(sequential.best_energy, parallel.best_energy);
        assert_eq!(sequential.evaluations, parallel.evaluations);
    }

    #[test]
    fn evaluation_count_equals_cardinality() {
        let space = GridSpace { width: 17, height: 23 };
        let outcome = Enumeration::parallel().run(&space, &bowl);
        assert_eq!(outcome.evaluations as u128, space.cardinality().unwrap());
    }

    #[test]
    #[should_panic(expected = "enumeration requires an enumerable search space")]
    fn non_enumerable_space_panics() {
        use rand::rngs::StdRng;
        struct Opaque;
        impl SearchSpace for Opaque {
            type Config = u8;
            fn random(&self, _rng: &mut StdRng) -> u8 {
                0
            }
            fn neighbor(&self, c: &u8, _rng: &mut StdRng) -> u8 {
                *c
            }
        }
        let _ = Enumeration::sequential().run(&Opaque, &|c: &u8| *c as f64);
    }
}
