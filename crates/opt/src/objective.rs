//! The objective (energy) abstraction and evaluation bookkeeping.
//!
//! This module is the workspace's **single scoring layer**: every evaluator — the
//! simulated platform, the trained prediction models, plain closures in tests — plugs
//! into the optimizers by implementing [`Objective`].  On top of the one-at-a-time
//! [`Objective::evaluate`] the trait offers a batched entry point,
//! [`Objective::evaluate_batch`], which implementations backed by batch-capable
//! engines (e.g. `HeterogeneousPlatform::execute_many`) override to evaluate many
//! configurations in one parallel pass.
//!
//! Two wrappers provide the bookkeeping every driver needs:
//!
//! * [`CountingObjective`] counts evaluation *requests* (the paper's "number of
//!   experiments" effort metric);
//! * [`CachedObjective`] memoizes results by configuration, so revisited
//!   configurations (frequent under simulated annealing) cost nothing, and reports
//!   [`CacheStats`] hit/miss counters.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

use crate::sync::{read_lock, write_lock};

/// An objective function over configurations of type `C`.  Lower values are better
/// ("energy" in the simulated-annealing terminology of the paper, execution time in the
/// work-distribution instantiation).
pub trait Objective<C> {
    /// Evaluate one configuration.
    fn evaluate(&self, config: &C) -> f64;

    /// Evaluate a batch of configurations, returning one energy per configuration in
    /// order.
    ///
    /// The default implementation evaluates sequentially; implementations backed by a
    /// batch-capable engine (a parallel simulator, a vectorised model) should override
    /// it.  Overrides must be observationally identical to the default: same values,
    /// same order.
    fn evaluate_batch(&self, configs: &[C]) -> Vec<f64> {
        configs.iter().map(|config| self.evaluate(config)).collect()
    }
}

/// Blanket implementation so plain closures can be used as objectives.
impl<C, F> Objective<C> for F
where
    F: Fn(&C) -> f64,
{
    fn evaluate(&self, config: &C) -> f64 {
        self(config)
    }
}

/// Wrapper that counts how many times the inner objective is evaluated.
///
/// The paper's headline result is about *how many experiments* each method needs
/// (SAML evaluates ≈5 % of what enumeration needs); this wrapper is how the drivers
/// report that number.  Batched evaluations count one request per configuration.
pub struct CountingObjective<'a, O: ?Sized> {
    inner: &'a O,
    count: AtomicUsize,
}

impl<'a, O: ?Sized> CountingObjective<'a, O> {
    /// Wrap an objective.
    pub fn new(inner: &'a O) -> Self {
        CountingObjective {
            inner,
            count: AtomicUsize::new(0),
        }
    }

    /// Number of evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Reset the evaluation counter.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }
}

impl<C, O> Objective<C> for CountingObjective<'_, O>
where
    O: Objective<C> + ?Sized,
{
    fn evaluate(&self, config: &C) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.evaluate(config)
    }

    fn evaluate_batch(&self, configs: &[C]) -> Vec<f64> {
        self.count.fetch_add(configs.len(), Ordering::Relaxed);
        self.inner.evaluate_batch(configs)
    }
}

/// Hit/miss counters of a [`CachedObjective`].
///
/// `misses` is the number of *distinct* configurations the inner objective actually
/// evaluated — with caching enabled this, not the request count, is the real
/// measurement cost of a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache (including duplicates within one batch).
    pub hits: usize,
    /// Requests that reached the inner objective.
    pub misses: usize,
}

impl CacheStats {
    /// Total number of evaluation requests seen.
    pub fn requests(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of requests answered from the cache.
    ///
    /// Guaranteed to be a real number: with zero requests the rate is defined as 0.0
    /// (never `NaN`), so reports can divide/format it unconditionally.
    pub fn hit_rate(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests() as f64
        }
    }

    /// Combine two counter sets (e.g. the per-shard stats of a distributed campaign).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, other: CacheStats) -> CacheStats {
        self.merged(other)
    }
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, other: CacheStats) {
        *self = self.merged(other);
    }
}

impl std::iter::Sum for CacheStats {
    fn sum<I: Iterator<Item = CacheStats>>(iter: I) -> CacheStats {
        iter.fold(CacheStats::default(), CacheStats::merged)
    }
}

/// Config-keyed memoization wrapper around any [`Objective`].
///
/// Thread-safe: the cache is behind a [`RwLock`] and the counters are atomic, so a
/// `CachedObjective` can be shared by the parallel enumeration path.  Batch requests
/// deduplicate configurations before reaching the inner objective.  Hits probe with
/// the borrowed key under the shared lock and allocate nothing; a distinct
/// configuration is cloned exactly once, when its key enters the cache.  `misses`
/// counts *distinct* configurations: insertion re-checks under the write lock, so when
/// two threads race on the same uncached configuration the inner objective may be
/// invoked redundantly (objectives are deterministic, so the values agree), but the
/// configuration is recorded as exactly one miss and the loser of the race as a hit.
pub struct CachedObjective<'a, C, O: ?Sized> {
    inner: &'a O,
    cache: RwLock<HashMap<C, f64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<'a, C, O: ?Sized> CachedObjective<'a, C, O>
where
    C: Eq + Hash + Clone,
{
    /// Wrap an objective with an empty cache.
    pub fn new(inner: &'a O) -> Self {
        CachedObjective {
            inner,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Publish the current hit/miss counters to `recorder` as
    /// `<scope>.cache.hits` / `<scope>.cache.misses`.
    ///
    /// The counters are read post-hoc from the cache's own atomics — publication
    /// never sits on the evaluation path, so observed and unobserved runs stay
    /// bit-identical.
    pub fn publish_stats(&self, recorder: &dyn wd_obs::Recorder, scope: &str) {
        if !recorder.enabled() {
            return;
        }
        let stats = self.stats();
        recorder.counter(&format!("{scope}.cache.hits"), stats.hits as u64);
        recorder.counter(&format!("{scope}.cache.misses"), stats.misses as u64);
    }

    /// Number of distinct configurations cached so far.
    pub fn len(&self) -> usize {
        read_lock(&self.cache).len()
    }

    /// Whether the cache is still empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forget all cached energies and reset the counters.
    pub fn clear(&self) {
        write_lock(&self.cache).clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl<C, O> Objective<C> for CachedObjective<'_, C, O>
where
    C: Eq + Hash + Clone,
    O: Objective<C> + ?Sized,
{
    fn evaluate(&self, config: &C) -> f64 {
        // Read-then-write fast path: hits (the common case under annealing) probe the
        // shared lock with the borrowed key and allocate nothing.
        if let Some(&energy) = read_lock(&self.cache).get(config) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return energy;
        }
        let energy = self.inner.evaluate(config);
        let mut cache = write_lock(&self.cache);
        // another thread may have filled this configuration while we evaluated; its
        // value is identical (objectives are deterministic) — count us as a hit so
        // `misses` keeps counting distinct configurations, and skip the key clone
        if let Some(&existing) = cache.get(config) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return existing;
        }
        cache.insert(config.clone(), energy);
        self.misses.fetch_add(1, Ordering::Relaxed);
        energy
    }

    fn evaluate_batch(&self, configs: &[C]) -> Vec<f64> {
        let mut energies = vec![0.0f64; configs.len()];
        let mut pending: Vec<usize> = Vec::new();
        {
            let cache = read_lock(&self.cache);
            for (index, config) in configs.iter().enumerate() {
                match cache.get(config) {
                    Some(&energy) => energies[index] = energy,
                    None => pending.push(index),
                }
            }
        }
        self.hits
            .fetch_add(configs.len() - pending.len(), Ordering::Relaxed);
        if pending.is_empty() {
            return energies;
        }

        // Deduplicate the uncached configurations so the inner objective sees each
        // distinct configuration once; duplicates within the batch count as hits.
        // The position map borrows its keys from the request slice, so each distinct
        // configuration is cloned exactly once — for the inner batch call — and that
        // clone is later *moved* into the cache rather than cloned again.
        let mut unique: Vec<C> = Vec::with_capacity(pending.len());
        let mut position: HashMap<&C, usize> = HashMap::with_capacity(pending.len());
        for &index in &pending {
            let config = &configs[index];
            if !position.contains_key(config) {
                position.insert(config, unique.len());
                unique.push(config.clone());
            }
        }
        self.hits
            .fetch_add(pending.len() - unique.len(), Ordering::Relaxed);

        let fresh = self.inner.evaluate_batch(&unique);
        debug_assert_eq!(fresh.len(), unique.len());
        for &index in &pending {
            energies[index] = fresh[position[&configs[index]]];
        }
        {
            let mut cache = write_lock(&self.cache);
            let mut new_misses = 0;
            let mut race_hits = 0;
            for (config, &energy) in unique.into_iter().zip(&fresh) {
                match cache.entry(config) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(energy);
                        new_misses += 1;
                    }
                    // filled by a concurrent caller while we evaluated; identical
                    // value, counted as a hit so `misses` stays "distinct configs"
                    std::collections::hash_map::Entry::Occupied(_) => race_hits += 1,
                }
            }
            self.misses.fetch_add(new_misses, Ordering::Relaxed);
            self.hits.fetch_add(race_hits, Ordering::Relaxed);
        }
        energies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_objectives() {
        let objective = |x: &f64| x * x;
        assert_eq!(objective.evaluate(&3.0), 9.0);
        assert_eq!(
            objective.evaluate_batch(&[1.0, 2.0, 3.0]),
            vec![1.0, 4.0, 9.0]
        );
    }

    #[test]
    fn counting_objective_counts_and_resets() {
        let inner = |x: &i32| *x as f64;
        let counting = CountingObjective::new(&inner);
        assert_eq!(counting.evaluations(), 0);
        for i in 0..17 {
            let _ = counting.evaluate(&i);
        }
        assert_eq!(counting.evaluations(), 17);
        counting.reset();
        assert_eq!(counting.evaluations(), 0);
        // value passes through unchanged
        assert_eq!(counting.evaluate(&5), 5.0);
    }

    #[test]
    fn counting_objective_counts_batches_per_item() {
        let inner = |x: &i32| f64::from(*x);
        let counting = CountingObjective::new(&inner);
        let batch: Vec<i32> = (0..13).collect();
        assert_eq!(
            counting.evaluate_batch(&batch),
            batch.iter().map(|&x| f64::from(x)).collect::<Vec<_>>()
        );
        assert_eq!(counting.evaluations(), 13);
    }

    #[test]
    fn hit_rate_is_zero_not_nan_for_zero_requests() {
        // Regression test: an empty counter set must report a rate of exactly 0.0 so
        // downstream percentage formatting never sees NaN.
        let stats = CacheStats::default();
        assert_eq!(stats.requests(), 0);
        assert!(!stats.hit_rate().is_nan());
        assert_eq!(stats.hit_rate(), 0.0);
        // and a miss-only counter set reports 0.0 as well, not NaN or negative
        let misses_only = CacheStats { hits: 0, misses: 7 };
        assert_eq!(misses_only.hit_rate(), 0.0);
    }

    #[test]
    fn cache_stats_merge_and_sum() {
        let a = CacheStats { hits: 3, misses: 4 };
        let b = CacheStats {
            hits: 10,
            misses: 1,
        };
        assert_eq!(
            a.merged(b),
            CacheStats {
                hits: 13,
                misses: 5
            }
        );
        assert_eq!(a + b, b + a);
        let mut acc = CacheStats::default();
        acc += a;
        acc += b;
        assert_eq!(
            acc,
            CacheStats {
                hits: 13,
                misses: 5
            }
        );
        let total: CacheStats = [a, b, CacheStats::default()].into_iter().sum();
        assert_eq!(
            total,
            CacheStats {
                hits: 13,
                misses: 5
            }
        );
        assert!((total.hit_rate() - 13.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn cache_returns_identical_results_and_counts_hits() {
        let calls = AtomicUsize::new(0);
        let inner = |x: &u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            f64::from(*x) * 1.5
        };
        let cached = CachedObjective::new(&inner);

        assert_eq!(cached.evaluate(&4), 6.0);
        assert_eq!(cached.evaluate(&4), 6.0);
        assert_eq!(cached.evaluate(&2), 3.0);
        assert_eq!(calls.load(Ordering::Relaxed), 2, "4 evaluated once, 2 once");
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 2 });
        assert_eq!(cached.len(), 2);

        cached.clear();
        assert!(cached.is_empty());
        assert_eq!(cached.stats().requests(), 0);
    }

    #[test]
    fn cached_batches_deduplicate_and_match_uncached() {
        let calls = AtomicUsize::new(0);
        let inner = |x: &u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            f64::from(*x).sqrt()
        };
        let cached = CachedObjective::new(&inner);

        let batch = vec![9u32, 4, 9, 16, 4, 9];
        let expected: Vec<f64> = batch.iter().map(|&x| f64::from(x).sqrt()).collect();
        let energies = cached.evaluate_batch(&batch);
        assert_eq!(energies, expected);
        // only the three distinct configurations reached the inner objective
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(cached.stats(), CacheStats { hits: 3, misses: 3 });

        // a second identical batch is answered fully from the cache
        let again = cached.evaluate_batch(&batch);
        assert_eq!(again, energies);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(cached.stats(), CacheStats { hits: 9, misses: 3 });
        assert!((cached.stats().hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mixed_single_and_batch_requests_share_the_cache() {
        let calls = AtomicUsize::new(0);
        let inner = |x: &u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            f64::from(*x) + 0.5
        };
        let cached = CachedObjective::new(&inner);
        let _ = cached.evaluate(&7);
        let energies = cached.evaluate_batch(&[7, 8]);
        assert_eq!(energies, vec![7.5, 8.5]);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        let _ = cached.evaluate(&8);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }
}
