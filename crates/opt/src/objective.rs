//! The objective (energy) abstraction and evaluation bookkeeping.

use std::sync::atomic::{AtomicUsize, Ordering};

/// An objective function over configurations of type `C`.  Lower values are better
/// ("energy" in the simulated-annealing terminology of the paper, execution time in the
/// work-distribution instantiation).
pub trait Objective<C> {
    /// Evaluate one configuration.
    fn evaluate(&self, config: &C) -> f64;
}

/// Blanket implementation so plain closures can be used as objectives.
impl<C, F> Objective<C> for F
where
    F: Fn(&C) -> f64,
{
    fn evaluate(&self, config: &C) -> f64 {
        self(config)
    }
}

/// Wrapper that counts how many times the inner objective is evaluated.
///
/// The paper's headline result is about *how many experiments* each method needs
/// (SAML evaluates ≈5 % of what enumeration needs); this wrapper is how the drivers
/// report that number.
pub struct CountingObjective<'a, O: ?Sized> {
    inner: &'a O,
    count: AtomicUsize,
}

impl<'a, O: ?Sized> CountingObjective<'a, O> {
    /// Wrap an objective.
    pub fn new(inner: &'a O) -> Self {
        CountingObjective {
            inner,
            count: AtomicUsize::new(0),
        }
    }

    /// Number of evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Reset the evaluation counter.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }
}

impl<C, O> Objective<C> for CountingObjective<'_, O>
where
    O: Objective<C> + ?Sized,
{
    fn evaluate(&self, config: &C) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.evaluate(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_objectives() {
        let objective = |x: &f64| x * x;
        assert_eq!(objective.evaluate(&3.0), 9.0);
    }

    #[test]
    fn counting_objective_counts_and_resets() {
        let inner = |x: &i32| *x as f64;
        let counting = CountingObjective::new(&inner);
        assert_eq!(counting.evaluations(), 0);
        for i in 0..17 {
            let _ = counting.evaluate(&i);
        }
        assert_eq!(counting.evaluations(), 17);
        counting.reset();
        assert_eq!(counting.evaluations(), 0);
        // value passes through unchanged
        assert_eq!(counting.evaluate(&5), 5.0);
    }
}
