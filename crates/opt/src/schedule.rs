//! Cooling schedules for simulated annealing.

/// How the temperature evolves over iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoolingSchedule {
    /// The paper's schedule (Eq. 3): `T ← T · (1 − coolingRate)`.
    Geometric {
        /// The cooling rate in (0, 1).
        cooling_rate: f64,
    },
    /// Linear decrease: `T ← T − decrement` (floored at zero).
    Linear {
        /// Amount subtracted each iteration.
        decrement: f64,
    },
    /// Logarithmic (Boltzmann) cooling: `T(i) = T₀ / ln(i + e)`.
    Logarithmic,
}

impl CoolingSchedule {
    /// The paper's default: geometric cooling.
    pub fn paper_default() -> Self {
        CoolingSchedule::Geometric {
            cooling_rate: 0.003,
        }
    }

    /// Temperature after one more iteration.
    ///
    /// `initial` is the starting temperature, `current` the temperature before the
    /// update and `iteration` the 0-based index of the iteration that just finished.
    pub fn next_temperature(&self, initial: f64, current: f64, iteration: usize) -> f64 {
        match *self {
            CoolingSchedule::Geometric { cooling_rate } => {
                current * (1.0 - cooling_rate.clamp(0.0, 1.0))
            }
            CoolingSchedule::Linear { decrement } => (current - decrement.max(0.0)).max(0.0),
            CoolingSchedule::Logarithmic => initial / ((iteration + 2) as f64).ln().max(1.0),
        }
    }

    /// Geometric cooling rate that reaches `final_temperature` from
    /// `initial_temperature` in exactly `iterations` steps.
    ///
    /// The paper controls the iteration budget this way: "We can adjust the number of
    /// iterations required by Simulated Annealing by changing the initial temperature,
    /// or adjusting the cooling function."
    pub fn geometric_for_budget(
        iterations: usize,
        initial_temperature: f64,
        final_temperature: f64,
    ) -> Self {
        assert!(iterations > 0, "at least one iteration is required");
        assert!(
            initial_temperature > final_temperature && final_temperature > 0.0,
            "temperatures must satisfy initial > final > 0"
        );
        let ratio = final_temperature / initial_temperature;
        let cooling_rate = 1.0 - ratio.powf(1.0 / iterations as f64);
        CoolingSchedule::Geometric { cooling_rate }
    }

    /// Number of iterations a geometric schedule needs to cool from `initial` below
    /// `final_temperature`; `None` for non-geometric schedules.
    pub fn geometric_iterations(&self, initial: f64, final_temperature: f64) -> Option<usize> {
        match *self {
            CoolingSchedule::Geometric { cooling_rate } => {
                if cooling_rate <= 0.0 || cooling_rate >= 1.0 {
                    return None;
                }
                let steps = (final_temperature / initial).ln() / (1.0 - cooling_rate).ln();
                Some(steps.ceil().max(0.0) as usize)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_matches_the_paper_formula() {
        let schedule = CoolingSchedule::Geometric { cooling_rate: 0.1 };
        let t = schedule.next_temperature(100.0, 50.0, 3);
        assert!((t - 45.0).abs() < 1e-12);
    }

    #[test]
    fn linear_floors_at_zero() {
        let schedule = CoolingSchedule::Linear { decrement: 30.0 };
        assert_eq!(schedule.next_temperature(100.0, 20.0, 0), 0.0);
        assert_eq!(schedule.next_temperature(100.0, 50.0, 0), 20.0);
    }

    #[test]
    fn logarithmic_decreases_slowly() {
        let schedule = CoolingSchedule::Logarithmic;
        let t1 = schedule.next_temperature(100.0, 100.0, 0);
        let t10 = schedule.next_temperature(100.0, t1, 9);
        let t100 = schedule.next_temperature(100.0, t10, 99);
        assert!(t1 > t10 && t10 > t100);
        assert!(
            t100 > 10.0,
            "logarithmic cooling should still be warm after 100 iterations"
        );
    }

    #[test]
    fn budgeted_schedule_hits_the_requested_iteration_count() {
        for iterations in [100usize, 250, 1000, 2000] {
            let schedule = CoolingSchedule::geometric_for_budget(iterations, 1000.0, 1.0);
            let computed = schedule.geometric_iterations(1000.0, 1.0).unwrap();
            assert!(
                computed.abs_diff(iterations) <= 1,
                "budget {iterations} produced {computed} iterations"
            );
        }
    }

    #[test]
    #[should_panic(expected = "temperatures must satisfy")]
    fn invalid_budget_temperatures_panic() {
        let _ = CoolingSchedule::geometric_for_budget(10, 1.0, 10.0);
    }

    #[test]
    fn geometric_iterations_is_none_for_other_schedules() {
        assert_eq!(
            CoolingSchedule::Linear { decrement: 1.0 }.geometric_iterations(10.0, 1.0),
            None
        );
        assert_eq!(
            CoolingSchedule::Logarithmic.geometric_iterations(10.0, 1.0),
            None
        );
    }
}
