//! Per-iteration optimization traces.

use wd_obs::IterationEvent;

/// One record per optimizer iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Energy of the configuration proposed in this iteration.
    pub proposed_energy: f64,
    /// Energy of the configuration the optimizer holds after this iteration.
    pub current_energy: f64,
    /// Best energy seen so far.
    pub best_energy: f64,
    /// Temperature (or an analogous control parameter; 0 for methods without one).
    pub temperature: f64,
    /// Whether the proposal was accepted.
    pub accepted: bool,
}

impl From<IterationRecord> for IterationEvent {
    fn from(record: IterationRecord) -> Self {
        IterationEvent {
            iteration: record.iteration,
            proposed_energy: record.proposed_energy,
            current_energy: record.current_energy,
            best_energy: record.best_energy,
            temperature: record.temperature,
            accepted: record.accepted,
        }
    }
}

impl From<IterationEvent> for IterationRecord {
    fn from(event: IterationEvent) -> Self {
        IterationRecord {
            iteration: event.iteration,
            proposed_energy: event.proposed_energy,
            current_energy: event.current_energy,
            best_energy: event.best_energy,
            temperature: event.temperature,
            accepted: event.accepted,
        }
    }
}

/// A sequence of [`IterationRecord`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptimizationTrace {
    records: Vec<IterationRecord>,
}

impl OptimizationTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a trace from records — e.g. ones recovered from a recorded run.
    pub fn from_records(records: Vec<IterationRecord>) -> Self {
        OptimizationTrace { records }
    }

    /// Reconstruct a trace from the iteration events published by an observed run
    /// (`run_delta_observed` and friends).  Because observed runs emit one event per
    /// trace record with identical values, a trace rebuilt from a recorder's event
    /// stream — e.g. a replayed [`wd_obs::JsonlExporter`] file, whose `*_bits` fields
    /// preserve exact IEEE-754 energies — equals the original trace bit for bit.
    pub fn from_events(events: &[IterationEvent]) -> Self {
        OptimizationTrace {
            records: events.iter().map(|&event| event.into()).collect(),
        }
    }

    /// Append one record.
    pub fn push(&mut self, record: IterationRecord) {
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Best energy after each iteration (a non-increasing series).
    pub fn best_energy_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.best_energy).collect()
    }

    /// Best energy observed within the first `iterations` iterations (or over the whole
    /// trace if it is shorter).  Returns `None` for an empty trace or `iterations == 0`.
    pub fn best_within(&self, iterations: usize) -> Option<f64> {
        if iterations == 0 {
            return None;
        }
        self.records
            .iter()
            .take(iterations)
            .map(|r| r.best_energy)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.min(e))))
    }

    /// Fraction of proposals that were accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.accepted).count() as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize, best: f64, accepted: bool) -> IterationRecord {
        IterationRecord {
            iteration: i,
            proposed_energy: best + 1.0,
            current_energy: best,
            best_energy: best,
            temperature: 10.0 / (i + 1) as f64,
            accepted,
        }
    }

    #[test]
    fn trace_accumulates_records() {
        let mut trace = OptimizationTrace::new();
        assert!(trace.is_empty());
        for i in 0..5 {
            trace.push(record(i, 10.0 - i as f64, i % 2 == 0));
        }
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.best_energy_series(), vec![10.0, 9.0, 8.0, 7.0, 6.0]);
        assert!((trace.acceptance_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn best_within_takes_a_prefix() {
        let mut trace = OptimizationTrace::new();
        for (i, best) in [5.0, 4.0, 4.0, 2.0, 2.0].iter().enumerate() {
            trace.push(record(i, *best, true));
        }
        assert_eq!(trace.best_within(1), Some(5.0));
        assert_eq!(trace.best_within(4), Some(2.0));
        assert_eq!(trace.best_within(100), Some(2.0));
        assert_eq!(trace.best_within(0), None);
        assert_eq!(OptimizationTrace::new().best_within(3), None);
    }

    #[test]
    fn empty_trace_metrics_are_safe() {
        let trace = OptimizationTrace::new();
        assert_eq!(trace.acceptance_rate(), 0.0);
        assert!(trace.best_energy_series().is_empty());
    }

    #[test]
    fn best_within_edge_cases() {
        // empty trace: None for every horizon, including 0
        let empty = OptimizationTrace::new();
        assert_eq!(empty.best_within(0), None);
        assert_eq!(empty.best_within(1), None);
        assert_eq!(empty.best_within(usize::MAX), None);

        // non-empty trace, iterations == 0: still None (no iterations examined)
        let mut trace = OptimizationTrace::new();
        trace.push(record(0, 7.0, true));
        assert_eq!(trace.best_within(0), None);

        // iterations beyond the trace length clamp to the whole trace
        trace.push(record(1, 3.0, true));
        assert_eq!(trace.best_within(2), Some(3.0));
        assert_eq!(trace.best_within(3), Some(3.0));
        assert_eq!(trace.best_within(usize::MAX), Some(3.0));

        // a single-record trace answers for any positive horizon
        let mut single = OptimizationTrace::new();
        single.push(record(0, 5.0, false));
        assert_eq!(single.best_within(1), Some(5.0));
        assert_eq!(single.best_within(100), Some(5.0));
    }

    #[test]
    fn records_round_trip_through_iteration_events() {
        let mut trace = OptimizationTrace::new();
        for i in 0..4 {
            trace.push(record(i, 9.0 - i as f64, i % 2 == 0));
        }
        let events: Vec<IterationEvent> = trace.records().iter().map(|&r| r.into()).collect();
        let rebuilt = OptimizationTrace::from_events(&events);
        assert_eq!(rebuilt, trace);
        assert_eq!(rebuilt.records(), trace.records());

        // and via the plain-record constructor
        let copied = OptimizationTrace::from_records(trace.records().to_vec());
        assert_eq!(copied, trace);
    }
}
