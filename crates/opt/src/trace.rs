//! Per-iteration optimization traces.

/// One record per optimizer iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Energy of the configuration proposed in this iteration.
    pub proposed_energy: f64,
    /// Energy of the configuration the optimizer holds after this iteration.
    pub current_energy: f64,
    /// Best energy seen so far.
    pub best_energy: f64,
    /// Temperature (or an analogous control parameter; 0 for methods without one).
    pub temperature: f64,
    /// Whether the proposal was accepted.
    pub accepted: bool,
}

/// A sequence of [`IterationRecord`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptimizationTrace {
    records: Vec<IterationRecord>,
}

impl OptimizationTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn push(&mut self, record: IterationRecord) {
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Best energy after each iteration (a non-increasing series).
    pub fn best_energy_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.best_energy).collect()
    }

    /// Best energy observed within the first `iterations` iterations (or over the whole
    /// trace if it is shorter).  Returns `None` for an empty trace or `iterations == 0`.
    pub fn best_within(&self, iterations: usize) -> Option<f64> {
        if iterations == 0 {
            return None;
        }
        self.records
            .iter()
            .take(iterations)
            .map(|r| r.best_energy)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.min(e))))
    }

    /// Fraction of proposals that were accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.accepted).count() as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize, best: f64, accepted: bool) -> IterationRecord {
        IterationRecord {
            iteration: i,
            proposed_energy: best + 1.0,
            current_energy: best,
            best_energy: best,
            temperature: 10.0 / (i + 1) as f64,
            accepted,
        }
    }

    #[test]
    fn trace_accumulates_records() {
        let mut trace = OptimizationTrace::new();
        assert!(trace.is_empty());
        for i in 0..5 {
            trace.push(record(i, 10.0 - i as f64, i % 2 == 0));
        }
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.best_energy_series(), vec![10.0, 9.0, 8.0, 7.0, 6.0]);
        assert!((trace.acceptance_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn best_within_takes_a_prefix() {
        let mut trace = OptimizationTrace::new();
        for (i, best) in [5.0, 4.0, 4.0, 2.0, 2.0].iter().enumerate() {
            trace.push(record(i, *best, true));
        }
        assert_eq!(trace.best_within(1), Some(5.0));
        assert_eq!(trace.best_within(4), Some(2.0));
        assert_eq!(trace.best_within(100), Some(2.0));
        assert_eq!(trace.best_within(0), None);
        assert_eq!(OptimizationTrace::new().best_within(3), None);
    }

    #[test]
    fn empty_trace_metrics_are_safe() {
        let trace = OptimizationTrace::new();
        assert_eq!(trace.acceptance_rate(), 0.0);
        assert!(trace.best_energy_series().is_empty());
    }
}
