//! # wd-opt
//!
//! Combinatorial-optimization heuristics for discrete configuration spaces, built for
//! the reproduction of *Memeti & Pllana, Combinatorial Optimization of Work
//! Distribution on Heterogeneous Systems, ICPP Workshops 2016*.
//!
//! The paper's proposal uses **Simulated Annealing** (Section III-A, Fig. 3) to explore
//! the space of system configurations and compares it against exhaustive
//! **enumeration**.  Section III-A also lists the alternative meta-heuristics the
//! authors considered (genetic algorithms, tabu search, local search); those are
//! provided here as well so the ablation benches can compare them.
//!
//! The crate is generic: anything implementing [`SearchSpace`] (how to sample and
//! perturb configurations) and [`Objective`] (how to score one configuration — lower is
//! better) can be optimized.
//!
//! [`Objective`] is the workspace's **single evaluation layer**: besides one-at-a-time
//! scoring it exposes [`Objective::evaluate_batch`] for bulk evaluation, which
//! batch-capable backends override to run many configurations in one parallel pass.
//! [`CachedObjective`] adds config-keyed memoization (with [`CacheStats`] hit/miss
//! counters) on top of any objective, and [`ParallelEnumeration`] drives an exhaustive
//! search through the batched path.  Separable objectives additionally implement
//! [`DeltaObjective`], the incremental-evaluation contract: the local-search drivers
//! ([`SimulatedAnnealing::run_delta`], [`HillClimbing::run_delta`],
//! [`TabuSearch::run_delta`]) then re-score each neighbour move by recomputing only
//! the components the move touched ([`SearchSpace::neighbor_move`]), bit-identically
//! to full re-evaluation.
//!
//! ## Example
//!
//! ```
//! use wd_opt::{Objective, SearchSpace, SimulatedAnnealing};
//! use rand::rngs::StdRng;
//! use rand::Rng;
//!
//! /// Search space: integers 0..=1000; neighbours differ by at most ±10.
//! struct IntSpace;
//! impl SearchSpace for IntSpace {
//!     type Config = i64;
//!     fn random(&self, rng: &mut StdRng) -> i64 { rng.gen_range(0..=1000) }
//!     fn neighbor(&self, config: &i64, rng: &mut StdRng) -> i64 {
//!         (config + rng.gen_range(-10i64..=10)).clamp(0, 1000)
//!     }
//!     fn cardinality(&self) -> Option<u128> { Some(1001) }
//! }
//!
//! /// Objective: distance to 640 (minimum 0).
//! struct Distance;
//! impl Objective<i64> for Distance {
//!     fn evaluate(&self, config: &i64) -> f64 { (config - 640).abs() as f64 }
//! }
//!
//! let sa = SimulatedAnnealing::with_iteration_budget(500, 100.0, 42);
//! let outcome = sa.run(&IntSpace, &Distance);
//! assert!(outcome.best_energy < 25.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod delta;
pub mod enumeration;
pub mod genetic;
pub mod hill_climbing;
pub mod objective;
pub mod outcome;
pub mod random_search;
pub mod sa;
pub mod schedule;
pub mod shard;
pub mod space;
mod sync;
pub mod tabu;
pub mod trace;

pub use delta::{DeltaObjective, FullDelta, Touched};
pub use enumeration::{Enumeration, EnumerationError, ParallelEnumeration};
pub use genetic::{GeneticAlgorithm, GeneticParams};
pub use hill_climbing::HillClimbing;
pub use objective::{CacheStats, CachedObjective, CountingObjective, Objective};
pub use outcome::{better_indexed, IndexedOutcome, Outcome, ResilienceStats};
pub use random_search::RandomSearch;
pub use sa::SimulatedAnnealing;
pub use schedule::CoolingSchedule;
pub use shard::{ShardPlan, ShardView};
pub use space::{InstrumentedSpace, MaterializedOnly, SearchSpace};
pub use tabu::TabuSearch;
pub use trace::{IterationRecord, OptimizationTrace};
