//! Uniform random search — the weakest sensible baseline for the ablation benches.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::objective::{CountingObjective, Objective};
use crate::outcome::Outcome;
use crate::space::SearchSpace;
use crate::trace::{IterationRecord, OptimizationTrace};

/// Evaluate `samples` uniformly random configurations and keep the best one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSearch {
    /// Number of random configurations to evaluate.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomSearch {
    /// Create a random search with the given sample budget.
    pub fn new(samples: usize, seed: u64) -> Self {
        RandomSearch {
            samples: samples.max(1),
            seed,
        }
    }

    /// Run the search.
    pub fn run<S, O>(&self, space: &S, objective: &O) -> Outcome<S::Config>
    where
        S: SearchSpace,
        O: Objective<S::Config> + ?Sized,
    {
        let counting = CountingObjective::new(objective);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = OptimizationTrace::new();

        let mut best: Option<(S::Config, f64)> = None;
        for iteration in 0..self.samples {
            let config = space.random(&mut rng);
            let energy = counting.evaluate(&config);
            let improved = best.as_ref().is_none_or(|(_, b)| energy < *b);
            if improved {
                best = Some((config, energy));
            }
            let best_energy = best.as_ref().map(|(_, e)| *e).unwrap_or(energy);
            trace.push(IterationRecord {
                iteration,
                proposed_energy: energy,
                current_energy: energy,
                best_energy,
                temperature: 0.0,
                accepted: improved,
            });
        }
        let (best_config, best_energy) = best.expect("at least one sample");

        Outcome {
            best_config,
            best_energy,
            evaluations: counting.evaluations(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GridSpace;

    fn bowl(config: &(u32, u32)) -> f64 {
        let dx = config.0 as f64 - 3.0;
        let dy = config.1 as f64 - 4.0;
        dx * dx + dy * dy
    }

    #[test]
    fn keeps_the_best_of_its_samples() {
        let space = GridSpace {
            width: 16,
            height: 16,
        };
        let outcome = RandomSearch::new(2000, 3).run(&space, &bowl);
        // with 2000 samples over 256 cells, the optimum is found with overwhelming probability
        assert_eq!(outcome.best_energy, 0.0);
        assert_eq!(outcome.evaluations, 2000);
        assert_eq!(outcome.trace.len(), 2000);
    }

    #[test]
    fn more_samples_never_yield_a_worse_result_for_the_same_seed() {
        let space = GridSpace {
            width: 100,
            height: 100,
        };
        let small = RandomSearch::new(50, 5).run(&space, &bowl);
        let large = RandomSearch::new(500, 5).run(&space, &bowl);
        assert!(large.best_energy <= small.best_energy);
    }

    #[test]
    fn zero_samples_is_clamped_to_one() {
        let space = GridSpace {
            width: 4,
            height: 4,
        };
        let outcome = RandomSearch::new(0, 1).run(&space, &bowl);
        assert_eq!(outcome.evaluations, 1);
    }
}
