//! Deterministic sharding of enumerable search spaces.
//!
//! A distributed campaign cuts one enumerable [`SearchSpace`] into contiguous shards,
//! hands each shard to a different node, and merges the per-shard bests.  Two pieces
//! make that reproducible regardless of node count or completion order:
//!
//! * [`ShardPlan`] — the pure arithmetic of the partition: shard `i` of `n` always
//!   covers the same contiguous index range of the enumeration order, with sizes
//!   differing by at most one configuration;
//! * [`ShardView`] — a [`SearchSpace`] over one shard's slice of the enumerated
//!   configurations, so the existing enumeration drivers
//!   ([`crate::ParallelEnumeration`]) run unchanged on a shard.
//!
//! Merging per-shard results is the job of [`crate::better_indexed`] over *global*
//! indices (`shard range start + shard-local index`): since that reduction is a strict
//! minimum under the `(energy, index)` order, the merged outcome is bit-identical to a
//! single-node scan for every shard count and every merge order.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::space::SearchSpace;

/// The deterministic partition of `total` enumeration indices into contiguous shards.
///
/// The requested shard count is clamped to `1..=total` (a shard must hold at least one
/// configuration; enumeration drivers reject empty spaces), and the first
/// `total % shards` shards receive one extra configuration so sizes are balanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    total: usize,
    shards: usize,
}

impl ShardPlan {
    /// Plan `requested_shards` shards over `total` configurations.
    pub fn new(total: usize, requested_shards: usize) -> Self {
        ShardPlan {
            total,
            shards: requested_shards.clamp(1, total.max(1)),
        }
    }

    /// Number of configurations being partitioned.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Effective number of shards (after clamping).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The contiguous index range covered by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn range(&self, shard: usize) -> Range<usize> {
        assert!(
            shard < self.shards,
            "shard {shard} out of range (plan has {} shards)",
            self.shards
        );
        let base = self.total / self.shards;
        let extra = self.total % self.shards;
        let start = shard * base + shard.min(extra);
        let len = base + usize::from(shard < extra);
        start..start + len
    }

    /// All shard ranges, in shard order; they partition `0..total` exactly.
    pub fn ranges(&self) -> Vec<Range<usize>> {
        (0..self.shards).map(|shard| self.range(shard)).collect()
    }
}

/// One shard of an enumerable search space: a contiguous range of the parent's
/// enumeration order, itself usable as a [`SearchSpace`].
///
/// Two backings exist:
///
/// * [`ShardView::new`] — a borrowed slice of the parent's materialised enumeration
///   (the classic form);
/// * [`ShardView::lazy`] — just the index range, served on demand through the
///   parent's [`SearchSpace::config_at`].  Nothing is materialised up front, so a
///   sharded campaign over a lazy view allocates at most one evaluation batch per
///   worker at a time.
///
/// Enumeration-related queries ([`SearchSpace::enumerate`],
/// [`SearchSpace::cardinality`], [`SearchSpace::random`]) are restricted to the shard;
/// move operators ([`SearchSpace::neighbor`], [`SearchSpace::crossover`]) delegate to
/// the parent space and may therefore leave the shard — shard views are meant for the
/// enumeration drivers, not for walking heuristics.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a, S: SearchSpace> {
    parent: &'a S,
    /// Materialised backing; `None` means the shard is served lazily by index.
    configs: Option<&'a [S::Config]>,
    len: usize,
    offset: usize,
}

impl<'a, S: SearchSpace> ShardView<'a, S> {
    /// View `configs` (the parent's enumeration slice starting at global index
    /// `offset`) as a search space of its own.
    pub fn new(parent: &'a S, configs: &'a [S::Config], offset: usize) -> Self {
        ShardView {
            parent,
            len: configs.len(),
            configs: Some(configs),
            offset,
        }
    }

    /// View the global index range `range` of `parent`'s enumeration order as a lazy
    /// search space: configurations are produced one at a time through
    /// [`SearchSpace::config_at`], never as a whole.
    ///
    /// # Panics
    ///
    /// Panics if the parent does not support indexed access
    /// ([`SearchSpace::space_len`] is `None`) or if `range` exceeds its length.
    pub fn lazy(parent: &'a S, range: Range<usize>) -> Self {
        let parent_len = parent
            .space_len()
            .expect("lazy shard views require a space with indexed access");
        assert!(
            range.end <= parent_len,
            "shard range {range:?} exceeds the space length {parent_len}"
        );
        ShardView {
            parent,
            configs: None,
            len: range.len(),
            offset: range.start,
        }
    }

    /// Global enumeration index of the first configuration of this shard.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of configurations in this shard.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Translate a shard-local enumeration index to the parent's global index.
    pub fn global_index(&self, local: usize) -> usize {
        self.offset + local
    }

    /// The shard-local configuration at `local`, from the slice or the parent.
    fn fetch(&self, local: usize) -> S::Config {
        match self.configs {
            Some(configs) => configs[local].clone(),
            None => self
                .parent
                .config_at(self.offset + local)
                .expect("lazy shard ranges are validated against the space length"),
        }
    }
}

impl<S: SearchSpace> SearchSpace for ShardView<'_, S> {
    type Config = S::Config;

    fn random(&self, rng: &mut StdRng) -> S::Config {
        self.fetch(rng.gen_range(0..self.len))
    }

    fn neighbor(&self, config: &S::Config, rng: &mut StdRng) -> S::Config {
        self.parent.neighbor(config, rng)
    }

    fn neighbor_move(
        &self,
        config: &S::Config,
        rng: &mut StdRng,
    ) -> (S::Config, crate::delta::Touched) {
        self.parent.neighbor_move(config, rng)
    }

    fn cardinality(&self) -> Option<u128> {
        Some(self.len as u128)
    }

    fn enumerate(&self) -> Option<Vec<S::Config>> {
        Some((0..self.len).map(|local| self.fetch(local)).collect())
    }

    fn space_len(&self) -> Option<usize> {
        // both backings serve `config_at`: the slice directly, the lazy view through
        // the parent's indexed access (guaranteed by `ShardView::lazy`)
        Some(self.len)
    }

    fn config_at(&self, index: usize) -> Option<S::Config> {
        if index >= self.len {
            return None;
        }
        Some(self.fetch(index))
    }

    fn crossover(&self, parent_a: &S::Config, parent_b: &S::Config, rng: &mut StdRng) -> S::Config {
        self.parent.crossover(parent_a, parent_b, rng)
    }

    fn crossover_move(
        &self,
        parent_a: &S::Config,
        parent_b: &S::Config,
        rng: &mut StdRng,
    ) -> (S::Config, crate::delta::Touched) {
        self.parent.crossover_move(parent_a, parent_b, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::better_indexed;
    use crate::space::GridSpace;
    use crate::ParallelEnumeration;
    use rand::SeedableRng;

    #[test]
    fn plan_partitions_every_index_exactly_once() {
        for total in [1usize, 2, 7, 19, 100, 19_926] {
            for shards in [1usize, 2, 3, 4, 5, 16, 100, 50_000] {
                let plan = ShardPlan::new(total, shards);
                assert!(plan.shard_count() >= 1 && plan.shard_count() <= total);
                let mut next = 0usize;
                for range in plan.ranges() {
                    assert_eq!(range.start, next, "total {total}, shards {shards}");
                    assert!(!range.is_empty());
                    next = range.end;
                }
                assert_eq!(next, total);
            }
        }
    }

    #[test]
    fn plan_balances_shard_sizes_within_one() {
        let plan = ShardPlan::new(19_926, 4);
        let sizes: Vec<usize> = plan.ranges().iter().map(Range::len).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 19_926);
    }

    #[test]
    fn plan_clamps_degenerate_requests() {
        assert_eq!(ShardPlan::new(5, 0).shard_count(), 1);
        assert_eq!(ShardPlan::new(5, 9).shard_count(), 5);
        assert_eq!(ShardPlan::new(0, 3).shard_count(), 1);
        assert!(ShardPlan::new(0, 3).range(0).is_empty());
    }

    #[test]
    fn shard_view_exposes_exactly_its_slice() {
        let space = GridSpace {
            width: 6,
            height: 5,
        };
        let configs = space.enumerate().unwrap();
        let plan = ShardPlan::new(configs.len(), 4);
        let range = plan.range(2);
        let view = ShardView::new(&space, &configs[range.clone()], range.start);

        assert_eq!(view.len(), range.len());
        assert_eq!(view.offset(), range.start);
        assert_eq!(view.cardinality(), Some(range.len() as u128));
        assert_eq!(view.enumerate().unwrap(), configs[range.clone()].to_vec());
        assert_eq!(view.global_index(3), range.start + 3);

        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let sampled = view.random(&mut rng);
            assert!(configs[range.clone()].contains(&sampled));
        }
    }

    #[test]
    fn lazy_shard_views_match_slice_backed_views() {
        let space = GridSpace {
            width: 11,
            height: 7,
        };
        let configs = space.enumerate().unwrap();
        let plan = ShardPlan::new(configs.len(), 3);
        for shard in 0..plan.shard_count() {
            let range = plan.range(shard);
            let sliced = ShardView::new(&space, &configs[range.clone()], range.start);
            let lazy = ShardView::lazy(&space, range.clone());
            assert_eq!(lazy.len(), sliced.len());
            assert_eq!(lazy.offset(), sliced.offset());
            assert_eq!(lazy.enumerate(), sliced.enumerate());
            assert_eq!(lazy.space_len(), Some(range.len()));
            for local in 0..range.len() {
                assert_eq!(lazy.config_at(local), sliced.config_at(local));
            }
            assert_eq!(lazy.config_at(range.len()), None);
        }
    }

    #[test]
    #[should_panic(expected = "lazy shard views require a space with indexed access")]
    fn lazy_shard_views_require_indexed_parents() {
        let space = GridSpace {
            width: 4,
            height: 4,
        };
        let hidden = crate::space::MaterializedOnly::new(&space);
        let _ = ShardView::lazy(&hidden, 0..4);
    }

    #[test]
    fn sharded_scan_merged_by_global_index_matches_the_full_scan() {
        let space = GridSpace {
            width: 23,
            height: 17,
        };
        let objective = |c: &(u32, u32)| ((c.0 * 7 + c.1 * 13) % 29) as f64;
        let reference = ParallelEnumeration::new().run_indexed(&space, &objective);

        let configs = space.enumerate().unwrap();
        for shards in [1usize, 2, 3, 5, 8] {
            let plan = ShardPlan::new(configs.len(), shards);
            let merged = plan
                .ranges()
                .into_iter()
                .map(|range| {
                    let view = ShardView::new(&space, &configs[range.clone()], range.start);
                    let indexed =
                        ParallelEnumeration::with_batch_size(7).run_indexed(&view, &objective);
                    (
                        view.global_index(indexed.best_index),
                        indexed.outcome.best_energy,
                    )
                })
                .reduce(better_indexed)
                .unwrap();
            assert_eq!(merged.0, reference.best_index, "{shards} shards");
            assert_eq!(merged.1.to_bits(), reference.outcome.best_energy.to_bits());
        }
    }
}
