//! Poison-recovering lock helpers for the shared evaluation caches.
//!
//! Poisoning only means another thread panicked while holding the guard; the
//! cache's critical sections leave their data consistent at every step
//! (whole-entry inserts, counter bumps), so the protected state is still
//! usable — and a panic cascade here would turn one failed evaluation into a
//! failed search.

use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquire a read guard, recovering from poisoning instead of panicking.
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a write guard, recovering from poisoning (see [`read_lock`]).
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}
