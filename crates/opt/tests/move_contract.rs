//! Contract tests for the `*_move` entry points of [`SearchSpace`]: the move
//! variants must consume **exactly** the same RNG draws as their footprint-free
//! counterparts (`neighbor` / `crossover`), so that delta-evaluated trajectories are
//! bit-identical to full re-evaluation, and the reported [`Touched`] footprint must
//! never under-approximate the actual per-component diff.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wd_opt::space::GridSpace;
use wd_opt::{InstrumentedSpace, MaterializedOnly, SearchSpace, ShardView, Touched};

/// After replaying the same move sequence through two RNG clones, both streams must
/// be at the same position: drawing once more yields the same value.
fn assert_rngs_in_sync(a: &mut StdRng, b: &mut StdRng) {
    assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "RNG streams diverged");
}

#[test]
fn grid_neighbor_move_is_bit_identical_to_neighbor_and_footprint_is_exact() {
    let space = GridSpace {
        width: 13,
        height: 7,
    };
    for seed in 0..32u64 {
        let mut plain_rng = StdRng::seed_from_u64(seed);
        let mut move_rng = StdRng::seed_from_u64(seed);
        let mut current = space.random(&mut StdRng::seed_from_u64(seed ^ 0xA5A5));
        for _ in 0..200 {
            let plain = space.neighbor(&current, &mut plain_rng);
            let (moved, touched) = space.neighbor_move(&current, &mut move_rng);
            assert_eq!(plain, moved, "seed {seed}");
            let Touched::Components(components) = touched else {
                panic!("GridSpace must report an exact footprint");
            };
            assert_eq!(components.contains(&0), moved.0 != current.0, "seed {seed}");
            assert_eq!(components.contains(&1), moved.1 != current.1, "seed {seed}");
            current = moved;
        }
        assert_rngs_in_sync(&mut plain_rng, &mut move_rng);
    }
}

#[test]
fn grid_crossover_move_is_bit_identical_to_crossover_and_diffs_against_parent_a() {
    let space = GridSpace {
        width: 64,
        height: 64,
    };
    for seed in 0..32u64 {
        let mut setup = StdRng::seed_from_u64(seed.wrapping_mul(977));
        let parent_a = space.random(&mut setup);
        let parent_b = space.random(&mut setup);
        let mut plain_rng = StdRng::seed_from_u64(seed);
        let mut move_rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let plain = space.crossover(&parent_a, &parent_b, &mut plain_rng);
            let (child, touched) = space.crossover_move(&parent_a, &parent_b, &mut move_rng);
            assert_eq!(plain, child, "seed {seed}");
            let Touched::Components(components) = touched else {
                panic!("GridSpace must report an exact crossover footprint");
            };
            assert_eq!(
                components.contains(&0),
                child.0 != parent_a.0,
                "seed {seed}"
            );
            assert_eq!(
                components.contains(&1),
                child.1 != parent_a.1,
                "seed {seed}"
            );
        }
        assert_rngs_in_sync(&mut plain_rng, &mut move_rng);
    }
}

/// The wrappers must forward both move entry points verbatim — same configs, same
/// footprints, same RNG consumption as the wrapped space.
#[test]
fn wrappers_forward_moves_verbatim() {
    let grid = GridSpace {
        width: 9,
        height: 11,
    };
    let configs = grid.enumerate().unwrap();
    let instrumented = InstrumentedSpace::new(&grid);
    let materialized_only = MaterializedOnly::new(&grid);
    let shard = ShardView::new(&grid, &configs, 0);
    let lazy_shard = ShardView::lazy(&grid, 0..configs.len());

    for seed in 0..16u64 {
        let mut setup = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let current = grid.random(&mut setup);
        let other = grid.random(&mut setup);

        let mut base_rng = StdRng::seed_from_u64(seed);
        let base = grid.neighbor_move(&current, &mut base_rng);
        let mut rng = StdRng::seed_from_u64(seed);
        assert_eq!(instrumented.neighbor_move(&current, &mut rng), base);
        let mut rng = StdRng::seed_from_u64(seed);
        assert_eq!(materialized_only.neighbor_move(&current, &mut rng), base);
        let mut rng = StdRng::seed_from_u64(seed);
        assert_eq!(shard.neighbor_move(&current, &mut rng), base);
        let mut rng = StdRng::seed_from_u64(seed);
        assert_eq!(lazy_shard.neighbor_move(&current, &mut rng), base);

        let mut base_rng = StdRng::seed_from_u64(seed);
        let base = grid.crossover_move(&current, &other, &mut base_rng);
        let mut rng = StdRng::seed_from_u64(seed);
        assert_eq!(
            instrumented.crossover_move(&current, &other, &mut rng),
            base
        );
        let mut rng = StdRng::seed_from_u64(seed);
        assert_eq!(
            materialized_only.crossover_move(&current, &other, &mut rng),
            base
        );
        let mut rng = StdRng::seed_from_u64(seed);
        assert_eq!(shard.crossover_move(&current, &other, &mut rng), base);
        let mut rng = StdRng::seed_from_u64(seed);
        assert_eq!(lazy_shard.crossover_move(&current, &other, &mut rng), base);
    }
}

/// A space that overrides only the footprint-free entry points: the trait's default
/// `neighbor_move` / `crossover_move` must delegate (same configs, same RNG draws)
/// and report [`Touched::Unknown`] — the safe over-approximation.
struct OpaquePair;

impl SearchSpace for OpaquePair {
    type Config = (u32, u32);

    fn random(&self, rng: &mut StdRng) -> (u32, u32) {
        (rng.gen_range(0..100), rng.gen_range(0..100))
    }

    fn neighbor(&self, config: &(u32, u32), rng: &mut StdRng) -> (u32, u32) {
        (config.0 ^ rng.gen_range(1..4u32), config.1)
    }

    fn cardinality(&self) -> Option<u128> {
        None
    }

    fn enumerate(&self) -> Option<Vec<(u32, u32)>> {
        None
    }
}

#[test]
fn default_moves_delegate_and_report_unknown() {
    let space = OpaquePair;
    for seed in 0..16u64 {
        let mut setup = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let current = space.random(&mut setup);
        let other = space.random(&mut setup);

        let mut plain_rng = StdRng::seed_from_u64(seed);
        let mut move_rng = StdRng::seed_from_u64(seed);
        let plain = space.neighbor(&current, &mut plain_rng);
        let (moved, touched) = space.neighbor_move(&current, &mut move_rng);
        assert_eq!(plain, moved);
        assert_eq!(touched, Touched::Unknown);
        let plain = space.crossover(&current, &other, &mut plain_rng);
        let (child, touched) = space.crossover_move(&current, &other, &mut move_rng);
        assert_eq!(plain, child);
        assert_eq!(touched, Touched::Unknown);
        assert_rngs_in_sync(&mut plain_rng, &mut move_rng);
    }
}
