//! Property-based tests for the optimization crate.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use wd_opt::space::GridSpace;
use wd_opt::{
    CoolingSchedule, DeltaObjective, Enumeration, GeneticAlgorithm, HillClimbing, Objective,
    RandomSearch, SearchSpace, SimulatedAnnealing, TabuSearch, Touched,
};

/// A separable objective over grid configurations — `max(f(x), g(y))`, the same
/// composition shape as the work-distribution energy — implementing the incremental
/// contract: component 0 is `x`, component 1 is `y` (matching
/// `GridSpace::neighbor_move`), and a move re-evaluates only the touched component.
/// Counts per-component evaluations so tests can verify moves really got cheaper.
struct SeparableGrid {
    target: (u32, u32),
    component_evals: AtomicUsize,
}

impl SeparableGrid {
    fn new(target: (u32, u32)) -> Self {
        SeparableGrid {
            target,
            component_evals: AtomicUsize::new(0),
        }
    }

    fn fx(&self, x: u32) -> f64 {
        self.component_evals.fetch_add(1, Ordering::Relaxed);
        let dx = x as f64 - self.target.0 as f64;
        dx * dx + 5.0 * (dx * 0.31).sin().abs()
    }

    fn gy(&self, y: u32) -> f64 {
        self.component_evals.fetch_add(1, Ordering::Relaxed);
        let dy = y as f64 - self.target.1 as f64;
        dy * dy + 5.0 * (dy * 0.47).sin().abs()
    }
}

impl Objective<(u32, u32)> for SeparableGrid {
    fn evaluate(&self, config: &(u32, u32)) -> f64 {
        self.fx(config.0).max(self.gy(config.1))
    }
}

impl DeltaObjective<(u32, u32)> for SeparableGrid {
    type State = (f64, f64);

    fn evaluate_with_state(&self, config: &(u32, u32)) -> (f64, (f64, f64)) {
        let fx = self.fx(config.0);
        let gy = self.gy(config.1);
        (fx.max(gy), (fx, gy))
    }

    fn evaluate_move(
        &self,
        base: &(u32, u32),
        state: &(f64, f64),
        config: &(u32, u32),
        touched: &Touched,
    ) -> (f64, (f64, f64)) {
        let fx = if touched.may_touch(0) && config.0 != base.0 {
            self.fx(config.0)
        } else {
            state.0
        };
        let gy = if touched.may_touch(1) && config.1 != base.1 {
            self.gy(config.1)
        } else {
            state.1
        };
        (fx.max(gy), (fx, gy))
    }
}

/// A deterministic but seed-parameterised objective with its global optimum at
/// `(target_x, target_y)`.
fn objective(target: (u32, u32)) -> impl Fn(&(u32, u32)) -> f64 + Sync {
    move |config: &(u32, u32)| {
        let dx = config.0 as f64 - target.0 as f64;
        let dy = config.1 as f64 - target.1 as f64;
        dx * dx + dy * dy + 5.0 * ((dx * 0.31).sin().abs() + (dy * 0.47).sin().abs())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Enumeration always returns the true optimum and evaluates every configuration
    /// exactly once.
    #[test]
    fn enumeration_finds_the_optimum(
        width in 2u32..30,
        height in 2u32..30,
        tx in 0u32..30,
        ty in 0u32..30,
    ) {
        let space = GridSpace { width, height };
        let target = (tx.min(width - 1), ty.min(height - 1));
        let outcome = Enumeration::sequential().run(&space, &objective(target));
        prop_assert_eq!(outcome.evaluations as u128, space.cardinality().unwrap());
        // the optimum of the objective restricted to the grid is the clamped target
        prop_assert_eq!(outcome.best_config, target);
    }

    /// Every heuristic returns an energy it actually evaluated (best ≤ every recorded
    /// proposal) and respects its evaluation budget.
    #[test]
    fn heuristics_report_consistent_outcomes(seed in 0u64..500, budget in 50usize..400) {
        let space = GridSpace { width: 64, height: 64 };
        let objective = objective((13, 57));

        let outcomes = vec![
            ("sa", SimulatedAnnealing::with_budget_and_range(budget, 50.0, 0.5, seed).run(&space, &objective)),
            ("hill", HillClimbing::with_budget(budget, seed).run(&space, &objective)),
            ("random", RandomSearch::new(budget, seed).run(&space, &objective)),
            ("ga", GeneticAlgorithm::with_budget(budget, seed).run(&space, &objective)),
            ("tabu", TabuSearch::with_budget(budget / 8 + 1, seed).run(&space, &objective)),
        ];
        for (name, outcome) in outcomes {
            prop_assert!(outcome.best_energy.is_finite(), "{name}");
            // the reported best is never larger than any proposal seen in the trace
            for record in outcome.trace.records() {
                prop_assert!(outcome.best_energy <= record.best_energy + 1e-12, "{name}");
            }
            // budget respected within a small structural slack
            prop_assert!(outcome.evaluations <= budget * 2 + 64,
                "{name} used {} evaluations for budget {budget}", outcome.evaluations);
            // the best energy equals evaluating the best configuration again
            prop_assert!((objective(&outcome.best_config) - outcome.best_energy).abs() < 1e-9, "{name}");
        }
    }

    /// Simulated annealing runs are exactly reproducible per seed, and the best-energy
    /// series in the trace is non-increasing.
    #[test]
    fn annealing_is_reproducible_and_monotone(seed in 0u64..500, budget in 50usize..600) {
        let space = GridSpace { width: 100, height: 100 };
        let objective = objective((71, 23));
        let sa = SimulatedAnnealing::with_budget_and_range(budget, 80.0, 0.4, seed);
        let a = sa.run(&space, &objective);
        let b = sa.run(&space, &objective);
        prop_assert_eq!(a.best_config, b.best_config);
        prop_assert_eq!(a.best_energy, b.best_energy);
        prop_assert_eq!(a.evaluations, b.evaluations);
        let series = a.trace.best_energy_series();
        for pair in series.windows(2) {
            prop_assert!(pair[1] <= pair[0] + 1e-12);
        }
    }

    /// Incremental (delta) trajectories are bit-identical to full re-evaluation for
    /// every local-search driver: same accepted moves, same energies, same
    /// evaluation counts — while evaluating strictly fewer objective components.
    #[test]
    fn delta_trajectories_are_bit_identical_to_full_reevaluation(
        seed in 0u64..500,
        budget in 50usize..250,
        tx in 0u32..64,
        ty in 0u32..64,
    ) {
        let space = GridSpace { width: 64, height: 64 };
        let full = SeparableGrid::new((tx, ty));
        let delta = SeparableGrid::new((tx, ty));

        let sa = SimulatedAnnealing::with_budget_and_range(budget, 50.0, 0.5, seed);
        let a = sa.run(&space, &full);
        let b = sa.run_delta(&space, &delta);
        prop_assert_eq!(&a.best_config, &b.best_config);
        prop_assert_eq!(a.best_energy.to_bits(), b.best_energy.to_bits());
        prop_assert_eq!(a.evaluations, b.evaluations);
        prop_assert_eq!(a.trace.records(), b.trace.records());
        // the full path pays 2 components per evaluation; the delta path at most
        // that, and strictly less whenever any move left a component untouched
        let full_components = full.component_evals.swap(0, Ordering::Relaxed);
        let delta_components = delta.component_evals.swap(0, Ordering::Relaxed);
        prop_assert_eq!(full_components, 2 * a.evaluations);
        prop_assert!(delta_components < full_components,
            "delta path evaluated {delta_components} components, full {full_components}");

        let hill = HillClimbing::with_budget(budget, seed);
        let a = hill.run(&space, &full);
        let b = hill.run_delta(&space, &delta);
        prop_assert_eq!(&a.best_config, &b.best_config);
        prop_assert_eq!(a.best_energy.to_bits(), b.best_energy.to_bits());
        prop_assert_eq!(a.evaluations, b.evaluations);
        prop_assert_eq!(a.trace.records(), b.trace.records());
        prop_assert!(
            delta.component_evals.swap(0, Ordering::Relaxed)
                <= full.component_evals.swap(0, Ordering::Relaxed)
        );

        let tabu = TabuSearch::with_budget(budget / 8 + 1, seed);
        let a = tabu.run(&space, &full);
        let b = tabu.run_delta(&space, &delta);
        prop_assert_eq!(&a.best_config, &b.best_config);
        prop_assert_eq!(a.best_energy.to_bits(), b.best_energy.to_bits());
        prop_assert_eq!(a.evaluations, b.evaluations);
        prop_assert_eq!(a.trace.records(), b.trace.records());
        prop_assert!(
            delta.component_evals.load(Ordering::Relaxed)
                <= full.component_evals.load(Ordering::Relaxed)
        );
    }

    /// The genetic algorithm's incremental path (`run_delta`, scoring each child
    /// against its first parent's retained state from the crossover/mutation
    /// footprint) is bit-identical to the full re-evaluation path — same best
    /// configuration, energies, evaluation counts and trace — while evaluating
    /// strictly fewer objective components.
    #[test]
    fn ga_delta_trajectories_are_bit_identical_to_full_reevaluation(
        seed in 0u64..500,
        budget in 100usize..400,
        tx in 0u32..64,
        ty in 0u32..64,
    ) {
        let space = GridSpace { width: 64, height: 64 };
        let full = SeparableGrid::new((tx, ty));
        let delta = SeparableGrid::new((tx, ty));

        let ga = GeneticAlgorithm::with_budget(budget, seed);
        let a = ga.run(&space, &full);
        let b = ga.run_delta(&space, &delta);
        prop_assert_eq!(&a.best_config, &b.best_config);
        prop_assert_eq!(a.best_energy.to_bits(), b.best_energy.to_bits());
        prop_assert_eq!(a.evaluations, b.evaluations);
        prop_assert_eq!(a.trace.records(), b.trace.records());

        // the full path pays 2 components per evaluation; the delta path scores
        // children from their first parent's retained per-component state, so
        // every component inherited from the first parent is free
        let full_components = full.component_evals.load(Ordering::Relaxed);
        let delta_components = delta.component_evals.load(Ordering::Relaxed);
        prop_assert_eq!(full_components, 2 * a.evaluations);
        prop_assert!(delta_components < full_components,
            "delta path evaluated {delta_components} components, full {full_components}");
    }

    /// Observed runs (a live [`wd_obs::Registry`] recorder attached) are bit-identical
    /// to unobserved runs for every driver: the recorder is consulted strictly after
    /// each trace record is produced and never draws from the RNG, so attaching one
    /// cannot perturb the trajectory.  The registry also receives exactly one
    /// iteration event per trace record with the best-energy series intact.
    #[test]
    fn observed_runs_are_bit_identical_to_unobserved_runs(
        seed in 0u64..200,
        budget in 50usize..250,
        tx in 0u32..64,
        ty in 0u32..64,
    ) {
        use wd_obs::Registry;

        let space = GridSpace { width: 64, height: 64 };
        let plain = SeparableGrid::new((tx, ty));
        let observed = SeparableGrid::new((tx, ty));

        let sa = SimulatedAnnealing::with_budget_and_range(budget, 50.0, 0.5, seed);
        let hill = HillClimbing::with_budget(budget, seed);
        let tabu = TabuSearch::with_budget(budget / 8 + 1, seed);
        let ga = GeneticAlgorithm::with_budget(budget.max(100), seed);

        let registry = Registry::new();
        let runs = vec![
            ("sa", sa.run_delta(&space, &plain),
             sa.run_delta_observed(&space, &observed, &registry, "sa")),
            ("hill_climbing", hill.run_delta(&space, &plain),
             hill.run_delta_observed(&space, &observed, &registry, "hill_climbing")),
            ("tabu", tabu.run_delta(&space, &plain),
             tabu.run_delta_observed(&space, &observed, &registry, "tabu")),
            ("genetic", ga.run_delta(&space, &plain),
             ga.run_delta_observed(&space, &observed, &registry, "genetic")),
        ];

        let snapshot = registry.snapshot();
        for (scope, unobserved, observed) in runs {
            prop_assert_eq!(&unobserved.best_config, &observed.best_config, "{}", scope);
            prop_assert_eq!(
                unobserved.best_energy.to_bits(), observed.best_energy.to_bits(),
                "{}", scope
            );
            prop_assert_eq!(unobserved.evaluations, observed.evaluations, "{}", scope);
            prop_assert_eq!(unobserved.trace.records(), observed.trace.records(), "{}", scope);

            // one iteration event per trace record, ending at the final best energy
            let summary = snapshot.iterations.get(scope)
                .unwrap_or_else(|| panic!("no iteration summary for scope {scope}"));
            prop_assert_eq!(summary.count, observed.trace.len() as u64, "{}", scope);
            prop_assert_eq!(
                summary.last_best_energy.to_bits(), observed.best_energy.to_bits(),
                "{}", scope
            );
        }
        // the two objective instances saw exactly the same component evaluations
        prop_assert_eq!(
            plain.component_evals.load(Ordering::Relaxed),
            observed.component_evals.load(Ordering::Relaxed)
        );
    }

    /// The geometric budget helper produces a schedule that reaches the stop
    /// temperature in (approximately) the requested number of iterations.
    #[test]
    fn geometric_budget_matches_iterations(
        iterations in 10usize..3000,
        t0 in 10.0f64..2000.0,
        t_end in 0.001f64..1.0,
    ) {
        prop_assume!(t0 > t_end * 10.0);
        let schedule = CoolingSchedule::geometric_for_budget(iterations, t0, t_end);
        let steps = schedule.geometric_iterations(t0, t_end).unwrap();
        prop_assert!(steps.abs_diff(iterations) <= 1 + iterations / 100,
            "requested {iterations}, schedule needs {steps}");
    }
}
