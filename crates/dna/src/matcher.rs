//! High-level matcher API combining the motif set and its compiled DFA.

use crate::dfa::{Dfa, DfaStateId};
use crate::pattern::MotifSet;

/// Statistics of one scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchStats {
    /// Total number of motif occurrences found.
    pub matches: u64,
    /// Number of bytes scanned.
    pub bytes_scanned: u64,
    /// Number of bytes that were not concrete bases (headers, `N`, newlines).
    pub invalid_bytes: u64,
}

impl MatchStats {
    /// Motif occurrences per megabyte of scanned input.
    pub fn matches_per_mb(&self) -> f64 {
        if self.bytes_scanned == 0 {
            0.0
        } else {
            self.matches as f64 / (self.bytes_scanned as f64 / 1e6)
        }
    }
}

/// A compiled motif matcher: the user-facing entry point of the DNA analysis
/// application.
#[derive(Debug, Clone)]
pub struct DfaMatcher {
    motifs: MotifSet,
    dfa: Dfa,
}

impl DfaMatcher {
    /// Compile a motif set into a matcher.
    pub fn compile(motifs: &MotifSet) -> Self {
        DfaMatcher {
            motifs: motifs.clone(),
            dfa: Dfa::from_motifs(motifs),
        }
    }

    /// The motif set this matcher searches for.
    pub fn motifs(&self) -> &MotifSet {
        &self.motifs
    }

    /// The underlying DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Length of the longest motif; parallel scanners need `max_len - 1` bytes of
    /// overlap between chunks.
    pub fn required_overlap(&self) -> usize {
        self.motifs.max_len().saturating_sub(1)
    }

    /// Count all motif occurrences in `text` (single-threaded scan).
    pub fn count_matches(&self, text: &[u8]) -> u64 {
        self.dfa.count_matches(text)
    }

    /// Scan and return detailed statistics.
    pub fn scan(&self, text: &[u8]) -> MatchStats {
        let invalid = text
            .iter()
            .filter(|&&b| {
                crate::alphabet::ASCII_TO_BASE[b as usize] == crate::alphabet::INVALID_BASE
            })
            .count() as u64;
        MatchStats {
            matches: self.dfa.count_matches(text),
            bytes_scanned: text.len() as u64,
            invalid_bytes: invalid,
        }
    }

    /// Scan `text` starting from a given DFA state; returns the match count and the
    /// final state.  Used by the parallel scanner and by host/device split execution.
    pub fn scan_from(&self, state: DfaStateId, text: &[u8]) -> (u64, DfaStateId) {
        self.dfa.scan_from(state, text)
    }

    /// Return the end positions (index of the last byte) of the first `limit` motif
    /// occurrences.  Intended for debugging and reports, not for the hot path.
    pub fn find_match_ends(&self, text: &[u8], limit: usize) -> Vec<usize> {
        let mut positions = Vec::new();
        let mut state = Dfa::START;
        for (i, &byte) in text.iter().enumerate() {
            let idx = crate::alphabet::ASCII_TO_BASE[byte as usize];
            if idx == crate::alphabet::INVALID_BASE {
                state = Dfa::START;
                continue;
            }
            state = self
                .dfa
                .step(state, crate::alphabet::Base::from_index(idx as usize));
            for _ in 0..self.dfa.accept_count(state) {
                if positions.len() >= limit {
                    return positions;
                }
                positions.push(i);
            }
        }
        positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::DnaSequence;

    #[test]
    fn matcher_counts_like_its_dfa() {
        let motifs = MotifSet::parse(&["TATA", "GGCC"]).unwrap();
        let matcher = DfaMatcher::compile(&motifs);
        let seq = DnaSequence::random(50_000, 0.5, 17);
        assert_eq!(
            matcher.count_matches(seq.bases()),
            matcher.dfa().count_matches(seq.bases())
        );
    }

    #[test]
    fn scan_reports_invalid_bytes() {
        let motifs = MotifSet::parse(&["ACGT"]).unwrap();
        let matcher = DfaMatcher::compile(&motifs);
        let stats = matcher.scan(b"ACGT\nNNACGT");
        assert_eq!(stats.matches, 2);
        assert_eq!(stats.bytes_scanned, 11);
        assert_eq!(stats.invalid_bytes, 3);
        assert!(stats.matches_per_mb() > 0.0);
    }

    #[test]
    fn required_overlap_is_longest_motif_minus_one() {
        let motifs = MotifSet::parse(&["ACG", "TATAAA"]).unwrap();
        let matcher = DfaMatcher::compile(&motifs);
        assert_eq!(matcher.required_overlap(), 5);
    }

    #[test]
    fn find_match_ends_returns_positions() {
        let motifs = MotifSet::parse(&["ACG"]).unwrap();
        let matcher = DfaMatcher::compile(&motifs);
        let ends = matcher.find_match_ends(b"ACGACG", 10);
        assert_eq!(ends, vec![2, 5]);
        // limit is honoured
        let ends = matcher.find_match_ends(b"ACGACGACG", 2);
        assert_eq!(ends.len(), 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = MatchStats::default();
        assert_eq!(stats.matches_per_mb(), 0.0);
    }
}
