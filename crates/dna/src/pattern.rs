//! Motif patterns with IUPAC degenerate codes.
//!
//! A *motif* is a short pattern over the DNA alphabet.  Besides the concrete bases
//! `A`, `C`, `G`, `T`, positions may use the IUPAC ambiguity codes (`N` = any base,
//! `R` = A or G, `Y` = C or T, ...), which is how biological motifs such as
//! transcription-factor binding sites are usually written.

use std::fmt;

use crate::alphabet::Base;

/// Error produced while parsing a motif.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// The motif string was empty.
    Empty,
    /// A character is not a valid IUPAC nucleotide code.
    InvalidSymbol {
        /// The offending character.
        symbol: char,
        /// Its position within the motif string.
        position: usize,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Empty => write!(f, "motif must not be empty"),
            PatternError::InvalidSymbol { symbol, position } => {
                write!(f, "invalid IUPAC symbol `{symbol}` at position {position}")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// One position of a motif: the set of bases it accepts, stored as a 4-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BaseClass(u8);

impl BaseClass {
    /// Class accepting exactly one base.
    pub fn single(base: Base) -> Self {
        BaseClass(1 << base.index())
    }

    /// Class accepting any base (`N`).
    pub fn any() -> Self {
        BaseClass(0b1111)
    }

    /// Parse an IUPAC nucleotide code.
    pub fn from_iupac(c: char) -> Option<Self> {
        let mask = match c.to_ascii_uppercase() {
            'A' => 0b0001,
            'C' => 0b0010,
            'G' => 0b0100,
            'T' | 'U' => 0b1000,
            'R' => 0b0101, // A or G (purine)
            'Y' => 0b1010, // C or T (pyrimidine)
            'S' => 0b0110, // G or C
            'W' => 0b1001, // A or T
            'K' => 0b1100, // G or T
            'M' => 0b0011, // A or C
            'B' => 0b1110, // not A
            'D' => 0b1101, // not C
            'H' => 0b1011, // not G
            'V' => 0b0111, // not T
            'N' => 0b1111, // any
            _ => return None,
        };
        Some(BaseClass(mask))
    }

    /// Does this class accept `base`?
    #[inline]
    pub fn matches(&self, base: Base) -> bool {
        self.0 & (1 << base.index()) != 0
    }

    /// Number of concrete bases accepted (1..=4).
    pub fn cardinality(&self) -> u32 {
        self.0.count_ones()
    }

    /// Iterate over the accepted bases.
    pub fn bases(&self) -> impl Iterator<Item = Base> + '_ {
        Base::ALL.into_iter().filter(move |b| self.matches(*b))
    }
}

/// A single motif: a sequence of [`BaseClass`] positions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Motif {
    text: String,
    classes: Vec<BaseClass>,
}

impl Motif {
    /// Parse a motif from an IUPAC string.
    pub fn parse(text: &str) -> Result<Self, PatternError> {
        if text.is_empty() {
            return Err(PatternError::Empty);
        }
        let mut classes = Vec::with_capacity(text.len());
        for (position, symbol) in text.chars().enumerate() {
            match BaseClass::from_iupac(symbol) {
                Some(class) => classes.push(class),
                None => return Err(PatternError::InvalidSymbol { symbol, position }),
            }
        }
        Ok(Motif {
            text: text.to_ascii_uppercase(),
            classes,
        })
    }

    /// The motif as written (upper-cased).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Length of the motif in positions.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the motif is empty (never true for parsed motifs).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Per-position base classes.
    pub fn classes(&self) -> &[BaseClass] {
        &self.classes
    }

    /// Does the motif match the window `window` exactly (same length assumed)?
    pub fn matches_window(&self, window: &[Base]) -> bool {
        window.len() == self.len()
            && self
                .classes
                .iter()
                .zip(window)
                .all(|(class, base)| class.matches(*base))
    }

    /// Number of concrete strings this motif can match.
    pub fn concrete_count(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| c.cardinality() as u64)
            .product()
    }
}

/// A set of motifs searched simultaneously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotifSet {
    motifs: Vec<Motif>,
}

impl MotifSet {
    /// Parse a set of motifs; fails on the first invalid motif.
    pub fn parse(texts: &[&str]) -> Result<Self, PatternError> {
        let motifs = texts
            .iter()
            .map(|t| Motif::parse(t))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MotifSet { motifs })
    }

    /// Build a set from already-parsed motifs.
    pub fn new(motifs: Vec<Motif>) -> Self {
        MotifSet { motifs }
    }

    /// The default motif set used throughout the reproduction: a handful of well-known
    /// biological signals (TATA box, CAAT box, a restriction site, a degenerate E-box).
    pub fn reference() -> Self {
        MotifSet::parse(&["TATAAA", "GGCCAATCT", "GAATTC", "CANNTG"]).expect("valid motifs")
    }

    /// Motifs in the set.
    pub fn motifs(&self) -> &[Motif] {
        &self.motifs
    }

    /// Number of motifs.
    pub fn len(&self) -> usize {
        self.motifs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.motifs.is_empty()
    }

    /// Length of the longest motif (0 for an empty set).
    pub fn max_len(&self) -> usize {
        self.motifs.iter().map(Motif::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_concrete_motif() {
        let motif = Motif::parse("ACGT").unwrap();
        assert_eq!(motif.len(), 4);
        assert_eq!(motif.text(), "ACGT");
        assert_eq!(motif.concrete_count(), 1);
        assert!(motif.matches_window(&[Base::A, Base::C, Base::G, Base::T]));
        assert!(!motif.matches_window(&[Base::A, Base::C, Base::G, Base::G]));
    }

    #[test]
    fn parse_degenerate_motif() {
        let motif = Motif::parse("CANNTG").unwrap();
        assert_eq!(motif.concrete_count(), 16);
        assert!(motif.matches_window(&[Base::C, Base::A, Base::G, Base::C, Base::T, Base::G]));
        assert!(motif.matches_window(&[Base::C, Base::A, Base::A, Base::T, Base::T, Base::G]));
        assert!(!motif.matches_window(&[Base::C, Base::C, Base::A, Base::T, Base::T, Base::G]));
    }

    #[test]
    fn lowercase_and_u_are_accepted() {
        let motif = Motif::parse("acgu").unwrap();
        assert!(motif.matches_window(&[Base::A, Base::C, Base::G, Base::T]));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Motif::parse(""), Err(PatternError::Empty));
        assert_eq!(
            Motif::parse("ACXG"),
            Err(PatternError::InvalidSymbol {
                symbol: 'X',
                position: 2
            })
        );
        assert!(MotifSet::parse(&["ACGT", "BAD!"]).is_err());
    }

    #[test]
    fn iupac_classes_have_expected_cardinality() {
        assert_eq!(BaseClass::from_iupac('A').unwrap().cardinality(), 1);
        assert_eq!(BaseClass::from_iupac('R').unwrap().cardinality(), 2);
        assert_eq!(BaseClass::from_iupac('B').unwrap().cardinality(), 3);
        assert_eq!(BaseClass::from_iupac('N').unwrap().cardinality(), 4);
        assert!(BaseClass::from_iupac('Z').is_none());
    }

    #[test]
    fn purine_and_pyrimidine_sets() {
        let r = BaseClass::from_iupac('R').unwrap();
        assert!(r.matches(Base::A) && r.matches(Base::G));
        assert!(!r.matches(Base::C) && !r.matches(Base::T));
        let y = BaseClass::from_iupac('Y').unwrap();
        assert!(y.matches(Base::C) && y.matches(Base::T));
    }

    #[test]
    fn reference_set_is_well_formed() {
        let set = MotifSet::reference();
        assert_eq!(set.len(), 4);
        assert_eq!(set.max_len(), 9);
        assert!(!set.is_empty());
    }

    #[test]
    fn base_class_bases_iterator() {
        let n = BaseClass::any();
        assert_eq!(n.bases().count(), 4);
        let a = BaseClass::single(Base::A);
        assert_eq!(a.bases().collect::<Vec<_>>(), vec![Base::A]);
    }
}
