//! The genomes used in the paper's evaluation.
//!
//! The paper analyses real GenBank sequences of four organisms.  We reproduce them with
//! seeded synthetic sequences of the same nominal size; a scale factor shrinks them for
//! in-memory test/example runs while the *nominal* sizes feed the platform simulator so
//! simulated execution times match the paper's regime.

use hetero_platform::WorkloadProfile;

use crate::sequence::DnaSequence;

/// One of the four organisms of the paper's evaluation (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Genome {
    /// Homo sapiens, 3.17 GB.
    Human,
    /// Mus musculus, 2.77 GB.
    Mouse,
    /// Felis catus, 2.43 GB.
    Cat,
    /// Canis lupus familiaris, 2.38 GB.
    Dog,
}

impl Genome {
    /// All four genomes in the order used by the paper's tables.
    pub const ALL: [Genome; 4] = [Genome::Human, Genome::Mouse, Genome::Cat, Genome::Dog];

    /// Lowercase organism name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Genome::Human => "human",
            Genome::Mouse => "mouse",
            Genome::Cat => "cat",
            Genome::Dog => "dog",
        }
    }

    /// Nominal sequence size in bytes (Section IV-A of the paper).
    pub fn nominal_bytes(&self) -> u64 {
        match self {
            Genome::Human => 3_170_000_000,
            Genome::Mouse => 2_770_000_000,
            Genome::Cat => 2_430_000_000,
            Genome::Dog => 2_380_000_000,
        }
    }

    /// Typical GC content of the organism (approximate; only used for synthesis).
    pub fn gc_content(&self) -> f64 {
        match self {
            Genome::Human => 0.41,
            Genome::Mouse => 0.42,
            Genome::Cat => 0.42,
            Genome::Dog => 0.41,
        }
    }

    /// Parse a genome from its lowercase name.
    pub fn parse(name: &str) -> Option<Genome> {
        match name.trim().to_ascii_lowercase().as_str() {
            "human" => Some(Genome::Human),
            "mouse" => Some(Genome::Mouse),
            "cat" => Some(Genome::Cat),
            "dog" => Some(Genome::Dog),
            _ => None,
        }
    }

    /// Workload profile describing a scan of the *full nominal-size* genome — the input
    /// the platform simulator works with.
    pub fn workload(&self) -> WorkloadProfile {
        WorkloadProfile::dna_scan(self.name(), self.nominal_bytes())
    }

    /// Workload profile for a fraction of the genome (the paper's "DNA sequence
    /// fraction" training parameter, expressed in 0..=1).
    pub fn workload_fraction(&self, fraction: f64) -> WorkloadProfile {
        self.workload().fraction(fraction)
    }

    /// Synthesize an in-memory sequence of `nominal_bytes() / scale_down` bases, seeded
    /// per organism so repeated calls return the same data.
    ///
    /// `scale_down = 1` would synthesise the full multi-gigabyte genome; tests and
    /// examples typically use `scale_down` of 1 000 – 100 000.
    pub fn synthesize(&self, scale_down: u64) -> DnaSequence {
        let scale_down = scale_down.max(1);
        let length = (self.nominal_bytes() / scale_down).max(1) as usize;
        let seed = 0xD4A_5EED ^ (*self as u64);
        let mut sequence = DnaSequence::random(length, self.gc_content(), seed);
        // give the sequence its organism name
        sequence = DnaSequence::from_ascii(self.name(), sequence.bases());
        sequence
    }
}

impl std::fmt::Display for Genome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_sizes_match_the_paper() {
        assert_eq!(Genome::Human.nominal_bytes(), 3_170_000_000);
        assert_eq!(Genome::Mouse.nominal_bytes(), 2_770_000_000);
        assert_eq!(Genome::Cat.nominal_bytes(), 2_430_000_000);
        assert_eq!(Genome::Dog.nominal_bytes(), 2_380_000_000);
    }

    #[test]
    fn names_round_trip() {
        for g in Genome::ALL {
            assert_eq!(Genome::parse(g.name()), Some(g));
            assert_eq!(format!("{g}"), g.name());
        }
        assert_eq!(Genome::parse("yeti"), None);
    }

    #[test]
    fn workload_uses_nominal_size() {
        let w = Genome::Cat.workload();
        assert_eq!(w.bytes, 2_430_000_000);
        assert_eq!(w.name, "cat");
        let half = Genome::Cat.workload_fraction(0.5);
        assert_eq!(half.bytes, 1_215_000_000);
    }

    #[test]
    fn synthesis_is_deterministic_and_scaled() {
        let a = Genome::Dog.synthesize(100_000);
        let b = Genome::Dog.synthesize(100_000);
        assert_eq!(a.bases(), b.bases());
        assert_eq!(a.len() as u64, Genome::Dog.nominal_bytes() / 100_000);
        assert_eq!(a.name(), "dog");
        // different organisms differ
        let c = Genome::Cat.synthesize(100_000);
        assert_ne!(a.bases(), c.bases());
    }

    #[test]
    fn scale_down_zero_is_clamped() {
        // scale_down = 0 would divide by zero; it is clamped to 1, which would be the
        // full genome — far too large to synthesise here, so only check the arithmetic
        // via a large scale factor.
        let s = Genome::Human.synthesize(10_000_000);
        assert_eq!(s.len(), 317);
    }
}
