//! Bridge between the DNA application and the platform simulator.

use hetero_platform::WorkloadProfile;

use crate::genome::Genome;
use crate::matcher::DfaMatcher;
use crate::pattern::MotifSet;

/// A complete DNA analysis job: which sequence to scan (by nominal size) and which
/// motifs to search for.
///
/// The job can be rendered either as a [`WorkloadProfile`] for the platform simulator
/// (nominal, multi-gigabyte sizes) or as an actual in-memory scan via
/// [`DnaWorkload::compile`] plus [`Genome::synthesize`].
#[derive(Debug, Clone)]
pub struct DnaWorkload {
    /// Descriptive name (organism or dataset).
    pub name: String,
    /// Number of bytes in the (nominal) input sequence.
    pub bytes: u64,
    /// Motifs to search for.
    pub motifs: MotifSet,
}

impl DnaWorkload {
    /// Job scanning the full nominal-size genome of `genome` for the reference motifs.
    pub fn for_genome(genome: Genome) -> Self {
        DnaWorkload {
            name: genome.name().to_string(),
            bytes: genome.nominal_bytes(),
            motifs: MotifSet::reference(),
        }
    }

    /// Job over a custom byte count and motif set.
    pub fn custom(name: &str, bytes: u64, motifs: MotifSet) -> Self {
        DnaWorkload {
            name: name.to_string(),
            bytes,
            motifs,
        }
    }

    /// The workload profile the platform simulator / autotuner consumes.
    pub fn profile(&self) -> WorkloadProfile {
        WorkloadProfile::dna_scan(&self.name, self.bytes)
    }

    /// Profile of a fraction (0..=1) of the job.
    pub fn profile_fraction(&self, fraction: f64) -> WorkloadProfile {
        self.profile().fraction(fraction)
    }

    /// Compile the motif set into a matcher for actually running the scan.
    pub fn compile(&self) -> DfaMatcher {
        DfaMatcher::compile(&self.motifs)
    }

    /// Split the job's bytes into a host share and a device share for a host
    /// percentage in 0..=100 (the paper's workload-fraction parameter).
    pub fn split_bytes(&self, host_percent: u32) -> (u64, u64) {
        let host_percent = host_percent.min(100) as u64;
        let host = self.bytes * host_percent / 100;
        (host, self.bytes - host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_workload_matches_genome() {
        let job = DnaWorkload::for_genome(Genome::Mouse);
        assert_eq!(job.bytes, Genome::Mouse.nominal_bytes());
        assert_eq!(job.profile().name, "mouse");
        assert_eq!(job.profile().bytes, job.bytes);
    }

    #[test]
    fn split_bytes_partitions_exactly() {
        let job = DnaWorkload::for_genome(Genome::Human);
        for pct in [0u32, 1, 37, 50, 99, 100, 250] {
            let (host, device) = job.split_bytes(pct);
            assert_eq!(host + device, job.bytes, "pct {pct}");
        }
        let (host, device) = job.split_bytes(0);
        assert_eq!(host, 0);
        assert_eq!(device, job.bytes);
    }

    #[test]
    fn profile_fraction_scales() {
        let job = DnaWorkload::custom("tiny", 1_000_000, MotifSet::reference());
        assert_eq!(job.profile_fraction(0.25).bytes, 250_000);
    }

    #[test]
    fn compile_produces_a_working_matcher() {
        let job = DnaWorkload::custom("x", 100, MotifSet::parse(&["ACGT"]).unwrap());
        let matcher = job.compile();
        assert_eq!(matcher.count_matches(b"ACGTACGT"), 2);
    }
}
