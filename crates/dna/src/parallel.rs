//! Parallel chunked scanning.
//!
//! The DNA scan is embarrassingly parallel after splitting the sequence into chunks:
//! because a motif occurrence spans at most `max_len` bytes, a worker that starts
//! scanning `max_len - 1` bytes *before* its chunk (from the DFA start state) observes
//! every occurrence ending inside the chunk.  This is the same speculative-boundary
//! idea the paper's PaREM tool uses to parallelise finite-automata execution; the
//! overlap variant is simpler and exact for motif search.
//!
//! Work is distributed dynamically: chunk descriptors live in a shared list and worker
//! threads claim the next one with an atomic cursor, which keeps all threads busy even
//! when some chunks contain more invalid bytes (and are therefore cheaper) than others.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::matcher::DfaMatcher;

/// Default chunk size used when splitting work (1 MiB keeps the queue short but the
/// load balanced).
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// A multi-threaded scanner.
#[derive(Debug, Clone)]
pub struct ParallelScanner {
    threads: usize,
    chunk_bytes: usize,
}

impl ParallelScanner {
    /// Create a scanner that uses `threads` worker threads (at least 1).
    pub fn new(threads: usize) -> Self {
        ParallelScanner {
            threads: threads.max(1),
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }

    /// Override the chunk size (mostly useful for tests).
    pub fn with_chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        self.chunk_bytes = chunk_bytes.max(1);
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Count all motif occurrences in `text` using all worker threads.
    ///
    /// The result is exactly equal to [`DfaMatcher::count_matches`] on the same input.
    pub fn count_matches(&self, matcher: &DfaMatcher, text: &[u8]) -> u64 {
        if text.is_empty() {
            return 0;
        }
        if self.threads == 1 || text.len() <= self.chunk_bytes {
            return matcher.count_matches(text);
        }

        let overlap = matcher.required_overlap();
        let mut chunks: Vec<(usize, usize)> = Vec::new();
        let mut start = 0usize;
        while start < text.len() {
            let end = (start + self.chunk_bytes).min(text.len());
            chunks.push((start, end));
            start = end;
        }

        let cursor = AtomicUsize::new(0);
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    let mut local = 0u64;
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(chunk_start, chunk_end)) = chunks.get(index) else {
                            break;
                        };
                        local += scan_chunk(matcher, text, chunk_start, chunk_end, overlap);
                    }
                    total.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        total.into_inner()
    }

    /// Split the input into a host part and a device part according to
    /// `host_fraction` (0..=1) and scan both, returning `(host matches, device
    /// matches)`.  Both parts are scanned on the local machine — the "device" half
    /// exists so that examples can demonstrate the work-partitioning semantics of the
    /// paper's offload scheme with bit-exact results.
    pub fn count_matches_split(
        &self,
        matcher: &DfaMatcher,
        text: &[u8],
        host_fraction: f64,
    ) -> (u64, u64) {
        let host_fraction = host_fraction.clamp(0.0, 1.0);
        let boundary = (text.len() as f64 * host_fraction).round() as usize;
        let boundary = boundary.min(text.len());
        let overlap = matcher.required_overlap();

        let host_matches = self.count_matches(matcher, &text[..boundary]);
        // the device part re-scans the overlap so occurrences crossing the boundary are
        // attributed to the device side exactly once
        let device_matches = if boundary >= text.len() {
            0
        } else {
            let device_start = boundary.saturating_sub(overlap);
            let (all, _) = matcher.scan_from(crate::dfa::Dfa::START, &text[device_start..]);
            let (before_boundary, _) =
                matcher.scan_from(crate::dfa::Dfa::START, &text[device_start..boundary]);
            // subtract occurrences that end before the boundary (already counted by host)
            let device_direct = self.count_matches(matcher, &text[boundary..]);
            // occurrences crossing the boundary:
            let crossing = all - before_boundary - device_direct;
            device_direct + crossing
        };
        (host_matches, device_matches)
    }
}

/// Scan one chunk, counting only occurrences that end inside `[chunk_start, chunk_end)`.
fn scan_chunk(
    matcher: &DfaMatcher,
    text: &[u8],
    chunk_start: usize,
    chunk_end: usize,
    overlap: usize,
) -> u64 {
    let scan_start = chunk_start.saturating_sub(overlap);
    if scan_start == chunk_start {
        matcher.count_matches(&text[chunk_start..chunk_end])
    } else {
        // matches ending in the warm-up region were counted by the previous chunk
        let (_, state) = matcher.scan_from(crate::dfa::Dfa::START, &text[scan_start..chunk_start]);
        let (matches, _) = matcher.scan_from(state, &text[chunk_start..chunk_end]);
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::MotifSet;
    use crate::sequence::DnaSequence;

    fn matcher() -> DfaMatcher {
        DfaMatcher::compile(&MotifSet::reference())
    }

    #[test]
    fn parallel_equals_sequential() {
        let m = matcher();
        let seq = DnaSequence::random_with_motif(2_000_000, 0.42, 5, "TATAAA", 300);
        let sequential = m.count_matches(seq.bases());
        for threads in [1, 2, 4, 8] {
            let scanner = ParallelScanner::new(threads).with_chunk_bytes(64 * 1024);
            assert_eq!(
                scanner.count_matches(&m, seq.bases()),
                sequential,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn chunk_boundaries_do_not_lose_matches() {
        // Use a tiny chunk size so a planted motif is guaranteed to straddle boundaries.
        let m = DfaMatcher::compile(&MotifSet::parse(&["ACGTACGTAC"]).unwrap());
        let seq = DnaSequence::random_with_motif(100_000, 0.5, 13, "ACGTACGTAC", 500);
        let sequential = m.count_matches(seq.bases());
        assert!(sequential >= 500);
        let scanner = ParallelScanner::new(4).with_chunk_bytes(97); // deliberately odd
        assert_eq!(scanner.count_matches(&m, seq.bases()), sequential);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let m = matcher();
        let scanner = ParallelScanner::new(8);
        assert_eq!(scanner.count_matches(&m, b""), 0);
        assert_eq!(scanner.count_matches(&m, b"ACG"), m.count_matches(b"ACG"));
    }

    #[test]
    fn split_counts_sum_to_total() {
        let m = matcher();
        let seq = DnaSequence::random_with_motif(500_000, 0.42, 21, "GAATTC", 100);
        let total = m.count_matches(seq.bases());
        let scanner = ParallelScanner::new(4).with_chunk_bytes(32 * 1024);
        for fraction in [0.0, 0.1, 0.33, 0.5, 0.77, 1.0] {
            let (host, device) = scanner.count_matches_split(&m, seq.bases(), fraction);
            assert_eq!(host + device, total, "fraction {fraction}");
        }
    }

    #[test]
    fn scanner_defaults_are_sane() {
        let scanner = ParallelScanner::new(0);
        assert_eq!(scanner.threads(), 1);
        let scanner = ParallelScanner::new(3).with_chunk_bytes(0);
        assert_eq!(scanner.chunk_bytes, 1);
    }
}
