//! Non-deterministic finite automaton over the motif set.
//!
//! The NFA has one *start* state with a self-loop on every base (so matches can begin
//! at any position) and a linear chain of states per motif.  State `(m, i)` means
//! "the last `i` bases matched the first `i` positions of motif `m`"; reaching
//! `(m, len(m))` reports one occurrence of motif `m`.

use crate::alphabet::Base;
use crate::pattern::MotifSet;

/// Identifier of an NFA state.
pub type NfaStateId = u32;

/// The motif NFA.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Number of states (state 0 is the start state).
    state_count: u32,
    /// `transitions[state][base]` = successor states (excluding the implicit restart
    /// through the start state, which subset construction adds automatically because
    /// the start state is a member of every reachable subset).
    transitions: Vec<[Vec<NfaStateId>; 4]>,
    /// `accepting[state]` = index of the motif that ends in this state, if any.
    accepting: Vec<Option<u32>>,
}

impl Nfa {
    /// Identifier of the start state.
    pub const START: NfaStateId = 0;

    /// Build the NFA for a motif set.
    pub fn from_motifs(motifs: &MotifSet) -> Self {
        // count states: 1 (start) + sum of motif lengths
        let total_states: usize = 1 + motifs.motifs().iter().map(|m| m.len()).sum::<usize>();
        let mut transitions: Vec<[Vec<NfaStateId>; 4]> = vec![Default::default(); total_states];
        let mut accepting: Vec<Option<u32>> = vec![None; total_states];

        // start state loops on every base
        for base in Base::ALL {
            transitions[Self::START as usize][base.index()].push(Self::START);
        }

        let mut next_state: NfaStateId = 1;
        for (motif_idx, motif) in motifs.motifs().iter().enumerate() {
            let mut prev = Self::START;
            for (pos, class) in motif.classes().iter().enumerate() {
                let state = next_state;
                next_state += 1;
                for base in Base::ALL {
                    if class.matches(base) {
                        transitions[prev as usize][base.index()].push(state);
                    }
                }
                if pos + 1 == motif.len() {
                    accepting[state as usize] = Some(motif_idx as u32);
                }
                prev = state;
            }
        }

        Nfa {
            state_count: next_state,
            transitions,
            accepting,
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> u32 {
        self.state_count
    }

    /// Successors of `state` on input `base` (not including restart semantics).
    pub fn successors(&self, state: NfaStateId, base: Base) -> &[NfaStateId] {
        &self.transitions[state as usize][base.index()]
    }

    /// The motif accepted in `state`, if any.
    pub fn accepting_motif(&self, state: NfaStateId) -> Option<u32> {
        self.accepting[state as usize]
    }

    /// Number of accepting states.
    pub fn accepting_count(&self) -> usize {
        self.accepting.iter().filter(|a| a.is_some()).count()
    }

    /// Simulate the NFA directly (slow, used as a test oracle for the DFA): returns the
    /// total number of motif occurrences in `text`.
    pub fn count_matches_slow(&self, text: &[u8]) -> u64 {
        let mut current: Vec<NfaStateId> = vec![Self::START];
        let mut matches = 0u64;
        let mut next: Vec<NfaStateId> = Vec::new();
        for &byte in text {
            let base = match Base::from_ascii(byte) {
                Some(b) => b,
                None => {
                    // invalid characters break any partial match
                    current.clear();
                    current.push(Self::START);
                    continue;
                }
            };
            next.clear();
            for &state in &current {
                for &succ in self.successors(state, base) {
                    if !next.contains(&succ) {
                        next.push(succ);
                    }
                }
            }
            std::mem::swap(&mut current, &mut next);
            matches += current
                .iter()
                .filter(|&&s| self.accepting[s as usize].is_some())
                .count() as u64;
        }
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::MotifSet;

    #[test]
    fn state_count_is_one_plus_total_motif_length() {
        let motifs = MotifSet::parse(&["ACG", "TT"]).unwrap();
        let nfa = Nfa::from_motifs(&motifs);
        assert_eq!(nfa.state_count(), 1 + 3 + 2);
        assert_eq!(nfa.accepting_count(), 2);
    }

    #[test]
    fn start_state_loops_on_all_bases() {
        let motifs = MotifSet::parse(&["A"]).unwrap();
        let nfa = Nfa::from_motifs(&motifs);
        for base in Base::ALL {
            assert!(nfa.successors(Nfa::START, base).contains(&Nfa::START));
        }
    }

    #[test]
    fn slow_simulation_counts_overlapping_matches() {
        let motifs = MotifSet::parse(&["AA"]).unwrap();
        let nfa = Nfa::from_motifs(&motifs);
        // "AAAA" contains three overlapping occurrences of "AA"
        assert_eq!(nfa.count_matches_slow(b"AAAA"), 3);
    }

    #[test]
    fn slow_simulation_counts_multiple_motifs() {
        let motifs = MotifSet::parse(&["ACG", "CGT"]).unwrap();
        let nfa = Nfa::from_motifs(&motifs);
        // "ACGT" contains one of each
        assert_eq!(nfa.count_matches_slow(b"ACGT"), 2);
    }

    #[test]
    fn degenerate_motifs_match_every_expansion() {
        let motifs = MotifSet::parse(&["AN"]).unwrap();
        let nfa = Nfa::from_motifs(&motifs);
        // "AAACAGAT": matches start at 0 (AA), 1 (AA), 2 (AC), 4 (AG), 6 (AT)
        assert_eq!(nfa.count_matches_slow(b"AAACAGAT"), 5);
    }

    #[test]
    fn invalid_characters_reset_matching() {
        let motifs = MotifSet::parse(&["ACGT"]).unwrap();
        let nfa = Nfa::from_motifs(&motifs);
        assert_eq!(nfa.count_matches_slow(b"ACNGT"), 0);
        assert_eq!(nfa.count_matches_slow(b"ACGT"), 1);
    }
}
