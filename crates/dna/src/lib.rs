//! # dna-analysis
//!
//! A finite-automata based DNA sequence (motif) analysis library, modelled after the
//! PaREM-generated application used in *Memeti & Pllana, Combinatorial Optimization of
//! Work Distribution on Heterogeneous Systems, ICPP Workshops 2016*.
//!
//! The application searches large DNA sequences (gigabytes of `A`/`C`/`G`/`T`
//! characters) for a set of motifs.  Motifs may use IUPAC degenerate codes.  The motif
//! set is compiled into an NFA and then, via subset construction, into a dense DFA that
//! scans the sequence one byte at a time; the scan is embarrassingly parallel after
//! chunking the sequence with a small overlap.
//!
//! The crate also provides seeded synthetic genome generators matching the sizes of the
//! real GenBank sequences used in the paper (human 3.17 GB, mouse 2.77 GB, cat 2.43 GB,
//! dog 2.38 GB) — scaled down by a configurable factor so that tests and examples run
//! in memory — and a bridge to [`hetero_platform::WorkloadProfile`] so that the
//! autotuner can reason about DNA jobs.
//!
//! ## Example
//!
//! ```
//! use dna_analysis::{DnaSequence, MotifSet, DfaMatcher, ParallelScanner};
//!
//! let sequence = DnaSequence::random(100_000, 0.42, 7);
//! let motifs = MotifSet::parse(&["ACGT", "TATA", "GGN"]).unwrap();
//! let dfa = DfaMatcher::compile(&motifs);
//!
//! let sequential = dfa.count_matches(sequence.bases());
//! let parallel = ParallelScanner::new(4).count_matches(&dfa, sequence.bases());
//! assert_eq!(sequential, parallel);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alphabet;
pub mod dfa;
pub mod genome;
pub mod matcher;
pub mod nfa;
pub mod parallel;
pub mod pattern;
pub mod sequence;
pub mod workload;

pub use alphabet::Base;
pub use dfa::Dfa;
pub use genome::Genome;
pub use matcher::{DfaMatcher, MatchStats};
pub use nfa::Nfa;
pub use parallel::ParallelScanner;
pub use pattern::{Motif, MotifSet, PatternError};
pub use sequence::DnaSequence;
pub use workload::DnaWorkload;
