//! Deterministic finite automaton built from the motif NFA by subset construction.
//!
//! The DFA uses a dense `states × 4` transition table so the hot scanning loop is a
//! single table lookup per input byte — the structure the paper's PaREM tool generates
//! and the reason the workload vectorises and scales well on both the host and the
//! Xeon Phi.

use std::collections::HashMap;

use crate::alphabet::{Base, ASCII_TO_BASE, INVALID_BASE};
use crate::nfa::{Nfa, NfaStateId};
use crate::pattern::MotifSet;

/// Identifier of a DFA state.
pub type DfaStateId = u32;

/// Dense deterministic automaton over the 4-letter DNA alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    /// `transitions[state * 4 + base]` = successor state.
    transitions: Vec<DfaStateId>,
    /// `accept_counts[state]` = number of motif occurrences that end when this state is
    /// entered.
    accept_counts: Vec<u32>,
    /// Number of states.
    state_count: u32,
}

impl Dfa {
    /// The start state (always 0).
    pub const START: DfaStateId = 0;

    /// Build the DFA for a motif set via subset construction over the motif NFA.
    pub fn from_motifs(motifs: &MotifSet) -> Self {
        let nfa = Nfa::from_motifs(motifs);
        Self::from_nfa(&nfa)
    }

    /// Subset construction.
    pub fn from_nfa(nfa: &Nfa) -> Self {
        let mut subset_ids: HashMap<Vec<NfaStateId>, DfaStateId> = HashMap::new();
        let mut subsets: Vec<Vec<NfaStateId>> = Vec::new();
        let mut transitions: Vec<DfaStateId> = Vec::new();
        let mut accept_counts: Vec<u32> = Vec::new();

        let start_subset = vec![Nfa::START];
        subset_ids.insert(start_subset.clone(), 0);
        subsets.push(start_subset);
        accept_counts.push(0);
        transitions.extend_from_slice(&[0; 4]);

        let mut worklist = vec![0 as DfaStateId];
        while let Some(dfa_state) = worklist.pop() {
            let subset = subsets[dfa_state as usize].clone();
            for base in Base::ALL {
                let mut next: Vec<NfaStateId> = Vec::new();
                for &nfa_state in &subset {
                    for &succ in nfa.successors(nfa_state, base) {
                        if !next.contains(&succ) {
                            next.push(succ);
                        }
                    }
                }
                next.sort_unstable();
                let next_id = match subset_ids.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = subsets.len() as DfaStateId;
                        subset_ids.insert(next.clone(), id);
                        let accepts = next
                            .iter()
                            .filter(|&&s| nfa.accepting_motif(s).is_some())
                            .count() as u32;
                        subsets.push(next);
                        accept_counts.push(accepts);
                        transitions.extend_from_slice(&[0; 4]);
                        worklist.push(id);
                        id
                    }
                };
                transitions[dfa_state as usize * 4 + base.index()] = next_id;
            }
        }

        Dfa {
            transitions,
            accept_counts,
            state_count: subsets.len() as u32,
        }
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> u32 {
        self.state_count
    }

    /// Successor of `state` on `base`.
    #[inline]
    pub fn step(&self, state: DfaStateId, base: Base) -> DfaStateId {
        self.transitions[state as usize * 4 + base.index()]
    }

    /// Number of motif occurrences reported when `state` is entered.
    #[inline]
    pub fn accept_count(&self, state: DfaStateId) -> u32 {
        self.accept_counts[state as usize]
    }

    /// Scan `text` starting from `state`; returns `(matches, final state)`.
    ///
    /// Characters that are not concrete bases reset the automaton to the start state
    /// (an `N` or a line break cannot be part of a motif occurrence).
    pub fn scan_from(&self, mut state: DfaStateId, text: &[u8]) -> (u64, DfaStateId) {
        let mut matches = 0u64;
        for &byte in text {
            let idx = ASCII_TO_BASE[byte as usize];
            if idx == INVALID_BASE {
                state = Self::START;
                continue;
            }
            state = self.transitions[state as usize * 4 + idx as usize];
            matches += u64::from(self.accept_counts[state as usize]);
        }
        (matches, state)
    }

    /// Scan `text` from the start state and return the number of motif occurrences.
    pub fn count_matches(&self, text: &[u8]) -> u64 {
        self.scan_from(Self::START, text).0
    }

    /// Approximate memory footprint of the automaton in bytes (transition table plus
    /// accept counts) — the quantity that must stay resident in cache for the scan to
    /// run at full speed.
    pub fn table_bytes(&self) -> usize {
        self.transitions.len() * std::mem::size_of::<DfaStateId>()
            + self.accept_counts.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::DnaSequence;

    fn dfa(patterns: &[&str]) -> Dfa {
        Dfa::from_motifs(&MotifSet::parse(patterns).unwrap())
    }

    #[test]
    fn single_motif_counts() {
        let d = dfa(&["ACGT"]);
        assert_eq!(d.count_matches(b"ACGT"), 1);
        assert_eq!(d.count_matches(b"ACGTACGT"), 2);
        assert_eq!(d.count_matches(b"AACGTT"), 1);
        assert_eq!(d.count_matches(b"AAAA"), 0);
        assert_eq!(d.count_matches(b""), 0);
    }

    #[test]
    fn overlapping_matches_are_counted() {
        let d = dfa(&["AA"]);
        assert_eq!(d.count_matches(b"AAAA"), 3);
        let d = dfa(&["ACA"]);
        assert_eq!(d.count_matches(b"ACACACA"), 3);
    }

    #[test]
    fn multiple_motifs_count_independently() {
        let d = dfa(&["ACG", "CGT", "GTA"]);
        assert_eq!(d.count_matches(b"ACGTA"), 3);
    }

    #[test]
    fn degenerate_motif_matches_all_expansions() {
        let d = dfa(&["CANNTG"]);
        assert_eq!(d.count_matches(b"CAGCTG"), 1);
        assert_eq!(d.count_matches(b"CAATTG"), 1);
        assert_eq!(d.count_matches(b"CCGCTG"), 0);
    }

    #[test]
    fn invalid_bytes_reset_the_automaton() {
        let d = dfa(&["ACGT"]);
        assert_eq!(d.count_matches(b"AC\nGT"), 0);
        assert_eq!(d.count_matches(b"ACGT\nACGT"), 2);
        assert_eq!(d.count_matches(b"ACGNT"), 0);
    }

    #[test]
    fn dfa_agrees_with_nfa_oracle_on_random_sequences() {
        let motifs = MotifSet::parse(&["TATAAA", "GAATTC", "CANNTG", "GGGG"]).unwrap();
        let nfa = Nfa::from_motifs(&motifs);
        let d = Dfa::from_motifs(&motifs);
        for seed in 0..5u64 {
            let seq = DnaSequence::random(20_000, 0.45, seed);
            assert_eq!(
                d.count_matches(seq.bases()),
                nfa.count_matches_slow(seq.bases()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn scan_from_composes() {
        // Splitting a text at an arbitrary point and chaining the final state must give
        // the same count as scanning it in one go.
        let d = dfa(&["TATAAA", "GGN"]);
        let seq = DnaSequence::random_with_motif(50_000, 0.4, 3, "TATAAA", 20);
        let text = seq.bases();
        let whole = d.count_matches(text);
        for split in [1usize, 100, 1234, 25_000, 49_999] {
            let (left, state) = d.scan_from(Dfa::START, &text[..split]);
            let (right, _) = d.scan_from(state, &text[split..]);
            assert_eq!(left + right, whole, "split at {split}");
        }
    }

    #[test]
    fn planted_motifs_are_found() {
        let seq = DnaSequence::random_with_motif(200_000, 0.42, 9, "GGCCAATCT", 40);
        let d = dfa(&["GGCCAATCT"]);
        assert!(d.count_matches(seq.bases()) >= 40);
    }

    #[test]
    fn state_count_is_reasonable() {
        let motifs = MotifSet::reference();
        let d = Dfa::from_motifs(&motifs);
        let nfa_states: u32 = 1 + motifs.motifs().iter().map(|m| m.len() as u32).sum::<u32>();
        assert!(d.state_count() >= nfa_states / 2);
        // subset construction must not blow up for small motif sets
        assert!(d.state_count() < 4 * nfa_states);
        assert!(d.table_bytes() > 0);
    }
}
