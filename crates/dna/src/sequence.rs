//! DNA sequences: storage, synthesis and simple I/O.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alphabet::Base;

/// An in-memory DNA sequence stored as ASCII bytes (`A`, `C`, `G`, `T`).
///
/// ASCII storage matches what the real application reads from GenBank FASTA files and
/// lets the DFA scanner work directly on `&[u8]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnaSequence {
    name: String,
    bases: Vec<u8>,
}

impl DnaSequence {
    /// Create a sequence from raw ASCII bytes, skipping characters that are not
    /// concrete bases (newlines, `N` runs, headers are the caller's business).
    pub fn from_ascii(name: &str, ascii: &[u8]) -> Self {
        let bases = ascii
            .iter()
            .copied()
            .filter(|&c| Base::from_ascii(c).is_some())
            .map(|c| c.to_ascii_uppercase())
            .collect();
        DnaSequence {
            name: name.to_string(),
            bases,
        }
    }

    /// Create a sequence from already-validated bases.
    pub fn from_bases(name: &str, bases: Vec<Base>) -> Self {
        DnaSequence {
            name: name.to_string(),
            bases: bases.into_iter().map(Base::to_ascii).collect(),
        }
    }

    /// Generate a random sequence of `length` bases with the given GC content
    /// (probability of a position being `G` or `C`), using a deterministic seed.
    ///
    /// Real mammalian genomes have a GC content of roughly 0.40–0.45.
    pub fn random(length: usize, gc_content: f64, seed: u64) -> Self {
        let gc = gc_content.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bases = Vec::with_capacity(length);
        for _ in 0..length {
            let is_gc = rng.gen_bool(gc);
            let first_of_pair = rng.gen_bool(0.5);
            let base = match (is_gc, first_of_pair) {
                (true, true) => b'G',
                (true, false) => b'C',
                (false, true) => b'A',
                (false, false) => b'T',
            };
            bases.push(base);
        }
        DnaSequence {
            name: format!("random-{seed}"),
            bases,
        }
    }

    /// Generate a random sequence and splice `copies` occurrences of `motif` into it at
    /// deterministic pseudo-random positions, so tests know a lower bound on the number
    /// of matches.
    pub fn random_with_motif(
        length: usize,
        gc_content: f64,
        seed: u64,
        motif: &str,
        copies: usize,
    ) -> Self {
        let mut sequence = Self::random(length, gc_content, seed);
        let motif_bytes: Vec<u8> = motif
            .bytes()
            .filter(|&c| Base::from_ascii(c).is_some())
            .map(|c| c.to_ascii_uppercase())
            .collect();
        if motif_bytes.is_empty() || motif_bytes.len() > length || copies == 0 {
            return sequence;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        // Place copies in disjoint slots so they cannot destroy each other.
        let slot = length / copies;
        for i in 0..copies {
            let slot_start = i * slot;
            let max_offset = slot.saturating_sub(motif_bytes.len());
            let offset = if max_offset == 0 {
                0
            } else {
                rng.gen_range(0..max_offset)
            };
            let start = slot_start + offset;
            if start + motif_bytes.len() <= length {
                sequence.bases[start..start + motif_bytes.len()].copy_from_slice(&motif_bytes);
            }
        }
        sequence
    }

    /// Name of the sequence.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bases as ASCII bytes.
    pub fn bases(&self) -> &[u8] {
        &self.bases
    }

    /// Length in bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Fraction of `G`/`C` bases.
    pub fn gc_content(&self) -> f64 {
        if self.bases.is_empty() {
            return 0.0;
        }
        let gc = self
            .bases
            .iter()
            .filter(|&&c| matches!(c, b'G' | b'C'))
            .count();
        gc as f64 / self.bases.len() as f64
    }

    /// Serialize to a minimal FASTA record (single header line + 70-column wrapped body).
    pub fn to_fasta(&self) -> String {
        let mut out = String::with_capacity(self.bases.len() + self.bases.len() / 70 + 64);
        out.push('>');
        out.push_str(&self.name);
        out.push('\n');
        for chunk in self.bases.chunks(70) {
            out.push_str(std::str::from_utf8(chunk).expect("bases are ASCII"));
            out.push('\n');
        }
        out
    }

    /// Parse the first record of a FASTA string (header optional).
    pub fn from_fasta(fasta: &str) -> Self {
        let mut name = String::from("unnamed");
        let mut body = Vec::new();
        for (i, line) in fasta.lines().enumerate() {
            if let Some(header) = line.strip_prefix('>') {
                if i == 0 {
                    name = header.trim().to_string();
                    continue;
                } else {
                    break; // only the first record
                }
            }
            body.extend_from_slice(line.trim().as_bytes());
        }
        Self::from_ascii(&name, &body)
    }

    /// Borrow a contiguous fraction `[0, fraction)` of the sequence (used to emulate the
    /// paper's "DNA sequence fraction" parameter on real in-memory data).
    pub fn prefix_fraction(&self, fraction: f64) -> &[u8] {
        let fraction = fraction.clamp(0.0, 1.0);
        let end = (self.bases.len() as f64 * fraction).round() as usize;
        &self.bases[..end.min(self.bases.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sequence_has_requested_length_and_gc_content() {
        let s = DnaSequence::random(200_000, 0.42, 1);
        assert_eq!(s.len(), 200_000);
        assert!((s.gc_content() - 0.42).abs() < 0.01);
        // only valid bases
        assert!(s.bases().iter().all(|&c| Base::from_ascii(c).is_some()));
    }

    #[test]
    fn random_sequence_is_deterministic_per_seed() {
        let a = DnaSequence::random(10_000, 0.5, 7);
        let b = DnaSequence::random(10_000, 0.5, 7);
        let c = DnaSequence::random(10_000, 0.5, 8);
        assert_eq!(a.bases(), b.bases());
        assert_ne!(a.bases(), c.bases());
    }

    #[test]
    fn from_ascii_filters_invalid_characters() {
        let s = DnaSequence::from_ascii("x", b"AC\nGT nnN..acgt");
        assert_eq!(s.bases(), b"ACGTACGT");
    }

    #[test]
    fn fasta_round_trip() {
        let original = DnaSequence::random(500, 0.45, 3);
        let fasta = original.to_fasta();
        assert!(fasta.starts_with('>'));
        let parsed = DnaSequence::from_fasta(&fasta);
        assert_eq!(parsed.bases(), original.bases());
        assert_eq!(parsed.name(), original.name());
    }

    #[test]
    fn fasta_without_header_is_accepted() {
        let parsed = DnaSequence::from_fasta("ACGT\nACGT\n");
        assert_eq!(parsed.bases(), b"ACGTACGT");
    }

    #[test]
    fn prefix_fraction_clamps() {
        let s = DnaSequence::random(1000, 0.5, 1);
        assert_eq!(s.prefix_fraction(0.0).len(), 0);
        assert_eq!(s.prefix_fraction(0.5).len(), 500);
        assert_eq!(s.prefix_fraction(1.0).len(), 1000);
        assert_eq!(s.prefix_fraction(7.0).len(), 1000);
    }

    #[test]
    fn planted_motifs_are_present() {
        let s = DnaSequence::random_with_motif(100_000, 0.4, 11, "TATAAA", 25);
        let text = std::str::from_utf8(s.bases()).unwrap();
        let count = text.matches("TATAAA").count();
        assert!(
            count >= 25,
            "expected at least 25 planted motifs, found {count}"
        );
    }

    #[test]
    fn from_bases_round_trips() {
        let s = DnaSequence::from_bases("b", vec![Base::A, Base::C, Base::G, Base::T]);
        assert_eq!(s.bases(), b"ACGT");
    }
}
