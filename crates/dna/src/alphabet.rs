//! The DNA alphabet and its encoding.

/// A nucleotide base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in index order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Number of symbols in the alphabet.
    pub const CARDINALITY: usize = 4;

    /// Dense index in `0..4` used by DFA transition tables.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Base from a dense index (`index % 4`).
    #[inline]
    pub fn from_index(index: usize) -> Base {
        Base::ALL[index % 4]
    }

    /// Parse an ASCII character (case-insensitive). Returns `None` for anything that is
    /// not `A`, `C`, `G` or `T` (including the ambiguity code `N`).
    #[inline]
    pub fn from_ascii(c: u8) -> Option<Base> {
        match c {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Uppercase ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson-Crick complement.
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::T => Base::A,
            Base::C => Base::G,
            Base::G => Base::C,
        }
    }

    /// Whether the base is part of a G/C pair (used for GC-content statistics).
    #[inline]
    pub fn is_gc(self) -> bool {
        matches!(self, Base::G | Base::C)
    }
}

/// Lookup table mapping every ASCII byte to a base index, or `INVALID_BASE` for bytes
/// that are not a concrete nucleotide.  Used by the hot DFA scanning loop.
pub const INVALID_BASE: u8 = 0xFF;

/// Build the 256-entry ASCII → base-index lookup table.
pub const fn ascii_lookup_table() -> [u8; 256] {
    let mut table = [INVALID_BASE; 256];
    table[b'A' as usize] = 0;
    table[b'a' as usize] = 0;
    table[b'C' as usize] = 1;
    table[b'c' as usize] = 1;
    table[b'G' as usize] = 2;
    table[b'g' as usize] = 2;
    table[b'T' as usize] = 3;
    table[b't' as usize] = 3;
    table
}

/// Shared instance of the lookup table.
pub static ASCII_TO_BASE: [u8; 256] = ascii_lookup_table();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ascii() {
        for base in Base::ALL {
            assert_eq!(Base::from_ascii(base.to_ascii()), Some(base));
            assert_eq!(
                Base::from_ascii(base.to_ascii().to_ascii_lowercase()),
                Some(base)
            );
        }
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'x'), None);
    }

    #[test]
    fn round_trip_index() {
        for (i, base) in Base::ALL.iter().enumerate() {
            assert_eq!(base.index(), i);
            assert_eq!(Base::from_index(i), *base);
        }
    }

    #[test]
    fn complement_is_involution() {
        for base in Base::ALL {
            assert_eq!(base.complement().complement(), base);
            assert_ne!(base.complement(), base);
        }
    }

    #[test]
    fn gc_classification() {
        assert!(Base::G.is_gc());
        assert!(Base::C.is_gc());
        assert!(!Base::A.is_gc());
        assert!(!Base::T.is_gc());
    }

    #[test]
    fn lookup_table_agrees_with_from_ascii() {
        for c in 0..=255u8 {
            let via_table = ASCII_TO_BASE[c as usize];
            match Base::from_ascii(c) {
                Some(base) => assert_eq!(via_table as usize, base.index()),
                None => assert_eq!(via_table, INVALID_BASE),
            }
        }
    }
}
