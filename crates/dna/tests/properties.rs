//! Property-based tests for the DNA analysis crate.

use dna_analysis::{Base, Dfa, DfaMatcher, DnaSequence, MotifSet, Nfa, ParallelScanner};
use proptest::prelude::*;

/// Strategy: a random concrete motif (A/C/G/T only) of length 2..=8.
fn arb_motif() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(vec!['A', 'C', 'G', 'T']), 2..=8)
        .prop_map(|chars| chars.into_iter().collect())
}

/// Strategy: a random motif that may contain degenerate IUPAC codes.
fn arb_degenerate_motif() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select(vec!['A', 'C', 'G', 'T', 'N', 'R', 'Y', 'W', 'S']),
        2..=6,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Strategy: a random DNA text as ASCII bytes.
fn arb_text(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 0..max_len)
}

/// Count matches of a single concrete motif by brute force.
fn brute_force_count(text: &[u8], motif: &str) -> u64 {
    let motif = motif.as_bytes();
    if motif.is_empty() || text.len() < motif.len() {
        return 0;
    }
    text.windows(motif.len()).filter(|w| *w == motif).count() as u64
}

proptest! {
    /// The DFA count for a single concrete motif equals a brute-force window count.
    #[test]
    fn dfa_matches_brute_force(motif in arb_motif(), text in arb_text(4000)) {
        let motifs = MotifSet::parse(&[motif.as_str()]).unwrap();
        let dfa = Dfa::from_motifs(&motifs);
        prop_assert_eq!(dfa.count_matches(&text), brute_force_count(&text, &motif));
    }

    /// DFA and NFA simulation agree for arbitrary (possibly degenerate) motif sets.
    #[test]
    fn dfa_agrees_with_nfa(
        motifs in proptest::collection::vec(arb_degenerate_motif(), 1..4),
        text in arb_text(2000),
    ) {
        let refs: Vec<&str> = motifs.iter().map(String::as_str).collect();
        let set = MotifSet::parse(&refs).unwrap();
        let nfa = Nfa::from_motifs(&set);
        let dfa = Dfa::from_motifs(&set);
        prop_assert_eq!(dfa.count_matches(&text), nfa.count_matches_slow(&text));
    }

    /// The parallel scanner returns exactly the sequential count for any chunk size and
    /// thread count.
    #[test]
    fn parallel_scan_equals_sequential(
        motifs in proptest::collection::vec(arb_degenerate_motif(), 1..3),
        text in arb_text(20_000),
        threads in 1usize..6,
        chunk in 16usize..512,
    ) {
        let refs: Vec<&str> = motifs.iter().map(String::as_str).collect();
        let matcher = DfaMatcher::compile(&MotifSet::parse(&refs).unwrap());
        let scanner = ParallelScanner::new(threads).with_chunk_bytes(chunk);
        prop_assert_eq!(
            scanner.count_matches(&matcher, &text),
            matcher.count_matches(&text)
        );
    }

    /// Splitting the scan at any ratio conserves the total match count.
    #[test]
    fn split_scan_conserves_matches(
        text in arb_text(10_000),
        fraction in 0.0f64..=1.0,
    ) {
        let matcher = DfaMatcher::compile(&MotifSet::reference());
        let scanner = ParallelScanner::new(3).with_chunk_bytes(256);
        let total = matcher.count_matches(&text);
        let (host, device) = scanner.count_matches_split(&matcher, &text, fraction);
        prop_assert_eq!(host + device, total);
    }

    /// Scanning a concatenation from the carried-over state equals scanning the whole
    /// text at once (state composition).
    #[test]
    fn scan_state_composes(text in arb_text(3000), split in 0usize..3000) {
        let matcher = DfaMatcher::compile(&MotifSet::reference());
        let split = split.min(text.len());
        let whole = matcher.count_matches(&text);
        let (left, state) = matcher.scan_from(Dfa::START, &text[..split]);
        let (right, _) = matcher.scan_from(state, &text[split..]);
        prop_assert_eq!(left + right, whole);
    }

    /// Random sequences only contain valid bases and reproduce per seed.
    #[test]
    fn sequences_are_valid_and_reproducible(len in 0usize..5000, gc in 0.0f64..=1.0, seed in 0u64..1000) {
        let a = DnaSequence::random(len, gc, seed);
        let b = DnaSequence::random(len, gc, seed);
        prop_assert_eq!(a.bases(), b.bases());
        prop_assert_eq!(a.len(), len);
        prop_assert!(a.bases().iter().all(|&c| Base::from_ascii(c).is_some()));
    }

    /// FASTA serialisation round-trips.
    #[test]
    fn fasta_round_trip(len in 1usize..2000, seed in 0u64..500) {
        let original = DnaSequence::random(len, 0.45, seed);
        let parsed = DnaSequence::from_fasta(&original.to_fasta());
        prop_assert_eq!(parsed.bases(), original.bases());
    }
}
