//! `wd_lint` — the workspace invariant analyzer.
//!
//! The compiler cannot check the contracts this workspace runs on: delta/observed
//! annealing paths must stay bit-identical to their classic counterparts, persisted
//! floats are only authoritative as IEEE-754 `_bits`, `neighbor_move` /
//! `crossover_move` must replay the exact RNG draw order, and the lock-holding
//! modules must not call into each other with guards live.  `wd_lint` lexes every
//! source file with a hand-rolled total lexer ([`lexer`]) and enforces those
//! contracts as six deny-by-default passes ([`lints`]), budgeted by a checked-in
//! ratchet file ([`allowlist`]).
//!
//! In the house style of `wd_obs`'s hand-rolled JSON, the crate has **zero
//! dependencies** — it must keep building when any other crate in the workspace is
//! broken, because that is exactly when CI needs it.
//!
//! Run as `cargo run -p wd-lint -- check .`.

pub mod allowlist;
pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod source;

use std::fmt;
use std::fs;
use std::path::Path;

use config::Config;
use report::Finding;

/// Everything `check` produced: what failed, what is stale, what was scanned.
pub struct CheckOutcome {
    /// Findings that must fail the run (not covered by the allowlist budget).
    pub errors: Vec<Finding>,
    /// Stale-budget warnings (exit 0; the allowlist should be tightened).
    pub stale: Vec<String>,
    /// Raw findings before the allowlist was applied (for `baseline`).
    pub raw: Vec<Finding>,
    /// Number of source files scanned.
    pub files_checked: usize,
}

/// A check that could not run at all (I/O or manifest problems).
#[derive(Debug)]
pub struct CheckError(pub String);

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CheckError {}

/// Load `lint.conf` + `lint.allow` under `root`, scan every `.rs` file, run all
/// passes, and apply the allowlist ratchet.
pub fn check(root: &Path) -> Result<CheckOutcome, CheckError> {
    let conf_path = root.join("lint.conf");
    let conf_text = fs::read_to_string(&conf_path)
        .map_err(|e| CheckError(format!("cannot read {}: {e}", conf_path.display())))?;
    let config = Config::parse(&conf_text).map_err(CheckError)?;

    let allow_path = root.join("lint.allow");
    let allow_entries = match fs::read_to_string(&allow_path) {
        Ok(text) => allowlist::parse(&text).map_err(CheckError)?,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(err) => {
            return Err(CheckError(format!(
                "cannot read {}: {e}",
                allow_path.display(),
                e = err
            )))
        }
    };

    let files = config::load_workspace(root, &config)
        .map_err(|e| CheckError(format!("walking {}: {e}", root.display())))?;
    let raw = lints::run_all(&config, &files);
    let applied = allowlist::apply(raw.clone(), &allow_entries);
    Ok(CheckOutcome {
        errors: applied.errors,
        stale: applied.stale,
        raw,
        files_checked: files.len(),
    })
}

/// Render the current raw findings as a fresh `lint.allow` (the burn-down
/// baseline): one `<lint> <path> <count>` line per (lint, file) group.
pub fn render_baseline(raw: &[Finding]) -> String {
    let mut groups: std::collections::BTreeMap<(String, String), usize> =
        std::collections::BTreeMap::new();
    for finding in raw {
        *groups
            .entry((finding.lint.clone(), finding.path.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from(
        "# Grandfathered finding budgets: `<lint> <path> <max-count>`.\n\
         # This is a ratchet, not a waiver — counts may only go down.  Regenerate\n\
         # with `cargo run -p wd-lint -- baseline .` ONLY to tighten after a\n\
         # burn-down; raising a budget needs review.\n",
    );
    for ((lint, path), count) in groups {
        out.push_str(&format!("{lint} {path} {count}\n"));
    }
    out
}
