//! Two token-level hygiene passes:
//!
//! * **unsafe-hygiene** — every `unsafe` *block* in non-test code needs a
//!   `// SAFETY:` comment on the preceding line(s) (`unsafe fn`/`impl`/`trait`
//!   declarations are covered by `# Safety` doc sections instead and are exempt);
//! * **schema-registry** — a literal matching `wd-(obs|dist)-<name>/v<digits>` may
//!   appear only in the file that declares it as a `pub const`, so schema strings
//!   cannot drift from their single source of truth.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

pub const UNSAFE_NAME: &str = "unsafe-hygiene";
pub const SCHEMA_NAME: &str = "schema-registry";

pub fn check_unsafe(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        if file.is_test_file {
            continue;
        }
        // line → contains a comment mentioning SAFETY:
        let mut safety_lines = Vec::new();
        // line → contains a code token (so an upward scan stops at real code)
        let mut code_lines = Vec::new();
        for token in &file.tokens {
            let line = file.line_of(token.start);
            match token.kind {
                TokenKind::LineComment | TokenKind::BlockComment => {
                    if token.text(&file.text).contains("SAFETY:") {
                        let end_line = file.line_of(token.end.saturating_sub(1));
                        for l in line..=end_line {
                            safety_lines.push(l);
                        }
                    }
                }
                TokenKind::Whitespace => {}
                _ => code_lines.push(line),
            }
        }
        for (idx, token) in file.tokens.iter().enumerate() {
            if token.kind != TokenKind::Ident
                || token.text(&file.text) != "unsafe"
                || file.is_test_token(idx)
            {
                continue;
            }
            // only `unsafe {` blocks; `unsafe fn` / `unsafe impl` / `unsafe trait`
            // carry `# Safety` docs instead
            let is_block = file
                .next_code_token(idx)
                .is_some_and(|n| file.token_text(n) == "{");
            if !is_block {
                continue;
            }
            let line = file.line_of(token.start);
            // the comment may sit above the *statement* containing the block (the
            // statement can span lines), so anchor at the statement's first token:
            // walk back to the nearest `;` / `{` / `}` boundary
            let mut stmt_line = line;
            let mut back = idx;
            while let Some(prev) = file.prev_code_token(back) {
                if matches!(file.token_text(prev), ";" | "{" | "}") {
                    break;
                }
                stmt_line = file.line_of(file.tokens[prev].start);
                back = prev;
            }
            // accept a SAFETY comment anywhere on the statement's lines, or on the
            // contiguous run of comment-only/blank lines immediately above it
            let mut ok = (stmt_line..=line).any(|l| safety_lines.contains(&l));
            let mut above = stmt_line;
            while !ok && above > 1 {
                above -= 1;
                if code_lines.contains(&above) {
                    break;
                }
                ok = safety_lines.contains(&above);
            }
            if !ok {
                findings.push(Finding {
                    lint: UNSAFE_NAME.to_string(),
                    path: file.rel_path.clone(),
                    line,
                    message: "`unsafe` block without a `// SAFETY:` comment on the preceding line"
                        .to_string(),
                });
            }
        }
    }
}

/// Find every `wd-(obs|dist)-<name>/v<digits>` span in `text`.
fn schema_literals(text: &str) -> Vec<(usize, String)> {
    let bytes = text.as_bytes();
    let mut found = Vec::new();
    let mut pos = 0usize;
    while let Some(hit) = text[pos..].find("wd-") {
        let start = pos + hit;
        pos = start + 3;
        let rest = &text[start + 3..];
        let after_kind = if let Some(r) = rest.strip_prefix("obs-") {
            r
        } else if let Some(r) = rest.strip_prefix("dist-") {
            r
        } else {
            continue;
        };
        let name_len = after_kind
            .bytes()
            .take_while(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'-')
            .count();
        let after_name = &after_kind[name_len..];
        let Some(after_v) = after_name.strip_prefix("/v") else {
            continue;
        };
        let digits = after_v.bytes().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            continue;
        }
        let end = text.len() - after_v.len() + digits;
        found.push((start, text[start..end].to_string()));
        pos = end;
        debug_assert!(pos <= bytes.len());
    }
    found
}

/// Is the `Str` token at `idx` the initializer of a `pub const NAME: &str = "...";`?
fn is_const_definition(file: &SourceFile, idx: usize) -> bool {
    fn step(file: &SourceFile, cursor: usize, want: &str) -> Option<usize> {
        let prev = file.prev_code_token(cursor)?;
        (file.token_text(prev) == want).then_some(prev)
    }
    // walk back: `=`, `str`, (`'static`), `&`, `:`, NAME, `const`, `pub`
    let Some(mut cursor) = step(file, idx, "=").and_then(|c| step(file, c, "str")) else {
        return false;
    };
    if let Some(prev) = file.prev_code_token(cursor) {
        if file.tokens[prev].kind == TokenKind::Lifetime {
            cursor = prev;
        }
    }
    let Some(cursor) = step(file, cursor, "&").and_then(|c| step(file, c, ":")) else {
        return false;
    };
    let Some(name) = file.prev_code_token(cursor) else {
        return false;
    };
    file.tokens[name].kind == TokenKind::Ident
        && step(file, name, "const")
            .and_then(|c| step(file, c, "pub"))
            .is_some()
}

pub fn check_schemas(files: &[SourceFile], findings: &mut Vec<Finding>) {
    // schema string → files that define it as a pub const
    let mut definitions: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for file in files {
        for (idx, token) in file.tokens.iter().enumerate() {
            if token.kind != TokenKind::Str {
                continue;
            }
            for (_, schema) in schema_literals(token.text(&file.text)) {
                if is_const_definition(file, idx) {
                    let defs = definitions.entry(schema).or_default();
                    if !defs.contains(&file.rel_path) {
                        defs.push(file.rel_path.clone());
                    }
                }
            }
        }
    }
    for file in files {
        for token in &file.tokens {
            let relevant = matches!(
                token.kind,
                TokenKind::Str | TokenKind::LineComment | TokenKind::BlockComment
            );
            if !relevant {
                continue;
            }
            for (offset, schema) in schema_literals(token.text(&file.text)) {
                let line = file.line_of(token.start + offset);
                match definitions.get(&schema) {
                    Some(defs) if defs.contains(&file.rel_path) => {}
                    Some(defs) => findings.push(Finding {
                        lint: SCHEMA_NAME.to_string(),
                        path: file.rel_path.clone(),
                        line,
                        message: format!(
                            "schema literal `{schema}` re-typed outside its definition site ({}): reference the pub const instead",
                            defs.join(", ")
                        ),
                    }),
                    None => findings.push(Finding {
                        lint: SCHEMA_NAME.to_string(),
                        path: file.rel_path.clone(),
                        line,
                        message: format!(
                            "schema literal `{schema}` has no `pub const ...: &str` definition site"
                        ),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a schema string at runtime so this file itself stays clean under the
    /// schema-registry pass.
    fn wd(suffix: &str) -> String {
        format!("wd-{suffix}")
    }

    #[test]
    fn schema_matcher_finds_exact_spans() {
        let haystack = format!(
            "x {} y {} z {} wd-other/v1",
            wd("obs-events/v1"),
            wd("dist-store/v12"),
            wd("obs-")
        );
        let found = schema_literals(&haystack);
        let names: Vec<&str> = found.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, vec![wd("obs-events/v1"), wd("dist-store/v12")]);
    }

    fn str_token_is_definition(src: &str) -> bool {
        let file = SourceFile::new("a.rs".to_string(), src.to_string());
        let idx = file
            .tokens
            .iter()
            .position(|t| t.kind == TokenKind::Str)
            .expect("source has a string literal");
        is_const_definition(&file, idx)
    }

    #[test]
    fn const_definition_shapes_are_recognised() {
        let schema = wd("obs-events/v1");
        assert!(str_token_is_definition(&format!(
            "pub const EVENT_SCHEMA_VERSION: &str = \"{schema}\";"
        )));
        assert!(str_token_is_definition(&format!(
            "pub const V: &'static str = \"{schema}\";"
        )));
        assert!(!str_token_is_definition(&format!("let v = \"{schema}\";")));
    }
}
