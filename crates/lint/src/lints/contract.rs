//! contract-coverage: every `fn` in the configured source dirs whose name matches a
//! contract pattern (`run_delta*`, `*_observed`, `neighbor_move`, `crossover_move`)
//! must be referenced by at least one test file (any file under a `tests/`
//! directory).  A reference means the test mentions both the method name and its
//! owning type/trait (just the name for free functions) — so a new fast path cannot
//! merge without a bit-identity test naming it.

use std::collections::BTreeSet;

use crate::config::{glob_match, Config};
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

pub const NAME: &str = "contract-coverage";

/// A contract symbol: the owning `impl`/`trait` type (empty for free functions) and
/// the method name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Symbol {
    pub owner: String,
    pub method: String,
    pub path: String,
    pub line: usize,
}

fn in_scope(config: &Config, rel_path: &str) -> bool {
    config
        .contract_src
        .iter()
        .any(|dir| rel_path.starts_with(&format!("{dir}/")) || rel_path == dir.as_str())
}

/// Collect contract symbols declared in `file`.
pub fn symbols_in(config: &Config, file: &SourceFile) -> Vec<Symbol> {
    let mut symbols = Vec::new();
    // stack of brace contexts: Some(owner) for impl/trait bodies, None otherwise
    let mut contexts: Vec<Option<String>> = Vec::new();
    // owner parsed from an `impl`/`trait` header, waiting for its `{`
    let mut pending: Option<String> = None;
    let mut idx = 0usize;
    while idx < file.tokens.len() {
        let token = &file.tokens[idx];
        let text = token.text(&file.text);
        match token.kind {
            TokenKind::Punct if text == "{" => {
                contexts.push(pending.take());
            }
            TokenKind::Punct if text == "}" => {
                contexts.pop();
            }
            TokenKind::Ident if (text == "impl" || text == "trait") && !file.is_test_token(idx) => {
                pending = parse_owner(file, idx, text == "trait");
            }
            TokenKind::Ident if text == "fn" && !file.is_test_token(idx) => {
                if let Some(name_idx) = file.next_code_token(idx) {
                    let name = file.token_text(name_idx);
                    if file.tokens[name_idx].kind == TokenKind::Ident
                        && config.contract_patterns.iter().any(|p| glob_match(p, name))
                    {
                        let owner = contexts
                            .iter()
                            .rev()
                            .find_map(|c| c.clone())
                            .unwrap_or_default();
                        symbols.push(Symbol {
                            owner,
                            method: name.to_string(),
                            path: file.rel_path.clone(),
                            line: file.line_of(token.start),
                        });
                    }
                }
            }
            _ => {}
        }
        idx += 1;
    }
    symbols
}

/// Parse the owner name out of an `impl`/`trait` header starting at `kw_idx`.
///
/// * `trait Name ...` → `Name`
/// * `impl Type ...` / `impl<G> Type<G> ...` → last ident of the type path
/// * `impl Trait for Type ...` → last ident of the path after `for`
fn parse_owner(file: &SourceFile, kw_idx: usize, is_trait: bool) -> Option<String> {
    if is_trait {
        let name = file.next_code_token(kw_idx)?;
        return (file.tokens[name].kind == TokenKind::Ident)
            .then(|| file.token_text(name).to_string());
    }
    // walk the header up to `{` or `where`, tracking angle depth, remembering the
    // last path ident seen at angle depth 0 — after `for` if present
    let mut cursor = kw_idx;
    let mut angle = 0usize;
    let mut owner: Option<String> = None;
    loop {
        cursor = file.next_code_token(cursor)?;
        let text = file.token_text(cursor);
        match text {
            "<" => angle += 1,
            ">" => angle = angle.saturating_sub(1),
            "{" | "where" if angle == 0 => break,
            ";" => return None, // bail on malformed input
            // the implementing type follows `for`; discard the trait path
            "for" if angle == 0 => owner = None,
            // skip modifiers and sigil-adjacent keywords
            "mut" | "dyn" | "unsafe" | "const" => {}
            _ if angle == 0 && file.tokens[cursor].kind == TokenKind::Ident => {
                owner = Some(text.to_string());
            }
            _ => {}
        }
    }
    owner
}

pub fn check(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    if config.contract_src.is_empty() || config.contract_patterns.is_empty() {
        return;
    }
    // identifier sets of every test file in the workspace
    let test_idents: Vec<BTreeSet<&str>> = files
        .iter()
        .filter(|f| f.is_test_file)
        .map(|f| {
            f.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text(&f.text))
                .collect()
        })
        .collect();

    for file in files {
        if file.is_test_file || !in_scope(config, &file.rel_path) {
            continue;
        }
        for symbol in symbols_in(config, file) {
            let covered = test_idents.iter().any(|idents| {
                idents.contains(symbol.method.as_str())
                    && (symbol.owner.is_empty() || idents.contains(symbol.owner.as_str()))
            });
            if !covered {
                let shown = if symbol.owner.is_empty() {
                    symbol.method.clone()
                } else {
                    format!("{}::{}", symbol.owner, symbol.method)
                };
                findings.push(Finding {
                    lint: NAME.to_string(),
                    path: symbol.path,
                    line: symbol.line,
                    message: format!(
                        "contract symbol `{shown}` has no test reference: add a bit-identity test under tests/ naming both the type and the method"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Config {
        Config::parse(
            "contract-src: crates/opt/src\ncontract-pattern: run_delta*\ncontract-pattern: neighbor_move\n",
        )
        .unwrap()
    }

    fn symbols(src: &str) -> Vec<(String, String)> {
        let file = SourceFile::new("crates/opt/src/sa.rs".to_string(), src.to_string());
        symbols_in(&config(), &file)
            .into_iter()
            .map(|s| (s.owner, s.method))
            .collect()
    }

    #[test]
    fn owners_resolve_through_impl_shapes() {
        let src = "\
impl SimulatedAnnealing {
    pub fn run_delta(&self) {}
}
impl<S: Space> SearchSpace for ShardView<S> {
    fn neighbor_move(&self) {}
}
trait SearchSpace {
    fn neighbor_move(&self) {}
}
pub fn run_delta_free() {}
";
        assert_eq!(
            symbols(src),
            vec![
                ("SimulatedAnnealing".to_string(), "run_delta".to_string()),
                ("ShardView".to_string(), "neighbor_move".to_string()),
                ("SearchSpace".to_string(), "neighbor_move".to_string()),
                (String::new(), "run_delta_free".to_string()),
            ]
        );
    }

    #[test]
    fn test_code_and_non_matching_fns_are_ignored() {
        let src = "\
impl X { fn helper(&self) {} }
#[cfg(test)]
mod tests {
    impl Y { fn run_delta(&self) {} }
}
";
        assert!(symbols(src).is_empty());
    }
}
