//! panic-freedom: no `unwrap()` / `expect(...)` / `panic!` in non-test library code
//! of the configured crates.  Existing sites live in `lint.allow` as a burn-down
//! list; the ratchet stops new ones from landing.

use crate::config::Config;
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

pub const NAME: &str = "panic-freedom";

fn in_scope(config: &Config, rel_path: &str) -> bool {
    config
        .panic_src
        .iter()
        .any(|dir| rel_path.starts_with(&format!("{dir}/")) || rel_path == dir.as_str())
}

pub fn check(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        if file.is_test_file || !in_scope(config, &file.rel_path) {
            continue;
        }
        for (idx, token) in file.tokens.iter().enumerate() {
            if token.kind != TokenKind::Ident || file.is_test_token(idx) {
                continue;
            }
            let text = token.text(&file.text);
            let described = match text {
                "unwrap" | "expect" => {
                    // a method call: `.unwrap(` / `.expect(`
                    let preceded = file
                        .prev_code_token(idx)
                        .is_some_and(|p| file.token_text(p) == ".");
                    let followed = file
                        .next_code_token(idx)
                        .is_some_and(|n| file.token_text(n) == "(");
                    if preceded && followed {
                        format!("`.{text}()` in library code")
                    } else {
                        continue;
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    // a macro invocation: `panic!(` etc.
                    let followed = file
                        .next_code_token(idx)
                        .is_some_and(|n| file.token_text(n) == "!");
                    if followed {
                        format!("`{text}!` in library code")
                    } else {
                        continue;
                    }
                }
                _ => continue,
            };
            findings.push(Finding {
                lint: NAME.to_string(),
                path: file.rel_path.clone(),
                line: file.line_of(token.start),
                message: format!(
                    "{described}: return a `Result`, recover (e.g. `unwrap_or_else(PoisonError::into_inner)`), or budget it in lint.allow"
                ),
            });
        }
    }
}
