//! lock-discipline: inside a declared lock-holding module, a `Mutex`/`RwLock` guard
//! binding that is still live at a call into *another* declared lock-holding module
//! risks lock-order inversion (the recorder seams make these cross-module calls
//! easy to add by accident).  The manifest in `lint.conf` names each lock module
//! and the identifiers that acquire its lock from outside.

use crate::config::{Config, LockModule};
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

pub const NAME: &str = "lock-discipline";

struct Guard {
    name: String,
    depth: usize,
}

pub fn check(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        let Some(own) = config
            .lock_modules
            .iter()
            .find(|m| m.rel_path == file.rel_path)
        else {
            continue;
        };
        let foreign: Vec<&LockModule> = config
            .lock_modules
            .iter()
            .filter(|m| m.rel_path != own.rel_path)
            .collect();
        scan_file(file, own, &foreign, findings);
    }
}

fn scan_file(
    file: &SourceFile,
    own: &LockModule,
    foreign: &[&LockModule],
    findings: &mut Vec<Finding>,
) {
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut idx = 0usize;
    while idx < file.tokens.len() {
        let token = &file.tokens[idx];
        if token.kind != TokenKind::Ident && token.kind != TokenKind::Punct {
            idx += 1;
            continue;
        }
        let text = token.text(&file.text);
        match text {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            "let" if !file.is_test_token(idx) => {
                if let Some((name, end)) = guard_binding(file, idx) {
                    guards.push(Guard { name, depth });
                    idx = end;
                    continue;
                }
            }
            "drop" => {
                // `drop(NAME)` releases the guard early
                if let Some(open) = file.next_code_token(idx) {
                    if file.token_text(open) == "(" {
                        if let Some(arg) = file.next_code_token(open) {
                            let name = file.token_text(arg).to_string();
                            guards.retain(|g| g.name != name);
                        }
                    }
                }
            }
            _ if token.kind == TokenKind::Ident && !guards.is_empty() => {
                if let Some(module) = foreign
                    .iter()
                    .find(|m| m.entry_points.iter().any(|e| e == text))
                {
                    let is_call = file
                        .next_code_token(idx)
                        .is_some_and(|n| file.token_text(n) == "(");
                    if is_call && !file.is_test_token(idx) {
                        let held: Vec<&str> = guards.iter().map(|g| g.name.as_str()).collect();
                        findings.push(Finding {
                            lint: NAME.to_string(),
                            path: file.rel_path.clone(),
                            line: file.line_of(token.start),
                            message: format!(
                                "call to `{text}` (lock module `{}`) while guard(s) `{}` from `{}` are live: release before crossing modules",
                                module.name,
                                held.join("`, `"),
                                own.name
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
        idx += 1;
    }
}

/// If token `idx` (`let`) begins `let [mut] NAME = <rhs containing .lock()/.read()/.write()>;`,
/// return `(NAME, index of the terminating token)`.
fn guard_binding(file: &SourceFile, let_idx: usize) -> Option<(String, usize)> {
    let mut cursor = file.next_code_token(let_idx)?;
    if file.token_text(cursor) == "mut" {
        cursor = file.next_code_token(cursor)?;
    }
    if file.tokens[cursor].kind != TokenKind::Ident {
        return None; // destructuring patterns are not guard bindings we track
    }
    let name = file.token_text(cursor).to_string();
    let eq = file.next_code_token(cursor)?;
    if file.token_text(eq) != "=" {
        return None; // `let x: T = ...` with annotations: scan from the `=` below
    }
    // scan the rhs to the `;` at depth 0, looking for .lock( / .read( / .write(
    let mut depth = 0usize;
    let mut acquires = false;
    let mut cursor = eq;
    loop {
        cursor = file.next_code_token(cursor)?;
        let text = file.token_text(cursor);
        match text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break; // end of an expression without `;` (tail expr)
                }
                depth -= 1;
            }
            ";" if depth == 0 => break,
            // `.lock()` / `.read()` / `.write()` methods, or the poison-recovering
            // free helpers `lock(...)` / `read_lock(...)` / `write_lock(...)`
            "lock" | "read" | "write" | "read_lock" | "write_lock"
                if file.tokens[cursor].kind == TokenKind::Ident =>
            {
                let dotted = file
                    .prev_code_token(cursor)
                    .is_some_and(|p| file.token_text(p) == ".");
                let called = file
                    .next_code_token(cursor)
                    .is_some_and(|n| file.token_text(n) == "(");
                let is_helper = matches!(text, "lock" | "read_lock" | "write_lock");
                if called && (dotted || is_helper) {
                    acquires = true;
                }
            }
            _ => {}
        }
    }
    acquires.then_some((name, cursor))
}
