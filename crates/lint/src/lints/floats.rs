//! float-durability: in persistence/export files, an `f64` formatted as decimal text
//! without an IEEE-754 `_bits` hex sibling is a durability bug — decimal round-trips
//! are not bit-exact, and the workspace's replay contract says bits are
//! authoritative (the events/v1 and store/v2 schemas).
//!
//! Detection is intentionally local: an identifier is *float-suspect* when the same
//! file declares it with type `f64` (binding, field, or parameter).  A format-macro
//! call that mentions a float-suspect identifier must be *paired*: carry a hex hole
//! (`{...:016x}`), a `to_bits` argument, or a `_bits`-suffixed hole.

use crate::config::Config;
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

pub const NAME: &str = "float-durability";

const FORMAT_MACROS: [&str; 7] = [
    "format", "write", "writeln", "print", "println", "eprint", "eprintln",
];

/// Inline hole names in a format literal: `{name}` / `{name:spec}` (skips `{{`).
fn hole_names(literal: &str) -> Vec<String> {
    let mut names = Vec::new();
    let bytes = literal.as_bytes();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes[pos] != b'{' {
            pos += 1;
            continue;
        }
        if bytes.get(pos + 1) == Some(&b'{') {
            pos += 2; // escaped `{{`
            continue;
        }
        let start = pos + 1;
        let mut end = start;
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        if end > start {
            names.push(literal[start..end].to_string());
        }
        pos = end + 1;
    }
    names
}

pub fn check(config: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        if file.is_test_file || !config.float_files.contains(&file.rel_path) {
            continue;
        }
        let float_idents = file.float_idents();
        if float_idents.is_empty() {
            continue;
        }
        let mut idx = 0usize;
        while idx < file.tokens.len() {
            let Some(span) = format_call_span(file, idx) else {
                idx += 1;
                continue;
            };
            let (open, close) = span;
            if !file.is_test_token(idx) {
                inspect_call(file, &float_idents, idx, open, close, findings);
            }
            idx = close + 1;
        }
    }
}

/// If token `idx` starts a `format!(...)`-family call, return the span of its
/// parenthesised arguments `(open, close)`.
fn format_call_span(file: &SourceFile, idx: usize) -> Option<(usize, usize)> {
    let token = &file.tokens[idx];
    if token.kind != TokenKind::Ident || !FORMAT_MACROS.contains(&token.text(&file.text)) {
        return None;
    }
    let bang = file.next_code_token(idx)?;
    if file.token_text(bang) != "!" {
        return None;
    }
    let open = file.next_code_token(bang)?;
    if file.token_text(open) != "(" {
        return None;
    }
    let mut depth = 0usize;
    for cursor in open..file.tokens.len() {
        match file.token_text(cursor) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some((open, cursor));
                }
            }
            _ => {}
        }
    }
    Some((open, file.tokens.len() - 1)) // unterminated at EOF
}

fn inspect_call(
    file: &SourceFile,
    float_idents: &[String],
    macro_idx: usize,
    open: usize,
    close: usize,
    findings: &mut Vec<Finding>,
) {
    let mut suspects = Vec::new();
    let mut paired = false;
    for cursor in open..=close {
        let token = &file.tokens[cursor];
        let text = token.text(&file.text);
        match token.kind {
            TokenKind::Str => {
                if text.contains("016x") {
                    paired = true;
                }
                for hole in hole_names(text) {
                    if hole.ends_with("_bits") {
                        paired = true;
                    } else if float_idents.contains(&hole) {
                        suspects.push(hole);
                    }
                }
            }
            TokenKind::Ident => {
                if text == "to_bits" {
                    paired = true;
                } else if float_idents.iter().any(|f| f == text) {
                    suspects.push(text.to_string());
                }
            }
            _ => {}
        }
    }
    if paired || suspects.is_empty() {
        return;
    }
    suspects.dedup();
    findings.push(Finding {
        lint: NAME.to_string(),
        path: file.rel_path.clone(),
        line: file.line_of(file.tokens[macro_idx].start),
        message: format!(
            "f64 value(s) `{}` formatted as decimal text without a sibling `_bits` hex field (bits are authoritative on replay)",
            suspects.join("`, `")
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hole_names_skip_escapes_and_specs() {
        assert_eq!(
            hole_names("{{literal}} {energy} {bits:016x} {e_bits}"),
            vec!["energy", "bits", "e_bits"]
        );
    }
}
