//! The lint passes.  Each pass appends [`crate::report::Finding`]s; deny/allow
//! policy lives in [`crate::allowlist`], not here.

pub mod contract;
pub mod floats;
pub mod hygiene;
pub mod locks;
pub mod panics;

use crate::config::Config;
use crate::report::Finding;
use crate::source::SourceFile;

/// Names of every lint, in report order.
pub const ALL: [&str; 6] = [
    contract::NAME,
    floats::NAME,
    panics::NAME,
    locks::NAME,
    hygiene::UNSAFE_NAME,
    hygiene::SCHEMA_NAME,
];

/// Run every pass over the loaded workspace.
pub fn run_all(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    contract::check(config, files, &mut findings);
    floats::check(config, files, &mut findings);
    panics::check(config, files, &mut findings);
    locks::check(config, files, &mut findings);
    hygiene::check_unsafe(files, &mut findings);
    hygiene::check_schemas(files, &mut findings);
    findings.sort_by(|a, b| (&a.path, a.line, &a.lint).cmp(&(&b.path, b.line, &b.lint)));
    findings
}
