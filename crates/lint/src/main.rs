//! Thin CLI over [`wd_lint`]:
//!
//! * `wd-lint check <root> [--report PATH]` — exit 0 when clean (stale budgets are
//!   warnings), 1 on findings, 2 on usage/manifest errors;
//! * `wd-lint baseline <root>` — rewrite `lint.allow` from current findings (only
//!   for tightening after a burn-down; see the file header it emits).

use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: wd-lint check <root> [--report PATH] | wd-lint baseline <root>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parts = args.iter().map(String::as_str);
    match (parts.next(), parts.next()) {
        (Some("check"), Some(root)) => {
            let report_path = match (parts.next(), parts.next()) {
                (Some("--report"), Some(path)) => Some(path.to_string()),
                (None, _) => None,
                _ => return usage(),
            };
            run_check(Path::new(root), report_path.as_deref())
        }
        (Some("baseline"), Some(root)) => run_baseline(Path::new(root)),
        _ => usage(),
    }
}

fn run_check(root: &Path, report_path: Option<&str>) -> ExitCode {
    let outcome = match wd_lint::check(root) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("wd-lint: {err}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = report_path {
        let json =
            wd_lint::report::render_json(&outcome.errors, &outcome.stale, outcome.files_checked);
        if let Err(err) = std::fs::write(path, json) {
            eprintln!("wd-lint: cannot write report {path}: {err}");
            return ExitCode::from(2);
        }
    }
    for warning in &outcome.stale {
        eprintln!("warning: {warning}");
    }
    if outcome.errors.is_empty() {
        println!(
            "wd-lint: {} files checked, clean ({} grandfathered finding(s) within budget)",
            outcome.files_checked,
            outcome.raw.len()
        );
        ExitCode::SUCCESS
    } else {
        for finding in &outcome.errors {
            println!("{}", finding.render());
        }
        println!(
            "wd-lint: {} error(s) across {} files checked",
            outcome.errors.len(),
            outcome.files_checked
        );
        ExitCode::FAILURE
    }
}

fn run_baseline(root: &Path) -> ExitCode {
    let outcome = match wd_lint::check(root) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("wd-lint: {err}");
            return ExitCode::from(2);
        }
    };
    let baseline = wd_lint::render_baseline(&outcome.raw);
    let path = root.join("lint.allow");
    if let Err(err) = std::fs::write(&path, &baseline) {
        eprintln!("wd-lint: cannot write {}: {err}", path.display());
        return ExitCode::from(2);
    }
    println!(
        "wd-lint: wrote {} with budgets for {} finding(s)",
        path.display(),
        outcome.raw.len()
    );
    ExitCode::SUCCESS
}
