//! Per-file source model shared by all lint passes: the lexed token stream plus the
//! derived facts most passes need (line table, test-region mask, declared-`f64`
//! identifiers).

use crate::lexer::{lex, Token, TokenKind};

/// A lexed source file plus derived lookup tables.
pub struct SourceFile {
    /// Path relative to the check root, with `/` separators (stable across OSes for
    /// allowlist keys and reports).
    pub rel_path: String,
    /// Full file contents.
    pub text: String,
    /// Covering token stream (see [`crate::lexer::lex`]).
    pub tokens: Vec<Token>,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
    /// `true` when any path component is `tests` — the whole file is test code.
    pub is_test_file: bool,
    /// `test_mask[i]` is `true` when token `i` lies inside a `#[cfg(test)]` or
    /// `#[test]` item (always all-`true` for test files).
    test_mask: Vec<bool>,
}

impl SourceFile {
    /// Lex `text` and derive the lookup tables.
    pub fn new(rel_path: String, text: String) -> SourceFile {
        let tokens = lex(&text);
        let mut line_starts = vec![0usize];
        for (pos, byte) in text.bytes().enumerate() {
            if byte == b'\n' {
                line_starts.push(pos + 1);
            }
        }
        let is_test_file = rel_path.split('/').any(|part| part == "tests");
        let test_mask = if is_test_file {
            vec![true; tokens.len()]
        } else {
            compute_test_mask(&text, &tokens)
        };
        SourceFile {
            rel_path,
            text,
            tokens,
            line_starts,
            is_test_file,
            test_mask,
        }
    }

    /// 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(line) => line + 1,
            Err(line) => line,
        }
    }

    /// Is token `idx` inside test code (`tests/` file, `#[cfg(test)]` module, or a
    /// `#[test]` function)?
    pub fn is_test_token(&self, idx: usize) -> bool {
        self.test_mask.get(idx).copied().unwrap_or(false)
    }

    /// The token's source text.
    pub fn token_text(&self, idx: usize) -> &str {
        self.tokens[idx].text(&self.text)
    }

    /// Index of the next token after `idx` that is not whitespace or a comment.
    pub fn next_code_token(&self, idx: usize) -> Option<usize> {
        self.tokens
            .iter()
            .enumerate()
            .skip(idx + 1)
            .find(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
    }

    /// Index of the previous code token before `idx`.
    pub fn prev_code_token(&self, idx: usize) -> Option<usize> {
        self.tokens[..idx]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
    }

    /// Identifiers this file declares with type `f64` (or `&f64`): patterns
    /// `name : f64`, `name : &f64` across bindings, fields, and parameters.  Used by
    /// the float-durability pass to decide which format arguments carry floats.
    pub fn float_idents(&self) -> Vec<String> {
        let mut found = Vec::new();
        for idx in 0..self.tokens.len() {
            if self.tokens[idx].kind != TokenKind::Ident {
                continue;
            }
            let Some(colon) = self.next_code_token(idx) else {
                continue;
            };
            if self.token_text(colon) != ":" {
                continue;
            }
            let Some(mut ty) = self.next_code_token(colon) else {
                continue;
            };
            // skip reference sigils and lifetimes: `&'a f64`, `&mut f64`
            loop {
                let text = self.token_text(ty);
                if text == "&" || text == "mut" || self.tokens[ty].kind == TokenKind::Lifetime {
                    match self.next_code_token(ty) {
                        Some(next) => ty = next,
                        None => break,
                    }
                } else {
                    break;
                }
            }
            if self.token_text(ty) == "f64" {
                let name = self.token_text(idx).to_string();
                if !found.contains(&name) {
                    found.push(name);
                }
            }
        }
        found
    }
}

/// Mark every token inside a `#[cfg(test)]` or `#[test]` item.
///
/// Token-level heuristic, not a parse: on seeing `#[cfg(test)]` or `#[test]` (or
/// `#[cfg(all(test, ...))]` — any attribute whose argument tokens contain the bare
/// ident `test`), skip any further attributes and doc comments, then mask to the end
/// of the next item: the matching `}` of its first brace, or a `;` at depth zero.
fn compute_test_mask(text: &str, tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code = |i: usize| tokens[i].text(text);
    let is_code = |i: usize| {
        !matches!(
            tokens[i].kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    };
    let next_code = |from: usize| (from + 1..tokens.len()).find(|&i| is_code(i));

    let mut idx = 0usize;
    while idx < tokens.len() {
        if !(is_code(idx) && code(idx) == "#") {
            idx += 1;
            continue;
        }
        let Some(open) = next_code(idx) else { break };
        if code(open) != "[" {
            idx += 1;
            continue;
        }
        // collect the attribute's tokens up to the matching `]`
        let mut depth = 0usize;
        let mut cursor = open;
        let mut is_test_attr = false;
        let attr_end;
        loop {
            match code(cursor) {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        attr_end = cursor;
                        break;
                    }
                }
                "test" if tokens[cursor].kind == TokenKind::Ident => is_test_attr = true,
                _ => {}
            }
            match next_code(cursor) {
                Some(next) => cursor = next,
                None => return mask, // unterminated attribute at EOF
            }
        }
        if !is_test_attr {
            idx = attr_end + 1;
            continue;
        }
        // skip any further attributes stacked on the same item (`#[ignore]`, docs)
        let mut cursor = attr_end;
        while let Some(hash) = next_code(cursor) {
            if code(hash) != "#" {
                break;
            }
            let Some(bracket) = next_code(hash) else {
                break;
            };
            if code(bracket) != "[" {
                break;
            }
            let mut depth = 0usize;
            let mut inner = bracket;
            loop {
                match code(inner) {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                match next_code(inner) {
                    Some(next) => inner = next,
                    None => return mask,
                }
            }
            cursor = inner;
        }
        // mask from the `#` through the item that follows: it ends at a `;` at
        // depth zero, or at the `}` that closes its body back to depth zero
        let mut item_depth = 0usize;
        let mut saw_brace = false;
        let end = loop {
            let Some(next) = next_code(cursor) else {
                break tokens.len() - 1;
            };
            cursor = next;
            match code(cursor) {
                "{" => {
                    item_depth += 1;
                    saw_brace = true;
                }
                "(" | "[" => item_depth += 1,
                "}" | ")" | "]" => {
                    if item_depth == 0 {
                        break cursor; // stray close: the enclosing item ended
                    }
                    item_depth -= 1;
                    if item_depth == 0 && saw_brace && code(cursor) == "}" {
                        break cursor;
                    }
                }
                ";" if item_depth == 0 => break cursor,
                _ => {}
            }
        };
        for slot in mask.iter_mut().take(end + 1).skip(idx) {
            *slot = true;
        }
        idx = end + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".to_string(), src.to_string())
    }

    #[test]
    fn line_lookup_is_one_based() {
        let f = file("a\nbb\nccc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn lib2() {}\n";
        let f = file(src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text(src) == "unwrap")
            .map(|(i, _)| f.is_test_token(i))
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        // code after the masked module is library code again
        let lib2 = f.tokens.iter().position(|t| t.text(src) == "lib2").unwrap();
        assert!(!f.is_test_token(lib2));
    }

    #[test]
    fn test_functions_and_stacked_attributes_are_masked() {
        let src = "#[test]\n#[ignore]\nfn t() { z.unwrap(); }\nfn lib() { w.unwrap(); }\n";
        let f = file(src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text(src) == "unwrap")
            .map(|(i, _)| f.is_test_token(i))
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn files_under_tests_are_fully_masked() {
        let f = SourceFile::new(
            "crates/x/tests/it.rs".to_string(),
            "fn t() { a.unwrap(); }".to_string(),
        );
        assert!(f.is_test_file);
        assert!((0..f.tokens.len()).all(|i| f.is_test_token(i)));
    }

    #[test]
    fn float_idents_cover_params_fields_and_bindings() {
        let src = "struct S { energy: f64 }\nfn f(temp: &f64, n: u64) { let best: f64 = 0.0; }";
        let idents = file(src).float_idents();
        assert!(idents.contains(&"energy".to_string()));
        assert!(idents.contains(&"temp".to_string()));
        assert!(idents.contains(&"best".to_string()));
        assert!(!idents.contains(&"n".to_string()));
    }
}
