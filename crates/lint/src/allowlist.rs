//! `lint.allow` — the grandfathered-finding budget.
//!
//! Each line is `<lint> <path> <max-count>`: the named pass may report at most
//! `max-count` findings in that file.  The budget is a ratchet, not a waiver:
//!
//! * more findings than budgeted → **every** finding in the group is reported (the
//!   new site and its neighbors, so the author sees the whole burn-down list);
//! * fewer findings than budgeted → a *stale budget* warning (exit 0) asking for the
//!   entry to be tightened, so the allowlist tracks reality downward;
//! * an entry whose file has zero findings → stale as well.

use std::collections::BTreeMap;

use crate::report::Finding;

/// One parsed `lint.allow` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint name (`panic-freedom`, ...).
    pub lint: String,
    /// File path relative to the check root.
    pub path: String,
    /// Maximum findings budgeted for this (lint, path) pair.
    pub max_count: usize,
}

/// Parse `lint.allow` text (whitespace-separated columns, `#` comments).
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let [lint, path, count] = parts.as_slice() else {
            return Err(format!(
                "lint.allow:{}: expected `<lint> <path> <max-count>`",
                lineno + 1
            ));
        };
        let max_count: usize = count
            .parse()
            .map_err(|_| format!("lint.allow:{}: `{count}` is not a count", lineno + 1))?;
        entries.push(AllowEntry {
            lint: lint.to_string(),
            path: path.to_string(),
            max_count,
        });
    }
    Ok(entries)
}

/// Result of applying the allowlist to raw findings.
pub struct Applied {
    /// Findings that must fail the run.
    pub errors: Vec<Finding>,
    /// Human-readable stale-budget warnings (exit 0, but should be acted on).
    pub stale: Vec<String>,
}

/// Apply the ratchet: suppress exactly-budgeted groups, fail over-budget groups,
/// warn on under-budget (stale) entries.
pub fn apply(findings: Vec<Finding>, entries: &[AllowEntry]) -> Applied {
    let mut budgets: BTreeMap<(String, String), usize> = BTreeMap::new();
    for entry in entries {
        budgets.insert((entry.lint.clone(), entry.path.clone()), entry.max_count);
    }

    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for finding in findings {
        groups
            .entry((finding.lint.clone(), finding.path.clone()))
            .or_default()
            .push(finding);
    }

    let mut errors = Vec::new();
    let mut stale = Vec::new();
    for (key, group) in groups {
        let budget = budgets.remove(&key).unwrap_or(0);
        if group.len() > budget {
            if budget > 0 {
                stale.push(format!(
                    "{}: {} findings in {} exceed the budget of {budget}; all are listed",
                    key.0,
                    group.len(),
                    key.1
                ));
            }
            errors.extend(group);
        } else if group.len() < budget {
            stale.push(format!(
                "stale budget: `{} {} {budget}` but only {} findings remain — tighten lint.allow to {}",
                key.0,
                key.1,
                group.len(),
                group.len()
            ));
        }
    }
    // entries whose file produced no findings at all
    for ((lint, path), budget) in budgets {
        stale.push(format!(
            "stale budget: `{lint} {path} {budget}` but the file has no findings — remove the entry"
        ));
    }
    Applied { errors, stale }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;

    fn finding(lint: &str, path: &str, line: usize) -> Finding {
        Finding {
            lint: lint.to_string(),
            path: path.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn exact_budget_suppresses() {
        let entries = parse("panic-freedom a.rs 2\n").unwrap();
        let applied = apply(
            vec![
                finding("panic-freedom", "a.rs", 1),
                finding("panic-freedom", "a.rs", 2),
            ],
            &entries,
        );
        assert!(applied.errors.is_empty());
        assert!(applied.stale.is_empty());
    }

    #[test]
    fn over_budget_reports_the_whole_group() {
        let entries = parse("panic-freedom a.rs 1\n").unwrap();
        let applied = apply(
            vec![
                finding("panic-freedom", "a.rs", 1),
                finding("panic-freedom", "a.rs", 2),
            ],
            &entries,
        );
        assert_eq!(applied.errors.len(), 2);
    }

    #[test]
    fn under_budget_and_orphan_entries_are_stale() {
        let entries = parse("panic-freedom a.rs 3\nfloat-durability b.rs 1\n").unwrap();
        let applied = apply(vec![finding("panic-freedom", "a.rs", 1)], &entries);
        assert!(applied.errors.is_empty());
        assert_eq!(applied.stale.len(), 2);
    }

    #[test]
    fn unbudgeted_findings_fail() {
        let applied = apply(vec![finding("panic-freedom", "a.rs", 1)], &[]);
        assert_eq!(applied.errors.len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("panic-freedom a.rs\n").is_err());
        assert!(parse("panic-freedom a.rs many\n").is_err());
        assert!(parse("# comment\n\npanic-freedom a.rs 1\n").is_ok());
    }
}
