//! `lint.conf` — the checked-in manifest that scopes each pass — and the workspace
//! walker that loads every `.rs` file under the check root.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// One entry of the lock-order manifest: a module that takes a lock, and the
/// identifiers other modules call into it through.
#[derive(Debug, Clone)]
pub struct LockModule {
    /// Short name used in findings (`store`, `registry`, ...).
    pub name: String,
    /// Path of the module's file, relative to the check root.
    pub rel_path: String,
    /// Identifiers that acquire this module's lock when called from outside.
    pub entry_points: Vec<String>,
}

/// Parsed `lint.conf`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes excluded from every pass (fixtures, vendored code).
    pub skip: Vec<String>,
    /// Directories whose `run_delta*`-style symbols need test coverage.
    pub contract_src: Vec<String>,
    /// Glob patterns (only `*` is special) selecting contract symbols.
    pub contract_patterns: Vec<String>,
    /// Files held to the floats-need-`_bits` durability rule.
    pub float_files: Vec<String>,
    /// Directories held to the panic-freedom rule.
    pub panic_src: Vec<String>,
    /// Declared lock-order manifest.
    pub lock_modules: Vec<LockModule>,
}

impl Config {
    /// Parse the `key: value` line format.  Unknown keys are an error: a typo in the
    /// manifest must not silently disable a pass.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once(':') else {
                return Err(format!("lint.conf:{}: expected `key: value`", lineno + 1));
            };
            let value = value.trim();
            if value.is_empty() {
                return Err(format!("lint.conf:{}: empty value", lineno + 1));
            }
            match key.trim() {
                "skip" => config.skip.push(value.to_string()),
                "contract-src" => config.contract_src.push(value.to_string()),
                "contract-pattern" => config.contract_patterns.push(value.to_string()),
                "float-file" => config.float_files.push(value.to_string()),
                "panic-src" => config.panic_src.push(value.to_string()),
                "lock-module" => {
                    let mut parts = value.split_whitespace();
                    let (Some(name), Some(rel_path)) = (parts.next(), parts.next()) else {
                        return Err(format!(
                            "lint.conf:{}: lock-module needs `<name> <path> <entry>...`",
                            lineno + 1
                        ));
                    };
                    let entry_points: Vec<String> = parts.map(str::to_string).collect();
                    if entry_points.is_empty() {
                        return Err(format!(
                            "lint.conf:{}: lock-module `{name}` declares no entry points",
                            lineno + 1
                        ));
                    }
                    config.lock_modules.push(LockModule {
                        name: name.to_string(),
                        rel_path: rel_path.to_string(),
                        entry_points,
                    });
                }
                other => {
                    return Err(format!("lint.conf:{}: unknown key `{other}`", lineno + 1));
                }
            }
        }
        Ok(config)
    }

    /// Should `rel_path` be excluded from all passes?
    pub fn is_skipped(&self, rel_path: &str) -> bool {
        self.skip
            .iter()
            .any(|prefix| rel_path == prefix || rel_path.starts_with(&format!("{prefix}/")))
    }
}

/// Match `name` against a pattern where `*` matches any (possibly empty) substring.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn inner(pattern: &[u8], name: &[u8]) -> bool {
        match pattern.split_first() {
            None => name.is_empty(),
            Some((b'*', rest)) => (0..=name.len()).any(|skip| inner(rest, &name[skip..])),
            Some((ch, rest)) => name
                .split_first()
                .is_some_and(|(first, tail)| first == ch && inner(rest, tail)),
        }
    }
    inner(pattern.as_bytes(), name.as_bytes())
}

/// All `.rs` files under `root`, lexed, sorted by path, excluding build output,
/// VCS internals, and the config's `skip:` prefixes.
pub fn load_workspace(root: &Path, config: &Config) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    collect_rust_files(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel_path = relative_path(root, &path);
        if config.is_skipped(&rel_path) {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        files.push(SourceFile::new(rel_path, text));
    }
    Ok(files)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == ".git" || name == "target" {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with `/` separators.
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_key() {
        let conf = "\
# comment
skip: crates/lint/fixtures
contract-src: crates/opt/src
contract-pattern: run_delta*
contract-pattern: *_observed
float-file: crates/dist/src/store.rs
panic-src: crates/core/src
lock-module: store crates/dist/src/store.rs append claim
";
        let config = Config::parse(conf).unwrap();
        assert_eq!(config.skip, vec!["crates/lint/fixtures"]);
        assert_eq!(config.contract_patterns.len(), 2);
        assert_eq!(config.lock_modules.len(), 1);
        assert_eq!(config.lock_modules[0].entry_points, vec!["append", "claim"]);
        assert!(config.is_skipped("crates/lint/fixtures/fail/x.rs"));
        assert!(!config.is_skipped("crates/lint/src/lib.rs"));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(Config::parse("contract-sources: x").is_err());
        assert!(Config::parse("no separator line").is_err());
        assert!(Config::parse("lock-module: store crates/dist/src/store.rs").is_err());
    }

    #[test]
    fn globs() {
        assert!(glob_match("run_delta*", "run_delta"));
        assert!(glob_match("run_delta*", "run_delta_observed"));
        assert!(glob_match("*_observed", "run_observed"));
        assert!(!glob_match("*_observed", "observe"));
        assert!(glob_match("neighbor_move", "neighbor_move"));
        assert!(!glob_match("neighbor_move", "neighbor"));
    }
}
