//! Findings and the machine-readable report (hand-rolled JSON, house style).

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint name (`contract-coverage`, `float-durability`, ...).
    pub lint: String,
    /// File path relative to the check root.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// `path:line: [lint] message` — the terminal format.
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.path, self.lint, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.path, self.line, self.lint, self.message
            )
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the findings report as JSON (schema `wd-lint-report/v1` — deliberately
/// outside the `wd-obs-`/`wd-dist-` namespace the schema-registry lint polices).
pub fn render_json(errors: &[Finding], stale: &[String], files_checked: usize) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"wd-lint-report/v1\"");
    out.push_str(&format!(",\"files_checked\":{files_checked}"));
    out.push_str(&format!(",\"error_count\":{}", errors.len()));
    out.push_str(",\"errors\":[");
    for (i, finding) in errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            escape(&finding.lint),
            escape(&finding.path),
            finding.line,
            escape(&finding.message)
        ));
    }
    out.push_str("],\"stale\":[");
    for (i, warning) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", escape(warning)));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_formats_are_stable() {
        let finding = Finding {
            lint: "panic-freedom".to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "`unwrap()` in library code".to_string(),
        };
        assert_eq!(
            finding.render(),
            "crates/x/src/lib.rs:7: [panic-freedom] `unwrap()` in library code"
        );
        let json = render_json(&[finding], &["stale".to_string()], 3);
        assert!(json.starts_with("{\"schema\":\"wd-lint-report/v1\""));
        assert!(json.contains("\"error_count\":1"));
        assert!(json.contains("\"files_checked\":3"));
        assert!(json.contains("\"stale\":[\"stale\"]"));
    }

    #[test]
    fn json_escapes_control_characters() {
        let json = render_json(
            &[Finding {
                lint: "x".to_string(),
                path: "a\"b".to_string(),
                line: 0,
                message: "line\nbreak".to_string(),
            }],
            &[],
            1,
        );
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("line\\nbreak"));
    }
}
