//! A hand-rolled, total Rust lexer.
//!
//! The analyzer needs token-level accuracy — `unwrap` inside a string literal or a
//! comment must not count as a call — but nothing like a full parser.  This lexer
//! therefore recognises exactly the token classes the lint passes care about
//! (identifiers, string/char literals, comments, numbers, punctuation) and is
//! **total**: every input, including invalid Rust, lexes into a token stream whose
//! spans cover the input with no gaps and no overlaps (property-tested over every
//! source file in the workspace and over random byte soups).  Unterminated literals
//! and comments extend to end of input instead of failing.

/// The token classes the lint passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Runs of whitespace (including newlines).
    Whitespace,
    /// `// ...` to end of line (doc comments `///`/`//!` included).
    LineComment,
    /// `/* ... */`, nested, possibly unterminated.
    BlockComment,
    /// String literals: `"..."`, `b"..."`, raw `r"..."` / `r#"..."#` and byte-raw
    /// variants.
    Str,
    /// Character and byte-character literals: `'a'`, `b'\n'`.
    Char,
    /// Lifetimes and loop labels: `'ident`.
    Lifetime,
    /// Identifiers and keywords.
    Ident,
    /// Numeric literals (integers and floats, any radix, with suffixes).
    Number,
    /// A single punctuation or unrecognised byte.
    Punct,
}

/// One lexed token: a classification plus its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's slice of `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, nth: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(nth)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, predicate: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !predicate(c) {
                break;
            }
            self.bump();
        }
    }
}

/// Lex `src` into a covering token stream.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cursor = Cursor { src, pos: 0 };
    let mut tokens = Vec::new();
    while cursor.pos < src.len() {
        let start = cursor.pos;
        let kind = next_kind(&mut cursor);
        debug_assert!(cursor.pos > start, "lexer must always make progress");
        tokens.push(Token {
            kind,
            start,
            end: cursor.pos,
        });
    }
    tokens
}

fn next_kind(cursor: &mut Cursor<'_>) -> TokenKind {
    let first = match cursor.peek() {
        Some(c) => c,
        None => return TokenKind::Punct,
    };

    if first.is_whitespace() {
        cursor.eat_while(char::is_whitespace);
        return TokenKind::Whitespace;
    }

    if first == '/' {
        match cursor.peek_at(1) {
            Some('/') => {
                cursor.eat_while(|c| c != '\n');
                return TokenKind::LineComment;
            }
            Some('*') => {
                cursor.bump();
                cursor.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cursor.peek(), cursor.peek_at(1)) {
                        (Some('/'), Some('*')) => {
                            cursor.bump();
                            cursor.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cursor.bump();
                            cursor.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cursor.bump();
                        }
                        (None, _) => break, // unterminated: extend to EOF
                    }
                }
                return TokenKind::BlockComment;
            }
            _ => {
                cursor.bump();
                return TokenKind::Punct;
            }
        }
    }

    // raw / byte string prefixes take precedence over plain identifiers
    if first == 'r' || first == 'b' {
        if let Some(kind) = try_prefixed_literal(cursor) {
            return kind;
        }
    }

    if first == '"' {
        cursor.bump();
        eat_string_body(cursor, '"');
        return TokenKind::Str;
    }

    if first == '\'' {
        return lex_quote(cursor);
    }

    if first.is_ascii_digit() {
        lex_number(cursor);
        return TokenKind::Number;
    }

    if is_ident_start(first) {
        cursor.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }

    cursor.bump();
    TokenKind::Punct
}

/// Recognise `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` at the cursor, or return
/// `None` leaving the cursor untouched (plain identifier starting with `r`/`b`).
fn try_prefixed_literal(cursor: &mut Cursor<'_>) -> Option<TokenKind> {
    let first = cursor.peek()?;
    let mut nth = 1usize;
    if first == 'b' {
        match cursor.peek_at(nth) {
            Some('\'') => {
                cursor.bump(); // b
                cursor.bump(); // '
                eat_char_body(cursor);
                return Some(TokenKind::Char);
            }
            Some('"') => {
                cursor.bump();
                cursor.bump();
                eat_string_body(cursor, '"');
                return Some(TokenKind::Str);
            }
            Some('r') => nth = 2,
            _ => return None,
        }
    }
    // raw string: at `nth` expect zero or more '#' then '"'
    let mut hashes = 0usize;
    while cursor.peek_at(nth + hashes) == Some('#') {
        hashes += 1;
    }
    if cursor.peek_at(nth + hashes) != Some('"') {
        return None;
    }
    for _ in 0..nth + hashes + 1 {
        cursor.bump();
    }
    // body runs until `"` followed by `hashes` '#'s (or EOF)
    loop {
        match cursor.bump() {
            None => break,
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cursor.peek() == Some('#') {
                    cursor.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
    Some(TokenKind::Str)
}

/// Consume a (possibly escaped) string body after the opening quote, including the
/// closing `quote` (or to EOF when unterminated).
fn eat_string_body(cursor: &mut Cursor<'_>, quote: char) {
    loop {
        match cursor.bump() {
            None => break,
            Some('\\') => {
                cursor.bump();
            }
            Some(c) if c == quote => break,
            Some(_) => {}
        }
    }
}

/// Consume a char-literal body after the opening `'`, including the closing `'`.
fn eat_char_body(cursor: &mut Cursor<'_>) {
    if let Some('\\') = cursor.bump() {
        cursor.bump(); // the escaped character (or `u`)
        if cursor.peek() == Some('{') {
            cursor.eat_while(|c| c != '}' && c != '\'' && c != '\n');
            if cursor.peek() == Some('}') {
                cursor.bump();
            }
        }
    }
    if cursor.peek() == Some('\'') {
        cursor.bump();
    }
}

/// Disambiguate `'a'` (char) from `'a` (lifetime) after seeing a `'`.
fn lex_quote(cursor: &mut Cursor<'_>) -> TokenKind {
    match (cursor.peek_at(1), cursor.peek_at(2)) {
        // escaped char: '\n', '\'', '\u{..}'
        (Some('\\'), _) => {
            cursor.bump();
            eat_char_body(cursor);
            TokenKind::Char
        }
        // one ident-class char then a closing quote: a char literal like 'a'
        (Some(c), Some('\'')) if is_ident_start(c) || c.is_ascii_digit() => {
            cursor.bump();
            cursor.bump();
            cursor.bump();
            TokenKind::Char
        }
        // ident-class run without a closing quote: a lifetime or loop label
        (Some(c), _) if is_ident_start(c) => {
            cursor.bump();
            cursor.eat_while(is_ident_continue);
            TokenKind::Lifetime
        }
        // anything else (punctuation char literal, or a lone quote at EOF)
        (Some(_), _) => {
            cursor.bump();
            eat_char_body(cursor);
            TokenKind::Char
        }
        (None, _) => {
            cursor.bump();
            TokenKind::Punct
        }
    }
}

fn lex_number(cursor: &mut Cursor<'_>) {
    if cursor.peek() == Some('0')
        && matches!(cursor.peek_at(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
    {
        cursor.bump();
        cursor.bump();
        cursor.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return;
    }
    cursor.eat_while(|c| c.is_ascii_digit() || c == '_');
    // fractional part: `.` followed by a digit, or a trailing `.` that is not a
    // range operator / method call (`1..2`, `1.max(2)`)
    if cursor.peek() == Some('.') {
        match cursor.peek_at(1) {
            Some(c) if c.is_ascii_digit() => {
                cursor.bump();
                cursor.eat_while(|c| c.is_ascii_digit() || c == '_');
            }
            Some(c) if c == '.' || is_ident_start(c) => {}
            _ => {
                cursor.bump();
            }
        }
    }
    // exponent: e/E with optional sign, only when digits follow
    if matches!(cursor.peek(), Some('e' | 'E')) {
        let (sign, digit) = (cursor.peek_at(1), cursor.peek_at(2));
        let direct = sign.is_some_and(|c| c.is_ascii_digit());
        let signed = matches!(sign, Some('+' | '-')) && digit.is_some_and(|c| c.is_ascii_digit());
        if direct || signed {
            cursor.bump();
            if signed {
                cursor.bump();
            }
            cursor.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // type suffix (`f64`, `u32`, `usize`, ...)
    cursor.eat_while(is_ident_continue);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|token| (token.kind, token.text(src)))
            .collect()
    }

    fn assert_covers(src: &str) {
        let tokens = lex(src);
        let mut pos = 0usize;
        for token in &tokens {
            assert_eq!(token.start, pos, "gap/overlap at {pos} in {src:?}");
            assert!(token.end > token.start);
            pos = token.end;
        }
        assert_eq!(pos, src.len(), "tokens must cover {src:?}");
    }

    #[test]
    fn classifies_the_token_classes_the_passes_rely_on() {
        let src = "let x = a.unwrap(); // SAFETY: ok\n\"bits are authoritative\"";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Ident, "unwrap")));
        assert!(toks.contains(&(TokenKind::LineComment, "// SAFETY: ok")));
        assert!(toks.contains(&(TokenKind::Str, "\"bits are authoritative\"")));
        assert_covers(src);
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; let u = '\\u{41}'; }";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::Char, "'x'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\n'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\u{41}'")));
        assert_covers(src);
    }

    #[test]
    fn raw_and_byte_strings_lex_as_one_token() {
        for src in [
            "r\"plain raw\"",
            "r#\"with \" quote\"#",
            "br##\"bytes \"# deep\"##",
            "b\"bytes\"",
            "b'x'",
        ] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src:?} lexed as {toks:?}");
            assert_covers(src);
        }
    }

    #[test]
    fn nested_and_unterminated_comments_extend_correctly() {
        let src = "/* a /* nested */ still */ x";
        let toks = kinds(src);
        assert_eq!(
            toks[0],
            (TokenKind::BlockComment, "/* a /* nested */ still */")
        );
        assert_covers(src);
        assert_covers("/* unterminated");
        assert_covers("\"unterminated");
        assert_covers("r#\"unterminated");
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_method_calls() {
        let toks = kinds("1..2 + 1.max(2) + 1.5e-3 + 0xff_u32 + 2.");
        assert!(toks.contains(&(TokenKind::Number, "1")));
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3")));
        assert!(toks.contains(&(TokenKind::Number, "0xff_u32")));
        assert!(toks.contains(&(TokenKind::Number, "2.")));
        assert!(toks.contains(&(TokenKind::Ident, "max")));
    }

    #[test]
    fn strings_hide_code_like_content() {
        let toks = kinds("let s = \"x.unwrap() // not a comment\";");
        assert!(!toks.contains(&(TokenKind::Ident, "unwrap")));
        assert!(toks.iter().all(|(kind, _)| *kind != TokenKind::LineComment));
    }
}
