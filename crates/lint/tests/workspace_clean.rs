//! The analyzer against its own workspace: the real repository must check clean
//! (modulo the grandfathered `lint.allow` budgets), and the contract-coverage pass
//! must actually see the real delta/observed entry points — guarding against the
//! scope rotting silently out from under the lint.

use std::collections::BTreeSet;
use std::path::PathBuf;

use wd_lint::config::{load_workspace, Config};
use wd_lint::lints::contract;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

#[test]
fn the_workspace_checks_clean() {
    let outcome = wd_lint::check(&repo_root()).unwrap();
    assert!(
        outcome.errors.is_empty(),
        "workspace has lint errors:\n{}",
        outcome
            .errors
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.stale.is_empty(),
        "lint.allow has stale budgets — regenerate with `cargo run -p wd-lint -- baseline .`:\n{}",
        outcome.stale.join("\n")
    );
    assert!(outcome.files_checked > 50);
}

#[test]
fn contract_scope_sees_the_real_entry_points() {
    let root = repo_root();
    let conf = std::fs::read_to_string(root.join("lint.conf")).unwrap();
    let config = Config::parse(&conf).unwrap();
    let files = load_workspace(&root, &config).unwrap();

    let symbols: BTreeSet<(String, String)> = files
        .iter()
        .filter(|f| !f.is_test_file)
        .flat_map(|f| contract::symbols_in(&config, f))
        .map(|s| (s.owner, s.method))
        .collect();

    for (owner, method) in [
        ("SimulatedAnnealing", "run_delta"),
        ("SimulatedAnnealing", "run_delta_observed"),
        ("SimulatedAnnealing", "run_observed"),
        ("ShardedCampaign", "run_observed"),
        ("ShardedCampaign", "run_supervised_observed"),
        ("ConfigurationSpace", "neighbor_move"),
        ("ConfigurationSpace", "crossover_move"),
        ("GridSpace", "neighbor_move"),
        ("GridSpace", "crossover_move"),
        ("ShardView", "neighbor_move"),
        ("ShardView", "crossover_move"),
        ("SearchSpace", "neighbor_move"),
        ("SearchSpace", "crossover_move"),
    ] {
        assert!(
            symbols.contains(&(owner.to_string(), method.to_string())),
            "contract scope lost `{owner}::{method}` — did a file move out of contract-src?"
        );
    }
}
