//! Self-test harness over the checked-in fixture corpus: every lint must stay
//! silent on its `pass/` fixture and fire on its `fail/` fixture, and the CLI exit
//! codes must follow the contract (0 clean, 1 findings, 2 manifest errors).

use std::path::PathBuf;
use std::process::Command;

const LINTS: [&str; 6] = [
    "contract-coverage",
    "float-durability",
    "panic-freedom",
    "lock-discipline",
    "unsafe-hygiene",
    "schema-registry",
];

fn fixture_root(kind: &str, lint: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
        .join(lint)
}

#[test]
fn the_fixture_corpus_names_every_lint() {
    let mut ours = LINTS.to_vec();
    let mut all = wd_lint::lints::ALL.to_vec();
    ours.sort_unstable();
    all.sort_unstable();
    assert_eq!(ours, all, "fixture corpus out of sync with the lint set");
}

#[test]
fn every_pass_fixture_is_clean() {
    for lint in LINTS {
        let outcome = wd_lint::check(&fixture_root("pass", lint)).unwrap();
        assert!(
            outcome.raw.is_empty(),
            "{lint} pass fixture should be clean, got: {:?}",
            outcome.raw.iter().map(|f| f.render()).collect::<Vec<_>>()
        );
        assert!(outcome.files_checked > 0, "{lint} pass fixture is empty");
    }
}

#[test]
fn every_fail_fixture_fires_exactly_its_lint() {
    for lint in LINTS {
        let outcome = wd_lint::check(&fixture_root("fail", lint)).unwrap();
        assert!(
            !outcome.errors.is_empty(),
            "{lint} fail fixture produced no findings"
        );
        assert!(
            outcome.errors.iter().all(|f| f.lint == lint),
            "{lint} fail fixture leaked other lints: {:?}",
            outcome
                .errors
                .iter()
                .map(|f| f.render())
                .collect::<Vec<_>>()
        );
    }
}

/// The acceptance property behind contract-coverage: a test that stops naming the
/// owning type (here `Annealer`) un-covers the method even if the method name still
/// appears somewhere, while free functions stay covered by name alone.
#[test]
fn contract_fail_fixture_pinpoints_the_uncovered_owner_method() {
    let outcome = wd_lint::check(&fixture_root("fail", "contract-coverage")).unwrap();
    assert_eq!(outcome.errors.len(), 1);
    assert!(outcome.errors[0].message.contains("Annealer::run_delta"));
    assert!(!outcome
        .errors
        .iter()
        .any(|f| f.message.contains("`neighbor_move`")));
}

#[test]
fn cli_exit_codes_follow_the_contract() {
    let bin = env!("CARGO_BIN_EXE_wd-lint");

    let clean = Command::new(bin)
        .arg("check")
        .arg(fixture_root("pass", "panic-freedom"))
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0));

    for lint in LINTS {
        let dirty = Command::new(bin)
            .arg("check")
            .arg(fixture_root("fail", lint))
            .output()
            .unwrap();
        assert_eq!(dirty.status.code(), Some(1), "{lint} fail fixture");
        let stdout = String::from_utf8(dirty.stdout).unwrap();
        assert!(stdout.contains(&format!("[{lint}]")), "{lint}: {stdout}");
    }

    // a root without lint.conf is a usage/manifest error, not a clean run
    let bogus = Command::new(bin)
        .arg("check")
        .arg(fixture_root("fail", "no-such-fixture"))
        .output()
        .unwrap();
    assert_eq!(bogus.status.code(), Some(2));
}

#[test]
fn check_writes_the_findings_report() {
    let bin = env!("CARGO_BIN_EXE_wd-lint");
    let report = std::env::temp_dir().join(format!("wd-lint-report-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&report);

    let run = Command::new(bin)
        .arg("check")
        .arg(fixture_root("fail", "float-durability"))
        .arg("--report")
        .arg(&report)
        .output()
        .unwrap();
    assert_eq!(run.status.code(), Some(1));
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.starts_with("{\"schema\":\"wd-lint-report/v1\""));
    assert!(json.contains("\"lint\":\"float-durability\""));
    let _ = std::fs::remove_file(&report);
}
