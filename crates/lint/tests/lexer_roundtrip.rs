//! Round-trip property for the hand-rolled lexer: over every source file in the
//! workspace — and over random byte soup — the token spans must tile the input
//! exactly: start at 0, no gaps, no overlaps, end at EOF.  A lexer that drops or
//! double-counts bytes silently corrupts every downstream pass.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wd_lint::config::{load_workspace, Config};
use wd_lint::lexer::lex;

fn assert_covers(src: &str, context: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    for token in &tokens {
        assert_eq!(
            token.start, pos,
            "{context}: gap or overlap at byte {pos} (token {:?})",
            token.kind
        );
        assert!(
            token.end > token.start,
            "{context}: empty token at byte {pos}"
        );
        pos = token.end;
    }
    assert_eq!(pos, src.len(), "{context}: trailing bytes not tokenized");
}

#[test]
fn every_workspace_source_file_lexes_to_a_covering_stream() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let files = load_workspace(&root, &Config::default()).unwrap();
    assert!(files.len() > 50, "workspace walk found too few files");
    for file in &files {
        assert_covers(&file.text, &file.rel_path);
    }
}

/// Random soup drawn from the characters most likely to confuse a Rust lexer:
/// quote/lifetime ambiguity, raw-string hashes, nested comments, numeric suffixes.
#[test]
fn random_soup_always_lexes_to_a_covering_stream() {
    const POOL: &[char] = &[
        '"', '\'', 'r', 'b', '#', '\\', '/', '*', '{', '}', '(', ')', '.', '0', '1', '9', 'e', '_',
        'x', 'a', 'Z', ' ', '\n', '\t', '!', '<', '>', ';', ':', '&', 'é', '∆', '🦀',
    ];
    let mut rng = StdRng::seed_from_u64(0x1E4E5);
    for case in 0..512 {
        let len = rng.gen_range(0..200);
        let soup: String = (0..len)
            .map(|_| POOL[rng.gen_range(0..POOL.len())])
            .collect();
        assert_covers(&soup, &format!("soup case {case}: {soup:?}"));
    }
}

/// The disambiguation corners the passes depend on, pinned explicitly.
#[test]
fn lexer_corner_cases_tile_exactly() {
    for src in [
        "let s = r#\"raw \" string\"#;",
        "let b = br##\"bytes\"##;",
        "let c = 'a'; let lt: &'static str = \"x\";",
        "let n = 1.max(2); let f = 2.; let r = 0..10;",
        "/* nested /* block */ comment */ fn f() {}",
        "let u = '\\u{1F980}'; // 🦀",
        "let unterminated = \"runs to eof",
        "m!{ \"wd-like/v0\" }",
    ] {
        assert_covers(src, src);
    }
}
