//! Fixture: an f64 persisted as decimal text only — not replayable bit-exactly.

pub fn persist(energy: f64) -> String {
    format!("best energy {energy}")
}
