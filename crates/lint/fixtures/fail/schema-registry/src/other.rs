//! Fixture: a schema literal duplicated outside its defining file, plus one that
//! was never declared anywhere.

pub fn header() -> String {
    let schema = "wd-obs-events/v1";
    let rogue = "wd-dist-rogue/v9";
    format!("{schema} {rogue}")
}
