//! Fixture: contract symbols with full test coverage.

pub struct Annealer;

impl Annealer {
    pub fn run_delta(&self) -> u32 {
        0
    }
}

pub fn neighbor_move(config: u32) -> u32 {
    config + 1
}
