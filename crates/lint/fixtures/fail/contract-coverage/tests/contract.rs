//! Fixture test: mentions `run_delta` but never the owning type, so the method
//! counts as uncovered (`neighbor_move` is a free function and stays covered).

#[test]
fn mentions_the_method_but_not_the_owner() {
    assert_eq!(neighbor_move(1), 2);
    let name = "run_delta";
    assert_eq!(name.len(), 9);
}
