//! Fixture: an unwrap in library code.

pub fn value(input: Option<u32>) -> u32 {
    input.unwrap()
}
