//! Fixture: the foreign lock module whose `event` entry point takes its own lock.

pub fn event(name: &str) -> usize {
    name.len()
}
