//! Fixture: the exporter entry point is called while the store guard is live.

use std::sync::Mutex;

pub struct Store {
    map: Mutex<Vec<u64>>,
}

impl Store {
    pub fn record(&self, value: u64) {
        let mut guard = self.map.lock().unwrap_or_else(|e| e.into_inner());
        guard.push(value);
        event("recorded");
    }
}

fn event(_name: &str) {}
