//! Fixture: an unsafe block with no SAFETY comment.

pub fn first(values: &[u64]) -> u64 {
    unsafe { *values.get_unchecked(0) }
}
