//! Fixture: library code propagates options; tests may still unwrap.

pub fn checked_div(a: u32, b: u32) -> Option<u32> {
    a.checked_div(b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::checked_div(4, 2).unwrap(), 2);
    }
}
