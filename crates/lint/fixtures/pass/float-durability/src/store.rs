//! Fixture: every persisted f64 carries its IEEE-754 bit pattern.

pub fn persist(energy: f64) -> String {
    format!("{energy} {energy_bits:016x}", energy_bits = energy.to_bits())
}

pub fn describe(count: u64) -> String {
    format!("{count} evaluations")
}
