//! Fixture: every unsafe block carries a SAFETY justification.

pub fn first(values: &[u64]) -> u64 {
    // SAFETY: the caller guarantees `values` is non-empty.
    unsafe { *values.get_unchecked(0) }
}
