//! Fixture test: names both the owner (`Annealer`) and the contract methods.

#[test]
fn run_delta_is_bit_identical() {
    let annealer = Annealer;
    assert_eq!(annealer.run_delta(), 0);
    assert_eq!(neighbor_move(1), 2);
}
