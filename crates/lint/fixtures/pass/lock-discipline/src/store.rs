//! Fixture: guards are released (scope or `drop`) before crossing into the
//! exporter module.

use std::sync::Mutex;

pub struct Store {
    map: Mutex<Vec<u64>>,
}

impl Store {
    pub fn record(&self, value: u64) {
        {
            let mut guard = self.map.lock().unwrap_or_else(|e| e.into_inner());
            guard.push(value);
        }
        event("recorded");
    }

    pub fn lookup(&self) -> usize {
        let guard = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let len = guard.len();
        drop(guard);
        event("looked up");
        len
    }
}

fn event(_name: &str) {}
