//! Fixture: the schema string lives only at its declared constant.

pub const EVENT_SCHEMA_VERSION: &str = "wd-obs-events/v1";
