//! Replay of [`crate::JsonlExporter`] event files: line-oriented parsing (bits-first
//! for floats, like the dist store's loader) back into typed [`ObsEvent`]s.

use std::fs;
use std::io;
use std::path::Path;

use crate::recorder::IterationEvent;

/// One event parsed back from an exporter file.  Structured span/event payload
/// fields are not reconstructed — they are for external consumers (dashboards,
/// `jq`); replay reconstructs the signals the workspace itself consumes, most
/// importantly the full-fidelity iteration stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A counter increment.
    Counter {
        /// Counter name.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// A gauge write.
    Gauge {
        /// Gauge name.
        name: String,
        /// Value written (bit-exact).
        value: f64,
    },
    /// A histogram observation.
    Observe {
        /// Histogram name.
        name: String,
        /// Observed value (bit-exact).
        value: f64,
    },
    /// A completed span.
    Span {
        /// Span name.
        name: String,
        /// Span duration (bit-exact).
        seconds: f64,
    },
    /// One optimizer iteration (all energies bit-exact).
    Iteration {
        /// The loop's scope (method name).
        scope: String,
        /// The iteration payload.
        event: IterationEvent,
    },
    /// A structured progress event.
    Marker {
        /// Event scope.
        scope: String,
        /// Event kind.
        kind: String,
    },
}

/// A parsed exporter file.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLog {
    /// All events, in file (= emission) order.
    pub events: Vec<ObsEvent>,
    /// Number of unparseable lines skipped (a truncated tail after a crash, or
    /// foreign lines).  Schema-header lines are not counted.
    pub skipped_lines: usize,
}

impl EventLog {
    /// Read and parse an exporter file.  Unparseable lines are skipped and counted,
    /// mirroring the dist store's truncation-tolerant loader.
    pub fn read(path: impl AsRef<Path>) -> io::Result<Self> {
        let contents = fs::read_to_string(path)?;
        let mut events = Vec::new();
        let mut skipped_lines = 0usize;
        for line in contents.lines() {
            if line.trim().is_empty() || json_str_field(line, "schema").is_some() {
                continue;
            }
            match parse_event(line) {
                Some(event) => events.push(event),
                None => skipped_lines += 1,
            }
        }
        Ok(EventLog {
            events,
            skipped_lines,
        })
    }

    /// The iteration events recorded under `scope`, in emission order.
    pub fn iteration_events(&self, scope: &str) -> Vec<IterationEvent> {
        self.events
            .iter()
            .filter_map(|event| match event {
                ObsEvent::Iteration { scope: s, event } if s == scope => Some(*event),
                _ => None,
            })
            .collect()
    }

    /// The best-energy-so-far series of the loop recorded under `scope` — the same
    /// series as `OptimizationTrace::best_energy_series`, reconstructed from the
    /// event file alone (bit-exact thanks to the `*_bits` fields).
    pub fn best_energy_series(&self, scope: &str) -> Vec<f64> {
        self.events
            .iter()
            .filter_map(|event| match event {
                ObsEvent::Iteration { scope: s, event } if s == scope => Some(event.best_energy),
                _ => None,
            })
            .collect()
    }
}

fn parse_event(line: &str) -> Option<ObsEvent> {
    let kind = json_str_field(line, "type")?;
    match kind.as_str() {
        "counter" => Some(ObsEvent::Counter {
            name: json_str_field(line, "name")?,
            delta: json_u64_field(line, "delta")?,
        }),
        "gauge" => Some(ObsEvent::Gauge {
            name: json_str_field(line, "name")?,
            value: json_f64_field(line, "value", "bits")?,
        }),
        "observe" => Some(ObsEvent::Observe {
            name: json_str_field(line, "name")?,
            value: json_f64_field(line, "value", "bits")?,
        }),
        "span" => Some(ObsEvent::Span {
            name: json_str_field(line, "name")?,
            seconds: json_f64_field(line, "seconds", "seconds_bits")?,
        }),
        "iteration" => Some(ObsEvent::Iteration {
            scope: json_str_field(line, "scope")?,
            event: IterationEvent {
                iteration: usize::try_from(json_u64_field(line, "iteration")?).ok()?,
                proposed_energy: json_f64_field(line, "proposed", "proposed_bits")?,
                current_energy: json_f64_field(line, "current", "current_bits")?,
                best_energy: json_f64_field(line, "best", "best_bits")?,
                temperature: json_f64_field(line, "temperature", "temperature_bits")?,
                accepted: json_bool_field(line, "accepted")?,
            },
        }),
        "event" => Some(ObsEvent::Marker {
            scope: json_str_field(line, "scope")?,
            kind: json_str_field(line, "kind")?,
        }),
        _ => None,
    }
}

/// Extract the string value of `"key":"..."`, un-escaping `\"` and `\\`.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let mut value = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '\\' => value.push(chars.next()?),
            '"' => return Some(value),
            c => value.push(c),
        }
    }
}

/// Extract the unsigned-integer value of `"key":N`.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let raw = json_raw_field(line, key)?;
    raw.parse().ok()
}

/// Extract the boolean value of `"key":true|false`.
fn json_bool_field(line: &str, key: &str) -> Option<bool> {
    match json_raw_field(line, key)?.as_str() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Extract an `f64`: the hex `bits_key` field is authoritative (exact IEEE-754 round
/// trip, covers non-finite values); the decimal `key` field is the fallback for
/// hand-edited files.
fn json_f64_field(line: &str, key: &str, bits_key: &str) -> Option<f64> {
    if let Some(bits) = json_str_field(line, bits_key) {
        if let Ok(bits) = u64::from_str_radix(&bits, 16) {
            return Some(f64::from_bits(bits));
        }
    }
    json_raw_field(line, key)?.parse().ok()
}

/// The raw token following `"key":` up to the next `,` or `}`.
fn json_raw_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    let token = rest[..end].trim();
    if token.is_empty() {
        None
    } else {
        Some(token.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_and_typed_field_parsers_work() {
        let line = "{\"type\":\"iteration\",\"scope\":\"sa\",\"iteration\":12,\"best\":1.5,\"best_bits\":\"3ff8000000000000\",\"accepted\":true}";
        assert_eq!(json_str_field(line, "type").unwrap(), "iteration");
        assert_eq!(json_u64_field(line, "iteration").unwrap(), 12);
        assert!(json_bool_field(line, "accepted").unwrap());
        assert_eq!(json_f64_field(line, "best", "best_bits").unwrap(), 1.5);
        assert_eq!(json_str_field(line, "missing"), None);
    }

    #[test]
    fn bits_take_precedence_over_decimal() {
        // decimal says 2.0 but the bits say 1.5: bits win
        let line = "{\"value\":2.0,\"bits\":\"3ff8000000000000\"}";
        assert_eq!(json_f64_field(line, "value", "bits").unwrap(), 1.5);
        // without bits, the decimal is used
        let line = "{\"value\":2.0}";
        assert_eq!(json_f64_field(line, "value", "bits").unwrap(), 2.0);
    }

    #[test]
    fn escaped_strings_round_trip() {
        let line = "{\"name\":\"a\\\"b\\\\c\"}";
        assert_eq!(json_str_field(line, "name").unwrap(), "a\"b\\c");
    }

    #[test]
    fn best_energy_series_filters_by_scope() {
        let mut events = Vec::new();
        for (scope, best) in [("a", 3.0), ("b", 9.0), ("a", 2.0), ("a", 1.0)] {
            events.push(ObsEvent::Iteration {
                scope: scope.to_string(),
                event: IterationEvent {
                    iteration: 0,
                    proposed_energy: best,
                    current_energy: best,
                    best_energy: best,
                    temperature: 0.0,
                    accepted: true,
                },
            });
        }
        let log = EventLog {
            events,
            skipped_lines: 0,
        };
        assert_eq!(log.best_energy_series("a"), vec![3.0, 2.0, 1.0]);
        assert_eq!(log.iteration_events("b").len(), 1);
        assert!(log.best_energy_series("c").is_empty());
    }
}
