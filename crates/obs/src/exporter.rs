//! [`JsonlExporter`]: a [`Recorder`] that streams every event to disk as one JSON
//! line, in the same durable append style as `wd_dist::JsonlStore`.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::recorder::{FieldValue, IterationEvent, Recorder};
use crate::{escape_json, EVENT_SCHEMA_VERSION};

/// A recorder that appends every event to a JSON-lines file.
///
/// Durability follows `JsonlStore`: each event is written *and flushed* as its own
/// line, so a killed process loses at most the event being written, and the replay
/// loader ([`crate::EventLog::read`]) skips a truncated tail.  Write errors are
/// parked on first occurrence (the `Recorder` methods cannot return them) and
/// surfaced by [`JsonlExporter::flush`]; once a write fails the exporter drops
/// subsequent events rather than recording a stream with a hole in the middle.
///
/// Every energy and temperature is serialized twice: as a human-readable decimal and
/// as the exact IEEE-754 bit pattern (`*_bits` hex fields, authoritative on replay),
/// so a trace reconstructed from the file matches the in-process trace bit for bit.
#[derive(Debug)]
pub struct JsonlExporter {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    write_error: Mutex<Option<io::Error>>,
    events_written: AtomicU64,
    bytes_written: AtomicU64,
}

impl JsonlExporter {
    /// Create (or truncate) the event file at `path` and stamp the schema header.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut writer = BufWriter::new(file);
        writeln!(writer, "{{\"schema\":\"{EVENT_SCHEMA_VERSION}\"}}")?;
        writer.flush()?;
        Ok(JsonlExporter {
            path,
            writer: Mutex::new(writer),
            write_error: Mutex::new(None),
            events_written: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// The file this exporter appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of events successfully appended so far (excluding the schema header).
    pub fn events_written(&self) -> u64 {
        self.events_written.load(Ordering::Relaxed)
    }

    /// Number of payload bytes successfully appended so far (including the newline
    /// terminators, excluding the schema header).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Flush the underlying writer and surface the first parked write error, if any.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(err) = self
            .write_error
            .lock()
            .expect("exporter error slot poisoned")
            .take()
        {
            return Err(err);
        }
        self.writer
            .lock()
            .expect("exporter writer poisoned")
            .flush()
    }

    fn append_line(&self, line: &str) {
        let mut error_slot = self
            .write_error
            .lock()
            .expect("exporter error slot poisoned");
        if error_slot.is_some() {
            // a previous write failed: drop the event instead of recording a stream
            // with a silent gap before this point
            return;
        }
        let mut writer = self.writer.lock().expect("exporter writer poisoned");
        let outcome = writeln!(writer, "{line}").and_then(|()| writer.flush());
        match outcome {
            Ok(()) => {
                self.events_written.fetch_add(1, Ordering::Relaxed);
                self.bytes_written
                    .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
            }
            Err(err) => *error_slot = Some(err),
        }
    }
}

/// Render structured fields as `,"f.<name>":<value>` suffix pairs (flat keys keep the
/// replay parser line-oriented, like the store's).
fn render_fields(fields: &[(&str, FieldValue)]) -> String {
    let mut out = String::new();
    for (name, value) in fields {
        let name = escape_json(name);
        match value {
            FieldValue::U64(v) => out.push_str(&format!(",\"f.{name}\":{v}")),
            FieldValue::F64(v) => out.push_str(&format!(
                ",\"f.{name}\":{v},\"f.{name}_bits\":\"{:016x}\"",
                v.to_bits()
            )),
            FieldValue::Bool(v) => out.push_str(&format!(",\"f.{name}\":{v}")),
        }
    }
    out
}

impl Recorder for JsonlExporter {
    fn counter(&self, name: &str, delta: u64) {
        self.append_line(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}",
            escape_json(name)
        ));
    }

    fn gauge(&self, name: &str, value: f64) {
        self.append_line(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value},\"bits\":\"{:016x}\"}}",
            escape_json(name),
            value.to_bits()
        ));
    }

    fn observe(&self, name: &str, value: f64) {
        self.append_line(&format!(
            "{{\"type\":\"observe\",\"name\":\"{}\",\"value\":{value},\"bits\":\"{:016x}\"}}",
            escape_json(name),
            value.to_bits()
        ));
    }

    fn span(&self, name: &str, seconds: f64, fields: &[(&str, FieldValue)]) {
        self.append_line(&format!(
            "{{\"type\":\"span\",\"name\":\"{}\",\"seconds\":{seconds},\"seconds_bits\":\"{:016x}\"{}}}",
            escape_json(name),
            seconds.to_bits(),
            render_fields(fields)
        ));
    }

    fn iteration(&self, scope: &str, event: IterationEvent) {
        self.append_line(&format!(
            concat!(
                "{{\"type\":\"iteration\",\"scope\":\"{scope}\",\"iteration\":{iteration},",
                "\"proposed\":{proposed},\"proposed_bits\":\"{proposed_bits:016x}\",",
                "\"current\":{current},\"current_bits\":\"{current_bits:016x}\",",
                "\"best\":{best},\"best_bits\":\"{best_bits:016x}\",",
                "\"temperature\":{temperature},\"temperature_bits\":\"{temperature_bits:016x}\",",
                "\"accepted\":{accepted}}}"
            ),
            scope = escape_json(scope),
            iteration = event.iteration,
            proposed = event.proposed_energy,
            proposed_bits = event.proposed_energy.to_bits(),
            current = event.current_energy,
            current_bits = event.current_energy.to_bits(),
            best = event.best_energy,
            best_bits = event.best_energy.to_bits(),
            temperature = event.temperature,
            temperature_bits = event.temperature.to_bits(),
            accepted = event.accepted,
        ));
    }

    fn event(&self, scope: &str, kind: &str, fields: &[(&str, FieldValue)]) {
        self.append_line(&format!(
            "{{\"type\":\"event\",\"scope\":\"{}\",\"kind\":\"{}\"{}}}",
            escape_json(scope),
            escape_json(kind),
            render_fields(fields)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::EventLog;
    use crate::ObsEvent;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "wd_obs_exporter_{}_{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn header_is_stamped_and_events_round_trip() {
        let path = temp_path("round_trip");
        let exporter = JsonlExporter::create(&path).unwrap();
        exporter.counter("cache.hits", 7);
        exporter.gauge("temperature", 0.1 + 0.2); // not exactly representable
        exporter.iteration(
            "saml",
            IterationEvent {
                iteration: 3,
                proposed_energy: 1.5,
                current_energy: 1.25,
                best_energy: 1.0,
                temperature: 0.5,
                accepted: true,
            },
        );
        exporter.event("campaign", "merged", &[("shards", FieldValue::U64(4))]);
        exporter.flush().unwrap();
        assert_eq!(exporter.events_written(), 4);
        assert!(exporter.bytes_written() > 0);

        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with(&format!("{{\"schema\":\"{EVENT_SCHEMA_VERSION}\"}}")));

        let log = EventLog::read(&path).unwrap();
        assert_eq!(log.skipped_lines, 0);
        assert_eq!(log.events.len(), 4);
        match &log.events[0] {
            ObsEvent::Counter { name, delta } => {
                assert_eq!(name, "cache.hits");
                assert_eq!(*delta, 7);
            }
            other => panic!("expected counter, got {other:?}"),
        }
        match &log.events[1] {
            ObsEvent::Gauge { value, .. } => {
                assert_eq!(value.to_bits(), (0.1f64 + 0.2).to_bits());
            }
            other => panic!("expected gauge, got {other:?}"),
        }
        match &log.events[2] {
            ObsEvent::Iteration { scope, event } => {
                assert_eq!(scope, "saml");
                assert_eq!(event.iteration, 3);
                assert!(event.accepted);
                assert_eq!(event.best_energy.to_bits(), 1.0f64.to_bits());
            }
            other => panic!("expected iteration, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_skipped_on_replay() {
        let path = temp_path("truncated");
        let exporter = JsonlExporter::create(&path).unwrap();
        for i in 0..3 {
            exporter.counter("n", i);
        }
        exporter.flush().unwrap();
        drop(exporter);
        // simulate a crash mid-write: append half a line
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("{\"type\":\"counter\",\"name\":\"n\",\"de");
        std::fs::write(&path, contents).unwrap();

        let log = EventLog::read(&path).unwrap();
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.skipped_lines, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_finite_energies_survive_via_bits() {
        let path = temp_path("non_finite");
        let exporter = JsonlExporter::create(&path).unwrap();
        exporter.iteration(
            "x",
            IterationEvent {
                iteration: 0,
                proposed_energy: f64::INFINITY,
                current_energy: f64::INFINITY,
                best_energy: f64::INFINITY,
                temperature: 0.0,
                accepted: false,
            },
        );
        exporter.flush().unwrap();
        let log = EventLog::read(&path).unwrap();
        match &log.events[0] {
            ObsEvent::Iteration { event, .. } => {
                assert!(event.best_energy.is_infinite());
            }
            other => panic!("expected iteration, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
