//! The [`Recorder`] sink trait and its zero-overhead default, [`NoopRecorder`].

/// One typed value attached to a span or structured event.
///
/// The variants cover everything the workspace publishes; keeping the set closed (no
/// strings, no nesting) means emitting a field never allocates and serializing one is
/// a single `format!` arm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, sizes, indices).
    U64(u64),
    /// A floating-point value (energies, seconds, rates).
    F64(f64),
    /// A flag.
    Bool(bool),
}

/// One iteration of an optimization loop, as published by the observed search
/// drivers.
///
/// This mirrors `wd_opt::IterationRecord` field for field (the conversion lives in
/// `wd_opt`, which depends on this crate), so a recorded stream of iteration events
/// carries enough information to reconstruct the optimizer's full trace — the
/// [`crate::JsonlExporter`] additionally persists the exact IEEE-754 bits of every
/// energy so the reconstruction is bit-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEvent {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Energy of the configuration proposed in this iteration.
    pub proposed_energy: f64,
    /// Energy of the configuration the optimizer holds after this iteration.
    pub current_energy: f64,
    /// Best energy seen so far.
    pub best_energy: f64,
    /// Temperature (or an analogous control parameter; 0 for methods without one).
    pub temperature: f64,
    /// Whether the proposal was accepted.
    pub accepted: bool,
}

/// A sink for metrics and trace events.
///
/// Implementations must be cheap and thread-safe: recorders are shared by reference
/// across rayon workers (shard tasks, batched evaluations) and called from hot loops.
/// Hot paths guard every emission with [`Recorder::enabled`], so the disabled
/// [`NoopRecorder`] costs one virtual call per would-be event and never constructs
/// the event payload.
///
/// All methods default to doing nothing, so a custom recorder only implements the
/// signals it cares about.
///
/// ```
/// use wd_obs::{FieldValue, Recorder, Registry};
///
/// let registry = Registry::new();
/// let recorder: &dyn Recorder = &registry;
/// recorder.counter("cache.hits", 3);
/// recorder.span("saml", 0.25, &[("iterations", FieldValue::U64(2000))]);
/// assert_eq!(registry.snapshot().counters["cache.hits"], 3);
/// ```
pub trait Recorder: Send + Sync {
    /// Whether this recorder consumes events at all.  Hot loops skip event
    /// construction entirely when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Add `delta` to the monotonic counter `name`.
    fn counter(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Set the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Record one observation of `value` in the histogram `name`.
    fn observe(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Record a completed span: a named unit of work that took `seconds`, with
    /// structured attributes.
    fn span(&self, name: &str, seconds: f64, fields: &[(&str, FieldValue)]) {
        let _ = (name, seconds, fields);
    }

    /// Record one optimizer iteration under `scope` (the method or loop name).
    fn iteration(&self, scope: &str, event: IterationEvent) {
        let _ = (scope, event);
    }

    /// Record a structured progress event of kind `kind` under `scope` (e.g. a shard
    /// start/completion in a campaign).
    fn event(&self, scope: &str, kind: &str, fields: &[(&str, FieldValue)]) {
        let _ = (scope, kind, fields);
    }
}

/// The default recorder: discards everything and reports itself disabled, so
/// instrumented code paths skip event construction.  Observed entry points delegate
/// here from their unobserved counterparts, which keeps the unobserved paths
/// bit-identical and (measured, see the `observability_overhead` bench) within noise
/// of the pre-instrumentation code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_accepts_everything() {
        let recorder = NoopRecorder;
        assert!(!Recorder::enabled(&recorder));
        recorder.counter("c", 1);
        recorder.gauge("g", 2.0);
        recorder.observe("h", 3.0);
        recorder.span("s", 0.1, &[("k", FieldValue::Bool(true))]);
        recorder.iteration(
            "scope",
            IterationEvent {
                iteration: 0,
                proposed_energy: 1.0,
                current_energy: 1.0,
                best_energy: 1.0,
                temperature: 0.0,
                accepted: true,
            },
        );
        recorder.event("scope", "kind", &[("k", FieldValue::U64(1))]);
    }

    #[test]
    fn noop_recorder_is_object_safe_and_shareable() {
        fn takes_dyn(r: &dyn Recorder) -> bool {
            r.enabled()
        }
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NoopRecorder>();
        assert!(!takes_dyn(&NoopRecorder));
    }
}
