//! The shared in-memory [`Registry`] and its serializable [`MetricsSnapshot`].

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::recorder::{FieldValue, IterationEvent, Recorder};

/// Aggregate of one histogram: count, sum and range of the observed values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSummary {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn new(value: f64) -> Self {
        HistogramSummary {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    /// Mean of the observed values (0 when nothing was observed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregate of all spans recorded under one name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanSummary {
    /// Number of completed spans.
    pub count: u64,
    /// Total seconds across all spans.
    pub total_seconds: f64,
    /// Shortest span in seconds.
    pub min_seconds: f64,
    /// Longest span in seconds.
    pub max_seconds: f64,
}

impl SpanSummary {
    fn record(&mut self, seconds: f64) {
        self.count += 1;
        self.total_seconds += seconds;
        self.min_seconds = self.min_seconds.min(seconds);
        self.max_seconds = self.max_seconds.max(seconds);
    }

    fn new(seconds: f64) -> Self {
        SpanSummary {
            count: 1,
            total_seconds: seconds,
            min_seconds: seconds,
            max_seconds: seconds,
        }
    }
}

/// Aggregate of the iteration events recorded under one scope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationSummary {
    /// Number of iterations recorded.
    pub count: u64,
    /// Number of accepted proposals.
    pub accepted: u64,
    /// Best energy reported by the most recent iteration.
    pub last_best_energy: f64,
}

impl IterationSummary {
    fn record(&mut self, event: IterationEvent) {
        self.count += 1;
        self.accepted += u64::from(event.accepted);
        self.last_best_energy = event.best_energy;
    }

    fn new(event: IterationEvent) -> Self {
        IterationSummary {
            count: 1,
            accepted: u64::from(event.accepted),
            last_best_energy: event.best_energy,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSummary>,
    spans: BTreeMap<String, SpanSummary>,
    iterations: BTreeMap<String, IterationSummary>,
    events: BTreeMap<String, u64>,
}

/// A thread-safe, in-memory metrics aggregator.
///
/// The registry is the standard "collect now, report at the end" recorder: share it
/// (by reference — it is `Sync`) with every observed entry point of a run, then call
/// [`Registry::snapshot`] and serialize the result with [`MetricsSnapshot::to_json`].
/// Per-iteration events are aggregated (count / accepted / last best), not stored —
/// full-fidelity event streams are the [`crate::JsonlExporter`]'s job.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
            spans: inner.spans.clone(),
            iterations: inner.iterations.clone(),
            events: inner.events.clone(),
        }
    }
}

impl Recorder for Registry {
    fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.histograms.get_mut(name) {
            Some(summary) => summary.record(value),
            None => {
                inner
                    .histograms
                    .insert(name.to_string(), HistogramSummary::new(value));
            }
        }
    }

    fn span(&self, name: &str, seconds: f64, fields: &[(&str, FieldValue)]) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.spans.get_mut(name) {
            Some(summary) => summary.record(seconds),
            None => {
                inner
                    .spans
                    .insert(name.to_string(), SpanSummary::new(seconds));
            }
        }
        // numeric span attributes double as gauges so one-shot spans (a method run's
        // evaluations, iterations, ...) show up in the snapshot without extra calls
        for (key, value) in fields {
            let gauge = format!("{name}.{key}");
            let value = match value {
                FieldValue::U64(v) => *v as f64,
                FieldValue::F64(v) => *v,
                FieldValue::Bool(v) => f64::from(u8::from(*v)),
            };
            inner.gauges.insert(gauge, value);
        }
    }

    fn iteration(&self, scope: &str, event: IterationEvent) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.iterations.get_mut(scope) {
            Some(summary) => summary.record(event),
            None => {
                inner
                    .iterations
                    .insert(scope.to_string(), IterationSummary::new(event));
            }
        }
    }

    fn event(&self, scope: &str, kind: &str, _fields: &[(&str, FieldValue)]) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.events.entry(format!("{scope}/{kind}")).or_insert(0) += 1;
    }
}

/// A point-in-time copy of a [`Registry`], serializable to JSON without any external
/// dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last written value).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Span summaries by name.
    pub spans: BTreeMap<String, SpanSummary>,
    /// Iteration summaries by scope.
    pub iterations: BTreeMap<String, IterationSummary>,
    /// Structured-event counts by `scope/kind`.
    pub events: BTreeMap<String, u64>,
}

/// Schema identifier stamped into serialized metrics snapshots.  `v2` pairs every
/// decimal `f64` with a `<name>_bits` sibling holding the exact IEEE-754 bit
/// pattern (the decimal is for human eyes; the bits are authoritative on replay).
pub const METRICS_SCHEMA_VERSION: &str = "wd-obs-metrics/v2";

impl MetricsSnapshot {
    /// Serialize the snapshot as a pretty-printed JSON report (hand-rolled — the
    /// workspace has no serde).  Keys are emitted in sorted order, so two snapshots
    /// of the same run serialize identically, and every `f64` carries a `_bits`
    /// hex sibling for exact round-trips.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{METRICS_SCHEMA_VERSION}\",\n"));

        out.push_str("  \"counters\": {");
        push_entries(&mut out, self.counters.iter(), |count| format!("{count}"));
        out.push_str("  },\n");

        out.push_str("  \"gauges\": {");
        push_entries(&mut out, self.gauges.iter(), |gauge| {
            let pair = json_f64_pair("value", *gauge);
            format!("{{{pair}}}")
        });
        out.push_str("  },\n");

        out.push_str("  \"histograms\": {");
        push_entries(&mut out, self.histograms.iter(), |h| {
            let count = h.count;
            let fields = [
                json_f64_pair("sum", h.sum),
                json_f64_pair("min", h.min),
                json_f64_pair("max", h.max),
                json_f64_pair("mean", h.mean()),
            ];
            format!("{{\"count\": {count}, {}}}", fields.join(", "))
        });
        out.push_str("  },\n");

        out.push_str("  \"spans\": {");
        push_entries(&mut out, self.spans.iter(), |s| {
            let count = s.count;
            let fields = [
                json_f64_pair("total_seconds", s.total_seconds),
                json_f64_pair("min_seconds", s.min_seconds),
                json_f64_pair("max_seconds", s.max_seconds),
            ];
            format!("{{\"count\": {count}, {}}}", fields.join(", "))
        });
        out.push_str("  },\n");

        out.push_str("  \"iterations\": {");
        push_entries(&mut out, self.iterations.iter(), |i| {
            let count = i.count;
            let accepted = i.accepted;
            let energy = json_f64_pair("last_best_energy", i.last_best_energy);
            format!("{{\"count\": {count}, \"accepted\": {accepted}, {energy}}}")
        });
        out.push_str("  },\n");

        out.push_str("  \"events\": {");
        push_entries(&mut out, self.events.iter(), |count| format!("{count}"));
        out.push_str("  }\n");

        out.push_str("}\n");
        out
    }
}

/// Format an `f64` as a JSON-safe token: Rust's shortest round-trip decimal, with
/// non-finite values quoted (JSON has no literal for them).  Callers pair it with
/// a `_bits` hex sibling via [`json_f64_pair`].
fn json_f64(value: f64) -> String {
    let decimal = value.to_string();
    if value.is_finite() {
        decimal
    } else {
        format!("\"{decimal}\"")
    }
}

/// Render `"name": <decimal>, "name_bits": "<hex>"` — the decimal for humans, the
/// exact bit pattern for replay.
fn json_f64_pair(name: &str, value: f64) -> String {
    format!(
        "\"{name}\": {decimal}, \"{name}_bits\": \"{value_bits:016x}\"",
        decimal = json_f64(value),
        value_bits = value.to_bits()
    )
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    render: impl Fn(&V) -> String,
) {
    let mut first = true;
    for (key, entry) in entries {
        if first {
            out.push('\n');
            first = false;
        } else {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    \"{}\": {}",
            crate::escape_json(key),
            render(entry)
        ));
    }
    if !first {
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(best: f64, accepted: bool) -> IterationEvent {
        IterationEvent {
            iteration: 0,
            proposed_energy: best,
            current_energy: best,
            best_energy: best,
            temperature: 1.0,
            accepted,
        }
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let registry = Registry::new();
        registry.counter("hits", 2);
        registry.counter("hits", 3);
        registry.gauge("temp", 1.5);
        registry.gauge("temp", 0.5);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["hits"], 5);
        assert_eq!(snapshot.gauges["temp"], 0.5);
    }

    #[test]
    fn histograms_and_spans_summarize() {
        let registry = Registry::new();
        for v in [1.0, 3.0, 2.0] {
            registry.observe("energy", v);
        }
        registry.span("run", 0.5, &[("iterations", FieldValue::U64(10))]);
        registry.span("run", 1.5, &[]);
        let snapshot = registry.snapshot();
        let h = snapshot.histograms["energy"];
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        let s = snapshot.spans["run"];
        assert_eq!(s.count, 2);
        assert!((s.total_seconds - 2.0).abs() < 1e-12);
        // span fields double as gauges
        assert_eq!(snapshot.gauges["run.iterations"], 10.0);
    }

    #[test]
    fn iterations_and_events_aggregate_per_scope() {
        let registry = Registry::new();
        registry.iteration("saml", event(5.0, true));
        registry.iteration("saml", event(4.0, false));
        registry.event("campaign", "shard_started", &[]);
        registry.event("campaign", "shard_started", &[]);
        registry.event("campaign", "merged", &[]);
        let snapshot = registry.snapshot();
        let i = snapshot.iterations["saml"];
        assert_eq!(i.count, 2);
        assert_eq!(i.accepted, 1);
        assert_eq!(i.last_best_energy, 4.0);
        assert_eq!(snapshot.events["campaign/shard_started"], 2);
        assert_eq!(snapshot.events["campaign/merged"], 1);
    }

    #[test]
    fn snapshot_serializes_to_deterministic_json() {
        let registry = Registry::new();
        registry.counter("b", 1);
        registry.counter("a", 2);
        registry.gauge("g", 0.25);
        registry.observe("h", 2.0);
        registry.span("s", 0.125, &[]);
        let a = registry.snapshot().to_json();
        let b = registry.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.contains(&format!("\"schema\": \"{METRICS_SCHEMA_VERSION}\"")));
        // sorted keys: "a" before "b"
        let pos_a = a.find("\"a\": 2").unwrap();
        let pos_b = a.find("\"b\": 1").unwrap();
        assert!(pos_a < pos_b);
        // every decimal f64 carries its exact bit pattern as a sibling field
        assert!(a.contains("\"g\": {\"value\": 0.25, \"value_bits\": \"3fd0000000000000\"}"));
        assert!(a.contains("\"min_seconds\": 0.125, \"min_seconds_bits\": \"3fc0000000000000\""));
    }

    #[test]
    fn non_finite_gauges_serialize_quoted() {
        let registry = Registry::new();
        registry.gauge("inf", f64::INFINITY);
        let json = registry.snapshot().to_json();
        assert!(
            json.contains("\"inf\": {\"value\": \"inf\", \"value_bits\": \"7ff0000000000000\"}")
        );
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let registry = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        registry.counter("n", 1);
                    }
                });
            }
        });
        assert_eq!(registry.snapshot().counters["n"], 400);
    }
}
