//! # wd_obs
//!
//! The workspace-wide observability layer for the reproduction of *Memeti & Pllana,
//! Combinatorial Optimization of Work Distribution on Heterogeneous Systems, ICPP
//! Workshops 2016*.
//!
//! The paper compares its methods by model invocations, evaluated configurations and
//! wall-clock; this crate gives those signals one home so every layer — cached
//! objectives, lazy prediction tables, annealing/GA loops, sharded campaigns, the
//! on-disk result store, and the platform simulator's execution breakdowns — reports
//! through a single [`Recorder`] trait instead of scattering point-in-time structs.
//!
//! * [`Recorder`] — the sink trait: counters, gauges, histogram observations,
//!   spans, per-iteration events and structured progress events.
//! * [`NoopRecorder`] — the zero-overhead default; hot loops guard emissions with
//!   [`Recorder::enabled`], so unobserved runs stay bit-identical and within noise
//!   of the pre-instrumentation code (asserted by the `observability_overhead`
//!   bench).
//! * [`Registry`] — thread-safe in-memory aggregation, snapshotted into a
//!   [`MetricsSnapshot`] and serialized with [`MetricsSnapshot::to_json`] (the
//!   `repro --metrics <path>` artifact).
//! * [`JsonlExporter`] — streams every event to disk as one flushed JSON line
//!   (the same durable append discipline as the dist store), with exact IEEE-754
//!   `*_bits` fields on every float.
//! * [`EventLog`] — replays an exporter file back into typed [`ObsEvent`]s; an
//!   optimizer's best-energy series is reconstructible from the file alone, bit for
//!   bit.
//!
//! Like the `crates/compat/*` shims, the crate is vendored and dependency-free so
//! the workspace keeps building offline.
//!
//! ## Example
//!
//! ```
//! use wd_obs::{IterationEvent, Recorder, Registry};
//!
//! let registry = Registry::new();
//! registry.counter("cache.misses", 2);
//! registry.iteration(
//!     "saml",
//!     IterationEvent {
//!         iteration: 0,
//!         proposed_energy: 1.5,
//!         current_energy: 1.5,
//!         best_energy: 1.5,
//!         temperature: 2.0,
//!         accepted: true,
//!     },
//! );
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.iterations["saml"].count, 1);
//! assert!(snapshot.to_json().contains("\"cache.misses\": 2"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exporter;
pub mod recorder;
pub mod registry;
pub mod replay;

pub use exporter::JsonlExporter;
pub use recorder::{FieldValue, IterationEvent, NoopRecorder, Recorder};
pub use registry::{
    HistogramSummary, IterationSummary, MetricsSnapshot, Registry, SpanSummary,
    METRICS_SCHEMA_VERSION,
};
pub use replay::{EventLog, ObsEvent};

/// Schema identifier stamped as the first line of every exporter file.
pub const EVENT_SCHEMA_VERSION: &str = "wd-obs-events/v1";

/// Escape a string for embedding in a JSON double-quoted literal (backslash and
/// quote only — names and scopes are ASCII identifiers in practice).
pub(crate) fn escape_json(raw: &str) -> String {
    if !raw.contains(['"', '\\']) {
        return raw.to_string();
    }
    let mut out = String::with_capacity(raw.len() + 2);
    for c in raw.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_json_handles_quotes_and_backslashes() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
    }
}
