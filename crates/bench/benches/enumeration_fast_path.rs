//! Benches for the zero-materialization enumeration + factorized prediction fast
//! path, in two groups:
//!
//! * `tabulated_vs_direct` — EML on a 2-accelerator grid through the direct
//!   [`PredictionEvaluator`] versus the factorized
//!   [`hetero_autotune::TabulatedPredictionEvaluator`].  An instrumented objective
//!   (`wd_bench::counting_prediction_evaluator`, which counts every boosted-tree
//!   model invocation) proves the fast path performs ≥ 5× fewer model queries while
//!   returning a bit-identical best configuration and energy;
//! * `lazy_vs_materialized` — streaming indexed enumeration versus the classic
//!   materialise-the-whole-`Vec` path, on the paper's Table-I grid and on a
//!   3-accelerator space whose grid would be expensive to materialise repeatedly.
//!
//! The printed summary doubles as the acceptance evidence; the criterion groups
//! track the wall-clock trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use dna_analysis::Genome;
use hetero_autotune::{ConfigurationSpace, DeviceAxis, TrainingCampaign};
use hetero_platform::{Affinity, HeterogeneousPlatform};
use wd_bench::{measure_fast_path, two_accel_bench_grid};
use wd_ml::BoostingParams;
use wd_opt::{MaterializedOnly, ParallelEnumeration};

/// A 3-accelerator space for the streaming comparison (the kind of grid the
/// materialising path struggles with).
fn three_accel_space() -> ConfigurationSpace {
    ConfigurationSpace::multi_accelerator(
        vec![12, 24, 48],
        vec![Affinity::Scatter],
        vec![
            DeviceAxis::new(vec![60, 240], vec![Affinity::Balanced]),
            DeviceAxis::new(vec![112, 448], vec![Affinity::Balanced]),
            DeviceAxis::new(vec![64, 128], vec![Affinity::Balanced]),
        ],
        200,
    )
}

/// One-shot evidence for the acceptance criteria: model-invocation counts and
/// wall-clock of direct vs. tabulated EML, with a bit-identity check.  The
/// measurement logic is shared with the `repro bench-enumeration` artifact
/// (`wd_bench::measure_fast_path`), so the criterion trajectory and the CI JSON
/// always describe the same experiment.
fn print_fast_path_summary() {
    let platform = HeterogeneousPlatform::emil_with_gpu();
    let models = TrainingCampaign::reduced_for(&platform).run(&platform, BoostingParams::fast());
    let grid = two_accel_bench_grid();
    let m = measure_fast_path(&models, Genome::Human.workload(), &grid);

    println!(
        "EML on the 2-accelerator grid ({} configurations):",
        m.grid_configs
    );
    println!(
        "  direct prediction enumeration  {:>12.2?}  ({} model invocations)",
        m.direct, m.model_queries_direct
    );
    println!(
        "  factorized: build tables       {:>12.2?}  ({} model invocations)",
        m.build, m.model_queries_tabulated
    );
    println!(
        "  factorized: scan the grid      {:>12.2?}  (0 model invocations)",
        m.scan
    );
    println!(
        "  speedup {:.1}x wall-clock, {:.1}x fewer model invocations",
        m.direct.as_secs_f64() / m.tabulated_total().as_secs_f64(),
        m.query_reduction(),
    );
    m.assert_fast_path_won();
}

fn bench_tabulated_vs_direct(c: &mut Criterion) {
    print_fast_path_summary();

    let platform = HeterogeneousPlatform::emil_with_gpu();
    let models = TrainingCampaign::reduced_for(&platform).run(&platform, BoostingParams::fast());
    let workload = Genome::Human.workload();
    let grid = two_accel_bench_grid();
    let prediction = models.prediction_evaluator(workload);

    let mut group = c.benchmark_group("tabulated_vs_direct");
    group.sample_size(10);
    group.bench_function("eml_direct", |b| {
        b.iter(|| ParallelEnumeration::new().run_indexed(&grid, &prediction));
    });
    group.bench_function("eml_tabulated_total", |b| {
        b.iter(|| {
            let tabulated = prediction.tabulated(&grid);
            ParallelEnumeration::new().run_indexed(&grid, &tabulated)
        });
    });
    group.bench_function("eml_tabulated_scan_only", |b| {
        let tabulated = prediction.tabulated(&grid);
        b.iter(|| ParallelEnumeration::new().run_indexed(&grid, &tabulated));
    });
    group.finish();
}

fn bench_lazy_vs_materialized(c: &mut Criterion) {
    // a cheap objective keeps the measurement about enumeration overhead
    // (allocation + construction), not about the evaluator
    let objective = |config: &hetero_autotune::SystemConfiguration| {
        let split = config.split();
        f64::from(config.host_threads) * 0.25 + f64::from(split[0].abs_diff(600)) * 0.001
    };

    let table1 = ConfigurationSpace::enumeration_grid();
    let three = three_accel_space();
    {
        // the streaming path must visit the exact same winner
        let lazy = ParallelEnumeration::new().run_indexed(&table1, &objective);
        let materialized =
            ParallelEnumeration::new().run_indexed(&MaterializedOnly::new(&table1), &objective);
        assert_eq!(lazy.best_index, materialized.best_index);
        assert_eq!(
            lazy.outcome.best_energy.to_bits(),
            materialized.outcome.best_energy.to_bits()
        );
    }

    let mut group = c.benchmark_group("lazy_vs_materialized");
    group.sample_size(10);
    group.bench_function("table1_grid_lazy", |b| {
        b.iter(|| ParallelEnumeration::new().run_indexed(&table1, &objective));
    });
    group.bench_function("table1_grid_materialized", |b| {
        let hidden = MaterializedOnly::new(&table1);
        b.iter(|| ParallelEnumeration::new().run_indexed(&hidden, &objective));
    });
    group.bench_function("three_accel_lazy", |b| {
        b.iter(|| ParallelEnumeration::new().run_indexed(&three, &objective));
    });
    group.bench_function("three_accel_materialized", |b| {
        let hidden = MaterializedOnly::new(&three);
        b.iter(|| ParallelEnumeration::new().run_indexed(&hidden, &objective));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tabulated_vs_direct,
    bench_lazy_vs_materialized
);
criterion_main!(benches);
