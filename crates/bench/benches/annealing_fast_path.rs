//! Benches for the incremental annealing fast path (lazy per-device tables + O(1)
//! delta energy updates), one group:
//!
//! * `annealing_fast_path` — SAML walks on the paper's Table-I space and on the
//!   2-accelerator bench space, three ways each: the classic walk (full
//!   re-evaluation of the direct prediction models on every proposal), the
//!   incremental walk over *eagerly* built tables (the enumeration-style build that
//!   only pays off on huge budgets), and the incremental walk over *lazy*
//!   fill-on-first-touch tables (`run_delta` + `LazyTabulatedPredictionEvaluator` —
//!   the path `MethodRunner` wires for SAML).
//!
//! The printed summary doubles as the acceptance evidence: model invocations per
//! accepted move, the ≥ 5× lazy-vs-direct reduction (asserted), and the bit-identity
//! of all three trajectories.  The measurement logic is shared with the
//! `repro bench-annealing` artifact (`wd_bench::measure_annealing_fast_path`), so
//! the criterion trajectory and the CI JSON always describe the same experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use dna_analysis::Genome;
use hetero_autotune::{ConfigurationSpace, TrainingCampaign};
use hetero_platform::HeterogeneousPlatform;
use wd_bench::{measure_annealing_fast_path, two_accel_bench_grid};
use wd_ml::BoostingParams;
use wd_opt::SimulatedAnnealing;

const ITERATIONS: usize = 2000;
const SEED: u64 = 29;

fn print_summary(label: &str, m: &wd_bench::AnnealingMeasurement) {
    println!(
        "SAML on the {label} ({} configurations, {} iterations, {} accepted moves):",
        m.space_configs, m.iterations, m.accepted_moves
    );
    println!(
        "  direct walk (full re-evaluation)  {:>12.2?}  ({} model invocations, {:.2}/accepted move)",
        m.direct,
        m.model_queries_direct,
        m.queries_per_accepted_direct()
    );
    println!(
        "  eager tables: build + delta walk  {:>12.2?}  ({} model invocations, all up front)",
        m.eager_total(),
        m.model_queries_eager
    );
    println!(
        "  lazy tables: delta walk           {:>12.2?}  ({} model invocations, {:.2}/accepted move)",
        m.lazy,
        m.model_queries_lazy,
        m.queries_per_accepted_lazy()
    );
    println!(
        "  {:.1}x fewer model invocations per accepted move (lazy vs direct), trajectories identical: {}",
        m.query_reduction(),
        m.identical_trajectories
    );
}

fn bench_annealing_fast_path(c: &mut Criterion) {
    // 2-accelerator space over the Emil-with-GPU platform — the acceptance space
    let gpu_platform = HeterogeneousPlatform::emil_with_gpu();
    let gpu_models =
        TrainingCampaign::reduced_for(&gpu_platform).run(&gpu_platform, BoostingParams::fast());
    let two_accel = two_accel_bench_grid();
    let m = measure_annealing_fast_path(
        &gpu_models,
        Genome::Human.workload(),
        &two_accel,
        ITERATIONS,
        SEED,
    );
    print_summary("2-accelerator bench space", &m);
    m.assert_fast_path_won();

    // the paper's Table-I space (host + Xeon Phi)
    let platform = HeterogeneousPlatform::emil();
    let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
    let table1 = ConfigurationSpace::paper();
    let m1 =
        measure_annealing_fast_path(&models, Genome::Human.workload(), &table1, ITERATIONS, SEED);
    print_summary("Table-I space", &m1);
    // Table-I's 1 %-granularity split axis makes the walk visit ~1000 distinct
    // triples, so the query reduction is real but smaller (and eager tabulation is
    // an outright loss — 4 800 up-front queries); only the trajectory identity is
    // asserted here.  The ≥ 5× acceptance bar applies to the 2-accel space above.
    assert!(
        m1.identical_trajectories,
        "incremental SAML diverged from the direct walk on the Table-I space"
    );
    assert!(
        m1.model_queries_lazy < m1.model_queries_direct,
        "lazy SAML must not walk the models more often than the direct path"
    );

    let sa = SimulatedAnnealing::with_budget_and_range(ITERATIONS, 2.0, 0.02, SEED);
    let workload = Genome::Human.workload();

    let mut group = c.benchmark_group("annealing_fast_path");
    group.sample_size(10);
    group.bench_function("table1_saml_direct", |b| {
        let prediction = models.prediction_evaluator(workload.clone());
        b.iter(|| sa.run(&table1, &prediction));
    });
    group.bench_function("table1_saml_eager_tabulated", |b| {
        let prediction = models.prediction_evaluator(workload.clone());
        b.iter(|| {
            let tables = prediction.tabulated(&table1);
            sa.run_delta(&table1, &tables)
        });
    });
    group.bench_function("table1_saml_lazy_delta", |b| {
        let prediction = models.prediction_evaluator(workload.clone());
        b.iter(|| {
            let tables = prediction.lazy_tabulated();
            sa.run_delta(&table1, &tables)
        });
    });
    group.bench_function("two_accel_saml_direct", |b| {
        let prediction = gpu_models.prediction_evaluator(workload.clone());
        b.iter(|| sa.run(&two_accel, &prediction));
    });
    group.bench_function("two_accel_saml_eager_tabulated", |b| {
        let prediction = gpu_models.prediction_evaluator(workload.clone());
        b.iter(|| {
            let tables = prediction.tabulated(&two_accel);
            sa.run_delta(&two_accel, &tables)
        });
    });
    group.bench_function("two_accel_saml_lazy_delta", |b| {
        let prediction = gpu_models.prediction_evaluator(workload.clone());
        b.iter(|| {
            let tables = prediction.lazy_tabulated();
            sa.run_delta(&two_accel, &tables)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_annealing_fast_path);
criterion_main!(benches);
