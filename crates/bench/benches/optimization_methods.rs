//! Benches for the four optimization methods (paper Fig. 9, Tables VI–IX).
//!
//! Measures the wall-clock cost of EM/EML enumeration over the 19 926-point grid and of
//! SAM/SAML annealing runs at the paper's iteration budgets, and prints the regenerated
//! Table VI (percent difference to the EM optimum) once per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dna_analysis::Genome;
use hetero_autotune::{MethodKind, MethodRunner, TrainingCampaign};
use hetero_platform::HeterogeneousPlatform;
use wd_bench::{render_budget_table, PaperStudy, Scale};
use wd_ml::BoostingParams;

fn print_convergence_once() {
    let study = PaperStudy::run(Scale::Paper, 11);
    println!(
        "{}",
        render_budget_table(
            "Table VI (regenerated): percent difference [%] of SAML vs. the EM optimum",
            &study.convergence.budgets,
            &study.convergence.percent_difference_rows(),
        )
    );
}

fn bench_methods(c: &mut Criterion) {
    print_convergence_once();

    let platform = HeterogeneousPlatform::emil();
    let workload = Genome::Human.workload();
    let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
    let runner = MethodRunner::new(&platform, &workload, Some(&models), 3);

    let mut group = c.benchmark_group("optimization_methods");
    group.sample_size(10);

    group.bench_function("EM_full_grid_19926", |b| {
        b.iter(|| runner.run(MethodKind::Em, 0).unwrap());
    });
    group.bench_function("EML_full_grid_19926", |b| {
        b.iter(|| runner.run(MethodKind::Eml, 0).unwrap());
    });
    for budget in [250usize, 1000, 2000] {
        group.bench_with_input(BenchmarkId::new("SAM", budget), &budget, |b, &budget| {
            b.iter(|| runner.run(MethodKind::Sam, budget).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("SAML", budget), &budget, |b, &budget| {
            b.iter(|| runner.run(MethodKind::Saml, budget).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
