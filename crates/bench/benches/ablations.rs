//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * cooling schedule of the annealer (geometric — the paper's choice — vs. linear vs.
//!   logarithmic),
//! * choice of meta-heuristic (simulated annealing vs. hill climbing, tabu search,
//!   genetic algorithm and random search at an equal evaluation budget),
//! * choice of regression model (boosted trees — the paper's choice — vs. linear and
//!   Poisson regression).
//!
//! Each group prints a one-line quality summary (how close each variant gets to the EM
//! optimum / how accurate each model is) before measuring runtime, so the bench output
//! doubles as the ablation table.

use criterion::{criterion_group, criterion_main, Criterion};
use dna_analysis::Genome;
use hetero_autotune::experiments::workload_mix;
use hetero_autotune::features::host_feature_names;
use hetero_autotune::{ConfigurationSpace, MeasurementEvaluator, TrainingCampaign};
use hetero_platform::HeterogeneousPlatform;
use wd_ml::{
    metrics, BoostedTreesRegressor, BoostingParams, Dataset, LinearRegressor, PoissonRegressor,
    Regressor,
};
use wd_opt::{
    CoolingSchedule, Enumeration, GeneticAlgorithm, HillClimbing, RandomSearch, SimulatedAnnealing,
    TabuSearch,
};

const BUDGET: usize = 1000;

/// The evaluator *is* the objective: `MeasurementEvaluator` implements
/// `wd_opt::Objective` directly, so the heuristics consume it without adapters.
fn setup(genome: Genome) -> MeasurementEvaluator {
    MeasurementEvaluator::new(HeterogeneousPlatform::emil(), genome.workload())
}

fn ablation_cooling_schedules(c: &mut Criterion) {
    let objective = setup(Genome::Human);
    let space = ConfigurationSpace::paper();

    // quality summary
    let em = Enumeration::parallel().run(&ConfigurationSpace::enumeration_grid(), &objective);
    for (name, schedule) in [
        (
            "geometric (paper)",
            CoolingSchedule::geometric_for_budget(BUDGET, 2.0, 0.02),
        ),
        (
            "linear",
            CoolingSchedule::Linear {
                decrement: (2.0 - 0.02) / BUDGET as f64,
            },
        ),
        ("logarithmic", CoolingSchedule::Logarithmic),
    ] {
        let mut sa = SimulatedAnnealing::with_budget_and_range(BUDGET, 2.0, 0.02, 9);
        sa = sa.with_schedule(schedule);
        sa.max_iterations = BUDGET;
        let outcome = sa.run(&space, &objective);
        println!(
            "cooling {name:<18}: best {:.3} s ({:+.1} % vs EM optimum, {} evaluations)",
            outcome.best_energy,
            100.0 * (outcome.best_energy - em.best_energy) / em.best_energy,
            outcome.evaluations
        );
    }

    let mut group = c.benchmark_group("ablation_cooling");
    group.sample_size(10);
    group.bench_function("geometric", |b| {
        b.iter(|| {
            SimulatedAnnealing::with_budget_and_range(BUDGET, 2.0, 0.02, 9).run(&space, &objective)
        });
    });
    group.bench_function("logarithmic", |b| {
        let mut sa = SimulatedAnnealing::with_budget_and_range(BUDGET, 2.0, 0.02, 9)
            .with_schedule(CoolingSchedule::Logarithmic);
        sa.max_iterations = BUDGET;
        b.iter(|| sa.run(&space, &objective));
    });
    group.finish();
}

fn ablation_heuristics(c: &mut Criterion) {
    let objective = setup(Genome::Mouse);
    let space = ConfigurationSpace::paper();
    let em = Enumeration::parallel().run(&ConfigurationSpace::enumeration_grid(), &objective);

    let sa = SimulatedAnnealing::with_budget_and_range(BUDGET, 2.0, 0.02, 5);
    let hill = HillClimbing::with_budget(BUDGET, 5);
    let tabu = TabuSearch::with_budget(BUDGET / 8, 5); // 8 candidates per iteration
    let genetic = GeneticAlgorithm::with_budget(BUDGET, 5);
    let random = RandomSearch::new(BUDGET, 5);

    let results = [
        ("simulated annealing (paper)", sa.run(&space, &objective)),
        ("hill climbing", hill.run(&space, &objective)),
        ("tabu search", tabu.run(&space, &objective)),
        ("genetic algorithm", genetic.run(&space, &objective)),
        ("random search", random.run(&space, &objective)),
    ];
    for (name, outcome) in &results {
        println!(
            "heuristic {name:<28}: best {:.3} s ({:+.1} % vs EM, {} evaluations)",
            outcome.best_energy,
            100.0 * (outcome.best_energy - em.best_energy) / em.best_energy,
            outcome.evaluations
        );
    }

    let mut group = c.benchmark_group("ablation_heuristics");
    group.sample_size(10);
    group.bench_function("simulated_annealing", |b| {
        b.iter(|| sa.run(&space, &objective))
    });
    group.bench_function("hill_climbing", |b| b.iter(|| hill.run(&space, &objective)));
    group.bench_function("random_search", |b| {
        b.iter(|| random.run(&space, &objective))
    });
    group.finish();
}

fn ablation_regressors(c: &mut Criterion) {
    // Compare the three candidate models the paper mentions on the host training data.
    let platform = HeterogeneousPlatform::emil();
    let campaign = TrainingCampaign::reduced();
    let models = campaign.run(&platform, BoostingParams::fast());

    // rebuild a dataset from the accuracy rows (features reconstructed from metadata)
    let mut data = Dataset::new(host_feature_names());
    for row in &models.host_accuracy.rows {
        data.push(
            hetero_autotune::features::host_features(
                row.threads,
                row.affinity,
                (row.input_megabytes * 1e6) as u64,
            ),
            row.measured,
        )
        .unwrap();
    }
    let (train, test) = data.train_test_split(0.5, 3);

    let mut summaries = Vec::new();
    let mut boosted = BoostedTreesRegressor::new(BoostingParams::fast());
    boosted.fit(&train).unwrap();
    summaries.push(("boosted trees (paper)", &boosted as &dyn Regressor));
    let mut linear = LinearRegressor::new();
    linear.fit(&train).unwrap();
    summaries.push(("linear regression", &linear as &dyn Regressor));
    let mut poisson = PoissonRegressor::new();
    poisson.fit(&train).unwrap();
    summaries.push(("poisson regression", &poisson as &dyn Regressor));

    for (name, model) in &summaries {
        let predictions = model.predict_batch(test.feature_matrix(), test.n_features());
        println!(
            "regressor {name:<24}: MAPE {:.2} %, RMSE {:.3} s",
            metrics::mean_absolute_percent_error(test.targets(), &predictions),
            metrics::root_mean_squared_error(test.targets(), &predictions),
        );
    }

    let mut group = c.benchmark_group("ablation_regressor_fit");
    group.sample_size(10);
    group.bench_function("boosted_trees", |b| {
        b.iter(|| {
            let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
            model.fit(&train).unwrap();
            model
        });
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            let mut model = LinearRegressor::new();
            model.fit(&train).unwrap();
            model
        });
    });
    group.bench_function("poisson", |b| {
        b.iter(|| {
            let mut model = PoissonRegressor::new();
            model.fit(&train).unwrap();
            model
        });
    });
    group.finish();
}

fn ablation_workload_kinds(c: &mut Criterion) {
    // ROADMAP "More workloads": the DNA scan is no longer the only profile through the
    // pipeline — compare the optimum and the SA quality across the three
    // WorkloadProfile kinds at the same input size.
    let platform = HeterogeneousPlatform::emil();
    let workloads = workload_mix(2_000_000_000);

    let mut evaluated = Vec::new();
    for workload in &workloads {
        let objective = MeasurementEvaluator::new(platform.clone(), workload.clone());
        let em = Enumeration::parallel().run(&ConfigurationSpace::enumeration_grid(), &objective);
        let sa = SimulatedAnnealing::with_budget_and_range(BUDGET, 2.0, 0.02, 11)
            .run(&ConfigurationSpace::paper(), &objective);
        println!(
            "workload {:<14}: EM optimum {:.3} s at {:.0} % host | SA({BUDGET}) {:.3} s ({:+.1} % vs EM)",
            workload.name,
            em.best_energy,
            em.best_config.host_percent(),
            sa.best_energy,
            100.0 * (sa.best_energy - em.best_energy) / em.best_energy,
        );
        evaluated.push((workload.name.clone(), objective));
    }

    let mut group = c.benchmark_group("ablation_workload_kinds");
    group.sample_size(10);
    let space = ConfigurationSpace::paper();
    for (name, objective) in &evaluated {
        group.bench_function(name.as_str(), |b| {
            b.iter(|| {
                SimulatedAnnealing::with_budget_and_range(BUDGET, 2.0, 0.02, 11)
                    .run(&space, objective)
            });
        });
    }
    group.finish();
}

fn ablation_noise(c: &mut Criterion) {
    // How much does measurement noise change the evaluated energy surface?
    let workload = Genome::Dog.workload();
    let noisy = MeasurementEvaluator::new(HeterogeneousPlatform::emil(), workload.clone());
    let clean = MeasurementEvaluator::new(HeterogeneousPlatform::emil().without_noise(), workload);
    let config = hetero_autotune::SystemConfiguration::with_host_percent(
        48,
        hetero_platform::Affinity::Scatter,
        240,
        hetero_platform::Affinity::Balanced,
        60,
    );
    println!(
        "noise ablation: noisy energy {:.4} s vs noiseless {:.4} s",
        noisy.energy(&config),
        clean.energy(&config)
    );
    let mut group = c.benchmark_group("ablation_noise");
    group.bench_function("noisy_evaluation", |b| b.iter(|| noisy.energy(&config)));
    group.bench_function("noiseless_evaluation", |b| b.iter(|| clean.energy(&config)));
    group.finish();
}

fn ablation_accelerator_count(c: &mut Criterion) {
    // ROADMAP "Multi-accelerator configurations": how much does a second accelerator
    // buy, and what does N-way enumeration cost?  Same workload, same method pipeline,
    // host+Phi vs host+Phi+GPU.
    use hetero_autotune::DeviceAxis;
    use hetero_platform::Affinity;

    let workload = Genome::Human.workload();
    let one = HeterogeneousPlatform::emil().without_noise();
    let two = HeterogeneousPlatform::emil_with_gpu().without_noise();

    let grid_one = ConfigurationSpace::two_way(
        vec![12, 24, 48],
        vec![Affinity::Scatter],
        vec![60, 120, 240],
        vec![Affinity::Balanced],
        (0..=10).map(|p| p * 100).collect(),
    );
    let grid_two = ConfigurationSpace::multi_accelerator(
        vec![12, 24, 48],
        vec![Affinity::Scatter],
        vec![
            DeviceAxis::new(vec![60, 120, 240], vec![Affinity::Balanced]),
            DeviceAxis::new(vec![112, 224, 448], vec![Affinity::Balanced]),
        ],
        100,
    );

    let objective_one = MeasurementEvaluator::new(one, workload.clone());
    let objective_two = MeasurementEvaluator::new(two, workload);
    let em_one = Enumeration::parallel().run(&grid_one, &objective_one);
    let em_two = Enumeration::parallel().run(&grid_two, &objective_two);
    println!(
        "accelerators 1: EM optimum {:.3} s over {} configs | accelerators 2: {:.3} s over {} configs ({:+.1} % faster)",
        em_one.best_energy,
        grid_one.total_configurations(),
        em_two.best_energy,
        grid_two.total_configurations(),
        100.0 * (em_one.best_energy - em_two.best_energy) / em_one.best_energy,
    );

    let mut group = c.benchmark_group("ablation_accelerator_count");
    group.sample_size(10);
    group.bench_function("em_host_phi", |b| {
        b.iter(|| Enumeration::parallel().run(&grid_one, &objective_one))
    });
    group.bench_function("em_host_phi_gpu", |b| {
        b.iter(|| Enumeration::parallel().run(&grid_two, &objective_two))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_cooling_schedules,
    ablation_heuristics,
    ablation_regressors,
    ablation_workload_kinds,
    ablation_noise,
    ablation_accelerator_count
);
criterion_main!(benches);
