//! Benches for the unified evaluation layer: sequential vs. batched vs. cached
//! enumeration of the paper's configuration spaces.
//!
//! Prints a summary table first (total wall-clock per strategy on the Table-I
//! enumeration grid plus the cache counters), so the bench output doubles as the
//! evidence that the batched/cached path beats the naive sequential scan:
//!
//! * `ParallelEnumeration` reaches the simulator's `execute_many` in bulk batches;
//! * a warm `CachedObjective` answers the whole grid from memory;
//! * under simulated annealing the cache absorbs every revisited configuration.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dna_analysis::Genome;
use hetero_autotune::{ConfigurationSpace, MeasurementEvaluator};
use hetero_platform::HeterogeneousPlatform;
use wd_opt::{
    CachedObjective, Enumeration, Objective, ParallelEnumeration, SearchSpace, SimulatedAnnealing,
};

fn evaluator() -> MeasurementEvaluator {
    MeasurementEvaluator::new(HeterogeneousPlatform::emil(), Genome::Human.workload())
}

/// One-shot comparison on the full 19 926-configuration enumeration grid.
fn print_grid_summary() {
    let evaluator = evaluator();
    let grid = ConfigurationSpace::enumeration_grid();

    let start = Instant::now();
    let sequential = Enumeration::sequential().run(&grid, &evaluator);
    let t_sequential = start.elapsed();

    let start = Instant::now();
    let batched = ParallelEnumeration::new().run(&grid, &evaluator);
    let t_batched = start.elapsed();

    let cached = CachedObjective::new(&evaluator);
    let start = Instant::now();
    let cold = ParallelEnumeration::new().run(&grid, &cached);
    let t_cold = start.elapsed();
    let start = Instant::now();
    let warm = ParallelEnumeration::new().run(&grid, &cached);
    let t_warm = start.elapsed();

    assert_eq!(sequential.best_config, batched.best_config);
    assert_eq!(sequential.best_config, cold.best_config);
    assert_eq!(cold.best_config, warm.best_config);

    println!(
        "evaluation layer on the Table-I enumeration grid ({} configurations):",
        sequential.evaluations
    );
    println!("  sequential enumeration        {t_sequential:>12.2?}");
    println!("  batched parallel enumeration  {t_batched:>12.2?}");
    println!(
        "  batched + cache (cold)        {t_cold:>12.2?}  ({} misses)",
        cached.stats().misses
    );
    println!(
        "  batched + cache (warm)        {t_warm:>12.2?}  ({} hits)",
        cached.stats().hits
    );
    assert!(
        t_warm < t_sequential,
        "a warm cache ({t_warm:?}) must beat the sequential scan ({t_sequential:?})"
    );

    // annealing behind the cache: revisits are free
    let sa_cache = CachedObjective::new(&evaluator);
    let outcome = SimulatedAnnealing::with_budget_and_range(2000, 2.0, 0.02, 7)
        .run(&ConfigurationSpace::paper(), &sa_cache);
    let stats = sa_cache.stats();
    println!(
        "  SA(2000) behind the cache: {} requests -> {} experiments ({} hits, {:.1} % hit rate)",
        outcome.evaluations,
        stats.misses,
        stats.hits,
        100.0 * stats.hit_rate(),
    );
}

fn bench_enumeration_paths(c: &mut Criterion) {
    print_grid_summary();

    let evaluator = evaluator();
    // the tiny grid keeps per-sample time reasonable for the timed loop
    let grid = ConfigurationSpace::tiny();

    let mut group = c.benchmark_group("evaluation_layer");
    group.sample_size(20);
    group.bench_function("enumeration_sequential", |b| {
        b.iter(|| Enumeration::sequential().run(&grid, &evaluator));
    });
    group.bench_function("enumeration_batched_parallel", |b| {
        b.iter(|| ParallelEnumeration::new().run(&grid, &evaluator));
    });
    group.bench_function("enumeration_batched_warm_cache", |b| {
        let cached = CachedObjective::new(&evaluator);
        let _ = ParallelEnumeration::new().run(&grid, &cached);
        b.iter(|| ParallelEnumeration::new().run(&grid, &cached));
    });
    group.bench_function("batch_evaluation_512", |b| {
        let configs = grid.enumerate().unwrap();
        let batch = &configs[..configs.len().min(512)];
        b.iter(|| evaluator.evaluate_batch(batch));
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration_paths);
criterion_main!(benches);
