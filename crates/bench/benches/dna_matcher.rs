//! Benches for the DNA sequence analysis application itself: DFA compilation and
//! sequential vs. parallel scanning throughput.
//!
//! The paper's workload is a finite-automata scan over gigabytes of DNA; these benches
//! measure our real (non-simulated) implementation on scaled-down synthetic genomes so
//! the thread-scaling behaviour that motivates the work-distribution problem is
//! observable on the build machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dna_analysis::{DfaMatcher, Genome, MotifSet, ParallelScanner};

fn bench_compile(c: &mut Criterion) {
    let motifs = MotifSet::reference();
    c.bench_function("dfa_compile_reference_motifs", |b| {
        b.iter(|| DfaMatcher::compile(&motifs));
    });
}

fn bench_scan(c: &mut Criterion) {
    let matcher = DfaMatcher::compile(&MotifSet::reference());
    // ~32 MB synthetic slice of the human genome (scale 1:100)
    let sequence = Genome::Human.synthesize(100);
    let bytes = sequence.bases();

    let mut group = c.benchmark_group("dna_scan");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| matcher.count_matches(bytes));
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                let scanner = ParallelScanner::new(threads);
                b.iter(|| scanner.count_matches(&matcher, bytes));
            },
        );
    }
    group.finish();
}

fn bench_split_scan(c: &mut Criterion) {
    // the host/device split semantics used by the work-distribution examples
    let matcher = DfaMatcher::compile(&MotifSet::reference());
    let sequence = Genome::Cat.synthesize(200);
    let bytes = sequence.bases();
    let scanner = ParallelScanner::new(4);

    let mut group = c.benchmark_group("dna_split_scan");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.sample_size(10);
    for host_percent in [100u32, 70, 50, 0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(host_percent),
            &host_percent,
            |b, &host_percent| {
                b.iter(|| {
                    scanner.count_matches_split(&matcher, bytes, host_percent as f64 / 100.0)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_scan, bench_split_scan);
criterion_main!(benches);
