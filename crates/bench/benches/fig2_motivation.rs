//! Bench for the motivational experiment (paper Fig. 2a–c).
//!
//! Measures how long the simulator takes to evaluate the eleven work-distribution
//! ratios of each sub-figure and, once per run, prints the regenerated series so the
//! bench doubles as a figure generator (`cargo bench -p wd-bench --bench fig2_motivation`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_autotune::experiments::motivation_experiment;
use hetero_platform::HeterogeneousPlatform;

fn print_series_once(platform: &HeterogeneousPlatform) {
    for (name, megabytes, threads) in [
        ("fig2a", 190u64, 48u32),
        ("fig2b", 3250, 48),
        ("fig2c", 3250, 4),
    ] {
        let points = motivation_experiment(platform, megabytes, threads);
        let best = points
            .iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .expect("eleven points");
        let series: Vec<String> = points
            .iter()
            .map(|p| format!("{}={:.2}", p.label, p.normalized))
            .collect();
        println!(
            "{name} ({megabytes} MB, {threads} threads): best={} | {}",
            best.label,
            series.join(" ")
        );
    }
}

fn bench_motivation(c: &mut Criterion) {
    let platform = HeterogeneousPlatform::emil();
    print_series_once(&platform);

    let mut group = c.benchmark_group("fig2_motivation");
    for (name, megabytes, threads) in [
        ("fig2a_190MB_48thr", 190u64, 48u32),
        ("fig2b_3250MB_48thr", 3250, 48),
        ("fig2c_3250MB_4thr", 3250, 4),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(megabytes, threads),
            |b, &(megabytes, threads)| {
                b.iter(|| motivation_experiment(&platform, megabytes, threads));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_motivation);
criterion_main!(benches);
