//! Benches for the performance-prediction pipeline (paper Figs. 5–8, Tables IV–V).
//!
//! Measures the cost of (a) generating the training data on the simulator, (b) fitting
//! the boosted-tree models and (c) predicting one configuration — the quantity that
//! makes EML/SAML cheap compared to measurement-based evaluation.  Also prints the
//! regenerated Table IV/V accuracy summary once per run.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero_autotune::features::host_features;
use hetero_autotune::{MeasurementEvaluator, SystemConfiguration, TrainingCampaign};
use hetero_platform::{Affinity, HeterogeneousPlatform};
use wd_bench::{PaperStudy, Scale};
use wd_ml::{BoostingParams, Regressor};

fn print_accuracy_once() {
    let (_, models) = PaperStudy::run_training_only(Scale::Paper, 7);
    println!(
        "host  model: mean absolute error {:.3} s, mean percent error {:.2} % ({} experiments)",
        models.host_accuracy.mean_absolute_error(),
        models.host_accuracy.mean_percent_error(),
        models.host_experiments,
    );
    println!(
        "device model: mean absolute error {:.3} s, mean percent error {:.2} % ({} experiments)",
        models.device_accuracy().mean_absolute_error(),
        models.device_accuracy().mean_percent_error(),
        models.device_experiments,
    );
}

fn bench_prediction(c: &mut Criterion) {
    print_accuracy_once();

    let platform = HeterogeneousPlatform::emil();
    let campaign = TrainingCampaign::reduced();

    c.bench_function("training_campaign_reduced", |b| {
        b.iter(|| campaign.run(&platform, BoostingParams::fast()));
    });

    let models = campaign.run(&platform, BoostingParams::fast());
    let features = host_features(48, Affinity::Scatter, 3_170_000_000);
    c.bench_function("boosted_tree_predict_one", |b| {
        b.iter(|| models.host_model.predict_one(&features));
    });

    // prediction-based vs measurement-based evaluation of one system configuration
    let config =
        SystemConfiguration::with_host_percent(48, Affinity::Scatter, 240, Affinity::Balanced, 60);
    let workload = dna_analysis::Genome::Human.workload();
    let prediction = models.prediction_evaluator(workload.clone());
    let measurement = MeasurementEvaluator::new(platform.clone(), workload);
    c.bench_function("evaluate_config_prediction", |b| {
        b.iter(|| prediction.energy(&config));
    });
    c.bench_function("evaluate_config_measurement", |b| {
        b.iter(|| measurement.energy(&config));
    });
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
