//! Benches for the performance-prediction pipeline (paper Figs. 5–8, Tables IV–V).
//!
//! Measures the cost of (a) generating the training data on the simulator, (b) fitting
//! the boosted-tree models and (c) predicting one configuration — the quantity that
//! makes EML/SAML cheap compared to measurement-based evaluation.  Also prints the
//! regenerated Table IV/V accuracy summary once per run.
//!
//! The `flat_kernel` group times the batch-prediction kernels against each other on
//! one EML-tabulation-sized batch (256 rows × 5 features, the chunks the table
//! builders feed [`wd_ml::Regressor::predict_batch`]): the seed kernel (checked,
//! branchy), the cache-blocked branch-free kernel, and — under `--features simd` —
//! the explicit-SIMD lane.  Bit-identity and the ≥ 2× blocked-over-seed speedup are
//! asserted via the shared `repro bench-prediction` measurement, so the criterion
//! trajectory and the CI JSON describe the same experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero_autotune::features::host_features;
use hetero_autotune::{MeasurementEvaluator, SystemConfiguration, TrainingCampaign};
use hetero_platform::{Affinity, HeterogeneousPlatform};
use wd_bench::{kernel_bench_forest, measure_prediction_kernel, PaperStudy, Scale};
use wd_ml::{BoostingParams, Regressor};

fn print_accuracy_once() {
    let (_, models) = PaperStudy::run_training_only(Scale::Paper, 7);
    println!(
        "host  model: mean absolute error {:.3} s, mean percent error {:.2} % ({} experiments)",
        models.host_accuracy.mean_absolute_error(),
        models.host_accuracy.mean_percent_error(),
        models.host_experiments,
    );
    println!(
        "device model: mean absolute error {:.3} s, mean percent error {:.2} % ({} experiments)",
        models.device_accuracy().mean_absolute_error(),
        models.device_accuracy().mean_percent_error(),
        models.device_experiments,
    );
}

fn bench_prediction(c: &mut Criterion) {
    print_accuracy_once();

    let platform = HeterogeneousPlatform::emil();
    let campaign = TrainingCampaign::reduced();

    c.bench_function("training_campaign_reduced", |b| {
        b.iter(|| campaign.run(&platform, BoostingParams::fast()));
    });

    let models = campaign.run(&platform, BoostingParams::fast());
    let features = host_features(48, Affinity::Scatter, 3_170_000_000);
    c.bench_function("boosted_tree_predict_one", |b| {
        b.iter(|| models.host_model.predict_one(&features));
    });

    // prediction-based vs measurement-based evaluation of one system configuration
    let config =
        SystemConfiguration::with_host_percent(48, Affinity::Scatter, 240, Affinity::Balanced, 60);
    let workload = dna_analysis::Genome::Human.workload();
    let prediction = models.prediction_evaluator(workload.clone());
    let measurement = MeasurementEvaluator::new(platform.clone(), workload);
    c.bench_function("evaluate_config_prediction", |b| {
        b.iter(|| prediction.energy(&config));
    });
    c.bench_function("evaluate_config_measurement", |b| {
        b.iter(|| measurement.energy(&config));
    });
}

fn bench_flat_kernel(c: &mut Criterion) {
    let (model, batch, width) = kernel_bench_forest();

    // acceptance evidence first: bit-identity across every kernel plus the ≥ 2×
    // blocked-over-seed speedup, measured best-of-200 on the same batch
    let m = measure_prediction_kernel(&model, &batch, width, 200);
    println!(
        "flat_kernel ({} rows x {} features, {} trees): reference {:?}, blocked {:?} ({:.2}x), simd {}",
        m.rows,
        m.width,
        m.trees,
        m.reference,
        m.blocked,
        m.blocked_speedup(),
        match (m.simd, m.simd_speedup()) {
            (Some(t), Some(s)) => format!("{t:?} ({s:.2}x)"),
            _ => "not built (enable --features simd)".to_string(),
        },
    );
    m.assert_fast_path_won();

    let mut group = c.benchmark_group("flat_kernel");
    group.bench_function("reference_256x5", |b| {
        b.iter(|| model.predict_batch_reference(&batch, width));
    });
    group.bench_function("blocked_256x5", |b| {
        b.iter(|| model.predict_batch_blocked(&batch, width));
    });
    #[cfg(feature = "simd")]
    group.bench_function("simd_256x5", |b| {
        b.iter(|| model.predict_batch_simd(&batch, width));
    });
    // the dispatched entry point (what the tabulation layer actually calls)
    group.bench_function("dispatched_256x5", |b| {
        b.iter(|| model.predict_batch(&batch, width));
    });
    group.finish();
}

criterion_group!(benches, bench_prediction, bench_flat_kernel);
criterion_main!(benches);
