//! Bench for the observability layer's hot-path cost, one group:
//!
//! * `observability_overhead` — the same 2000-iteration SAML delta walk on the
//!   2-accelerator bench space, four ways: plain `run_delta` (unobserved),
//!   `run_delta_observed` under the disabled `NoopRecorder` (what every unobserved
//!   entry point pays after the instrumentation PR), under an in-memory `Registry`,
//!   and under a `JsonlExporter` streaming every iteration event to disk.
//!
//! The printed summary doubles as the acceptance evidence: all four trajectories
//! are bit-identical, replaying the exporter's JSONL file reconstructs the walk's
//! best-energy series from the file alone, and the NoopRecorder costs < 2 %
//! wall-clock (asserted on best-of-repeats minima via
//! [`wd_bench::ObservabilityMeasurement::assert_noop_is_free`]).  The measurement
//! logic is shared with the `repro bench-observability` artifact
//! (`wd_bench::measure_observability_overhead`), so the criterion trajectory and
//! the CI JSON always describe the same experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use dna_analysis::Genome;
use hetero_autotune::TrainingCampaign;
use hetero_platform::HeterogeneousPlatform;
use wd_bench::{measure_observability_overhead, two_accel_bench_grid};
use wd_ml::BoostingParams;
use wd_obs::{NoopRecorder, Registry};
use wd_opt::SimulatedAnnealing;

const ITERATIONS: usize = 2000;
const SEED: u64 = 29;
const REPEATS: usize = 7;

fn print_summary(m: &wd_bench::ObservabilityMeasurement) {
    println!(
        "SAML on the 2-accelerator bench space ({} configurations, {} iterations, best of {} repeats):",
        m.space_configs, m.iterations, m.repeats
    );
    println!(
        "  unobserved run_delta              {:>12.2?}",
        m.unobserved
    );
    println!(
        "  observed, NoopRecorder (disabled) {:>12.2?}  ({:+.2}%)",
        m.noop,
        m.noop_overhead() * 100.0
    );
    println!(
        "  observed, in-memory Registry      {:>12.2?}  ({:+.2}%)",
        m.registry,
        m.registry_overhead() * 100.0
    );
    println!(
        "  observed, JSONL exporter to disk  {:>12.2?}  ({:+.2}%, {} events, {} bytes)",
        m.exporter,
        m.exporter_overhead() * 100.0,
        m.events_written,
        m.bytes_written
    );
    println!(
        "  trajectories identical: {}, replay reconstructs best-energy series: {}",
        m.identical_trajectories, m.replay_matches
    );
}

fn bench_observability_overhead(c: &mut Criterion) {
    let platform = HeterogeneousPlatform::emil_with_gpu();
    let models = TrainingCampaign::reduced_for(&platform).run(&platform, BoostingParams::fast());
    let space = two_accel_bench_grid();
    let workload = Genome::Human.workload();

    let m = measure_observability_overhead(
        &models,
        workload.clone(),
        &space,
        ITERATIONS,
        SEED,
        REPEATS,
    );
    print_summary(&m);
    m.assert_noop_is_free();

    let sa = SimulatedAnnealing::with_budget_and_range(ITERATIONS, 2.0, 0.02, SEED);
    let mut group = c.benchmark_group("observability_overhead");
    group.bench_function("saml_2000_unobserved", |b| {
        b.iter(|| {
            let (counted, _calls) =
                wd_bench::counting_prediction_evaluator(&models, workload.clone());
            let tables = counted.lazy_tabulated();
            sa.run_delta(&space, &tables)
        })
    });
    group.bench_function("saml_2000_noop_recorder", |b| {
        b.iter(|| {
            let (counted, _calls) =
                wd_bench::counting_prediction_evaluator(&models, workload.clone());
            let tables = counted.lazy_tabulated();
            sa.run_delta_observed(&space, &tables, &NoopRecorder, "saml")
        })
    });
    group.bench_function("saml_2000_registry_recorder", |b| {
        b.iter(|| {
            let registry = Registry::new();
            let (counted, _calls) =
                wd_bench::counting_prediction_evaluator(&models, workload.clone());
            let tables = counted.lazy_tabulated();
            sa.run_delta_observed(&space, &tables, &registry, "saml")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_observability_overhead);
criterion_main!(benches);
