//! Benches for the `wd_dist` campaign coordinator: single-node batched enumeration vs
//! sharded campaigns vs resuming against a warm persistent store.
//!
//! Prints a summary table on the full Table-I enumeration grid first (so the bench
//! output doubles as the evidence for the subsystem's two claims: sharding is
//! invisible in the result, and a warm store answers a whole campaign without a single
//! new experiment), then measures the strategies on the tiny grid.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dna_analysis::Genome;
use hetero_autotune::{ConfigurationSpace, MeasurementEvaluator, SystemConfiguration};
use hetero_platform::HeterogeneousPlatform;
use wd_dist::{JsonlStore, MemoryStore, ResultStore, ShardedCampaign};
use wd_opt::{CountingObjective, ParallelEnumeration};

fn evaluator() -> MeasurementEvaluator {
    MeasurementEvaluator::new(HeterogeneousPlatform::emil(), Genome::Human.workload())
}

/// One-shot comparison on the full 19 926-configuration enumeration grid.
fn print_grid_summary() {
    let evaluator = evaluator();
    let grid = ConfigurationSpace::enumeration_grid();

    let start = Instant::now();
    let single = ParallelEnumeration::new().run(&grid, &evaluator);
    let t_single = start.elapsed();
    println!(
        "sharded campaign on the Table-I enumeration grid ({} configurations):",
        single.evaluations
    );
    println!("  single-node batched enumeration  {t_single:>12.2?}");

    for shards in [2usize, 4, 8] {
        let store = MemoryStore::new();
        let start = Instant::now();
        let outcome = ShardedCampaign::new(shards)
            .run(&grid, &evaluator, &store)
            .unwrap();
        let elapsed = start.elapsed();
        assert_eq!(outcome.best_config, single.best_config);
        assert_eq!(outcome.best_energy.to_bits(), single.best_energy.to_bits());
        println!(
            "  {shards}-shard campaign (cold store)   {elapsed:>12.2?}  ({} experiments)",
            outcome.experiments()
        );
    }

    // persistent store: cold write-through run, then a resume answered from disk
    let path = std::env::temp_dir().join(format!(
        "wd_bench-sharded-campaign-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    {
        let store: JsonlStore<SystemConfiguration> = JsonlStore::open(&path).unwrap();
        let start = Instant::now();
        let outcome = ShardedCampaign::new(4)
            .run(&grid, &evaluator, &store)
            .unwrap();
        let elapsed = start.elapsed();
        assert_eq!(outcome.best_config, single.best_config);
        println!("  4-shard campaign (jsonl, cold)   {elapsed:>12.2?}");
    }
    {
        let store: JsonlStore<SystemConfiguration> = JsonlStore::open(&path).unwrap();
        let counting = CountingObjective::new(&evaluator);
        let start = Instant::now();
        let outcome = ShardedCampaign::new(4)
            .run(&grid, &counting, &store)
            .unwrap();
        let elapsed = start.elapsed();
        assert_eq!(outcome.best_config, single.best_config);
        assert_eq!(
            counting.evaluations(),
            0,
            "a warm persistent store must answer the whole campaign"
        );
        println!(
            "  4-shard campaign (jsonl, warm)   {elapsed:>12.2?}  (0 experiments, {} records on disk)",
            store.len()
        );
    }
    let _ = std::fs::remove_file(&path);
}

fn bench_sharded_campaign(c: &mut Criterion) {
    print_grid_summary();

    let evaluator = evaluator();
    // the tiny grid keeps per-sample time reasonable for the timed loop
    let grid = ConfigurationSpace::tiny();

    let mut group = c.benchmark_group("sharded_campaign");
    group.sample_size(20);
    group.bench_function("single_node_enumeration", |b| {
        b.iter(|| ParallelEnumeration::new().run(&grid, &evaluator));
    });
    group.bench_function("campaign_4_shards_cold", |b| {
        b.iter(|| {
            let store = MemoryStore::new();
            ShardedCampaign::new(4).run(&grid, &evaluator, &store)
        });
    });
    group.bench_function("campaign_4_shards_warm_store", |b| {
        let store = MemoryStore::new();
        let _ = ShardedCampaign::new(4).run(&grid, &evaluator, &store);
        b.iter(|| ShardedCampaign::new(4).run(&grid, &evaluator, &store));
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_campaign);
criterion_main!(benches);
