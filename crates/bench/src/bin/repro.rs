//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! repro [--quick] [--seed N] [--metrics PATH] <artifact>...
//!
//! artifacts:
//!   table1 table2 table3          setup tables (parameter space, methods, hardware)
//!   fig2                          motivational work-distribution experiment
//!   fig5 fig6                     measured vs. predicted execution times
//!   fig7 fig8                     prediction error histograms
//!   table4 table5                 prediction accuracy per thread count
//!   fig9                          SAML/SAM vs. EM/EML convergence
//!   table6 table7                 percent / absolute difference to the EM optimum
//!   table8 table9                 speedups vs. host-only / device-only
//!   all                           everything above
//!   bench-enumeration             enumeration fast-path measurements; also writes
//!                                 the BENCH_enumeration.json perf-trajectory artifact
//!   bench-annealing               incremental-annealing fast-path measurements
//!                                 (direct vs eager vs lazy SAML); also writes the
//!                                 BENCH_annealing.json perf-trajectory artifact
//!   bench-prediction              flat-forest kernel measurements (seed vs blocked
//!                                 vs SIMD batch prediction) plus the GA's
//!                                 incremental-recombination fast path; also writes
//!                                 the BENCH_prediction.json perf-trajectory artifact
//!   bench-observability           observability-layer overhead measurements (the
//!                                 same SAML walk unobserved vs NoopRecorder vs
//!                                 Registry vs JSONL exporter, with bit-identity and
//!                                 event-replay checks); also writes the
//!                                 BENCH_observability.json perf-trajectory artifact
//! ```
//!
//! `--quick` runs a scaled-down study (reduced training campaign, fewer budgets) so the
//! whole reproduction finishes in a few seconds; the default reproduces the paper-scale
//! campaign (7 200 training experiments, 19 926-point enumeration per genome).
//!
//! `--metrics PATH` writes a `wd_obs` metrics snapshot (schema
//! [`wd_obs::METRICS_SCHEMA_VERSION`])
//! to `PATH` when the run finishes: one span per artifact rendered, a span for the
//! training campaign, and whatever gauges/counters the requested artifacts published
//! through the shared registry.

use std::collections::BTreeSet;

use dna_analysis::Genome;
use hetero_autotune::experiments::{motivation_experiment, SpeedupBaseline};
use hetero_autotune::report::{fmt2, fmt3, format_table};
use hetero_autotune::{ConfigurationSpace, MethodKind, TrainingCampaign};
use hetero_platform::{Affinity, DeviceSpec, HeterogeneousPlatform};
use wd_bench::{render_budget_table, render_speedup_table, PaperStudy, Scale};
use wd_ml::ErrorHistogram;
use wd_obs::{FieldValue, Recorder, Registry};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut seed = 0x45_6d_69_6cu64; // "Emil"
    let mut metrics_path: Option<String> = None;
    let mut artifacts: BTreeSet<String> = BTreeSet::new();

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                let value = iter.next().unwrap_or_else(|| usage("--seed needs a value"));
                seed = value
                    .parse()
                    .unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            "--metrics" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| usage("--metrics needs a path"));
                metrics_path = Some(value.clone());
            }
            "--help" | "-h" => usage(""),
            name => {
                artifacts.insert(name.to_ascii_lowercase());
            }
        }
    }
    if artifacts.is_empty() {
        usage("no artifact requested");
    }
    if artifacts.contains("all") {
        artifacts = [
            "table1", "table2", "table3", "fig2", "fig5", "fig6", "fig7", "fig8", "table4",
            "table5", "fig9", "table6", "table7", "table8", "table9",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let needs_models = artifacts.iter().any(|a| {
        matches!(
            a.as_str(),
            "fig5" | "fig6" | "fig7" | "fig8" | "table4" | "table5"
        )
    });
    let needs_convergence = artifacts.iter().any(|a| {
        matches!(
            a.as_str(),
            "fig9" | "table6" | "table7" | "table8" | "table9"
        )
    });

    // the shared metrics registry: artifacts publish into it, `--metrics` serializes it
    let registry = Registry::new();

    // static artifacts first
    for artifact in &artifacts {
        let started = std::time::Instant::now();
        match artifact.as_str() {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(),
            "fig2" => fig2(seed),
            "bench-enumeration" => bench_enumeration(scale),
            "bench-annealing" => bench_annealing(scale, seed),
            "bench-prediction" => bench_prediction(scale, seed),
            "bench-observability" => bench_observability(scale, seed, &registry),
            _ => continue,
        }
        registry.span(
            &format!("repro.{artifact}"),
            started.elapsed().as_secs_f64(),
            &[],
        );
    }

    if !(needs_models || needs_convergence) {
        write_metrics(&registry, metrics_path.as_deref());
        return;
    }

    eprintln!(
        "# running the {} campaign (this performs {} simulated experiments)...",
        if scale == Scale::Paper {
            "paper-scale"
        } else {
            "quick"
        },
        scale.campaign().total_experiment_count(),
    );

    let started = std::time::Instant::now();
    let study = if needs_convergence {
        PaperStudy::run(scale, seed)
    } else {
        let (platform, models) = PaperStudy::run_training_only(scale, seed);
        PaperStudy {
            platform,
            scale,
            models,
            convergence: hetero_autotune::experiments::ConvergenceStudy {
                budgets: vec![],
                cases: vec![],
            },
        }
    };
    registry.span(
        "repro.campaign",
        started.elapsed().as_secs_f64(),
        &[
            (
                "experiments",
                FieldValue::U64(scale.campaign().total_experiment_count() as u64),
            ),
            ("convergence", FieldValue::Bool(needs_convergence)),
        ],
    );

    for artifact in &artifacts {
        let started = std::time::Instant::now();
        match artifact.as_str() {
            "fig5" => fig5or6(&study, true),
            "fig6" => fig5or6(&study, false),
            "fig7" => fig7or8(&study, true),
            "fig8" => fig7or8(&study, false),
            "table4" => table4or5(&study, true),
            "table5" => table4or5(&study, false),
            "fig9" => fig9(&study),
            "table6" => println!(
                "{}",
                render_budget_table(
                    "Table VI: percent difference [%] of SAML vs. the EM optimum",
                    &study.convergence.budgets,
                    &study.convergence.percent_difference_rows(),
                )
            ),
            "table7" => println!(
                "{}",
                render_budget_table(
                    "Table VII: absolute difference [s] of SAML vs. the EM optimum",
                    &study.convergence.budgets,
                    &study.convergence.absolute_difference_rows(),
                )
            ),
            "table8" => println!(
                "{}",
                render_speedup_table(
                    "Table VIII: speedup of SAML/EM configurations vs. host-only (48 threads)",
                    &study.convergence.budgets,
                    &study.convergence.speedup_rows(SpeedupBaseline::HostOnly),
                )
            ),
            "table9" => println!(
                "{}",
                render_speedup_table(
                    "Table IX: speedup of SAML/EM configurations vs. device-only (240 threads)",
                    &study.convergence.budgets,
                    &study.convergence.speedup_rows(SpeedupBaseline::DeviceOnly),
                )
            ),
            _ => continue,
        }
        registry.span(
            &format!("repro.{artifact}"),
            started.elapsed().as_secs_f64(),
            &[],
        );
    }

    write_metrics(&registry, metrics_path.as_deref());
}

/// Serialize the shared registry's snapshot to `path` (no-op without `--metrics`).
fn write_metrics(registry: &Registry, path: Option<&str>) {
    let Some(path) = path else { return };
    let json = registry.snapshot().to_json();
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    eprintln!("# wrote {path}");
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}\n");
    }
    eprintln!(
        "usage: repro [--quick] [--seed N] [--metrics PATH] <artifact>...\n\
         artifacts: table1 table2 table3 fig2 fig5 fig6 fig7 fig8 table4 table5 fig9 \
         table6 table7 table8 table9 all bench-enumeration bench-annealing \
         bench-prediction bench-observability"
    );
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}

/// Table I: the parameter space, plus the Eq. 1 cardinalities.
fn table1() {
    let space = ConfigurationSpace::paper();
    let grid = ConfigurationSpace::enumeration_grid();
    let headers = vec![
        "Parameter".to_string(),
        "Host".to_string(),
        "Device".to_string(),
    ];
    let rows = vec![
        vec![
            "Threads".to_string(),
            format!("{:?}", space.host_threads),
            format!("{:?}", space.device_axes[0].threads),
        ],
        vec![
            "Affinity".to_string(),
            format!(
                "{:?}",
                space
                    .host_affinities
                    .iter()
                    .map(Affinity::name)
                    .collect::<Vec<_>>()
            ),
            format!(
                "{:?}",
                space.device_axes[0]
                    .affinities
                    .iter()
                    .map(Affinity::name)
                    .collect::<Vec<_>>()
            ),
        ],
        vec![
            "Workload fraction".to_string(),
            "0..=100 %".to_string(),
            "100 - host fraction".to_string(),
        ],
    ];
    println!("Table I: system configuration parameters");
    println!("{}", format_table(&headers, &rows));
    println!(
        "Search space size (Eq. 1): {} configurations; enumeration grid (2.5 % fraction steps): {} experiments\n",
        space.total_configurations(),
        grid.total_configurations()
    );
}

/// Table II: properties of the optimization methods.
fn table2() {
    let headers = vec![
        "Method".to_string(),
        "Space Exploration".to_string(),
        "Sys. Conf. Evaluation".to_string(),
        "Effort".to_string(),
        "Accuracy".to_string(),
        "Prediction".to_string(),
    ];
    let rows: Vec<Vec<String>> = MethodKind::ALL
        .iter()
        .map(|m| {
            let p = m.properties();
            vec![
                m.name().to_string(),
                p.space_exploration.to_string(),
                p.evaluation.to_string(),
                p.effort.to_string(),
                p.accuracy.to_string(),
                if p.prediction { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    println!("Table II: properties of optimization methods");
    println!("{}", format_table(&headers, &rows));
}

/// Table III: the hardware of the simulated Emil platform.
fn table3() {
    let host = DeviceSpec::xeon_e5_2695v2_dual();
    let phi = DeviceSpec::xeon_phi_7120p();
    let headers = vec![
        "Specification".to_string(),
        "Intel Xeon".to_string(),
        "Intel Xeon Phi".to_string(),
    ];
    let rows = vec![
        vec![
            "Type".to_string(),
            "E5-2695v2".to_string(),
            "7120P".to_string(),
        ],
        vec![
            "Core frequency [GHz]".to_string(),
            format!("{} - {}", host.base_frequency_ghz, host.turbo_frequency_ghz),
            format!("{} - {}", phi.base_frequency_ghz, phi.turbo_frequency_ghz),
        ],
        vec![
            "# of Cores (per socket/device)".to_string(),
            host.cores_per_socket.to_string(),
            phi.cores_per_socket.to_string(),
        ],
        vec![
            "# of Threads".to_string(),
            (host.cores_per_socket * host.threads_per_core).to_string(),
            (phi.cores_per_socket * phi.threads_per_core).to_string(),
        ],
        vec![
            "Cache [MB]".to_string(),
            host.cache_mb.to_string(),
            phi.cache_mb.to_string(),
        ],
        vec![
            "Max Mem. Bandwidth [GB/s]".to_string(),
            host.mem_bandwidth_gbs.to_string(),
            phi.mem_bandwidth_gbs.to_string(),
        ],
    ];
    println!("Table III: Emil hardware architecture (simulated)");
    println!("{}", format_table(&headers, &rows));
}

/// Fig. 2: the motivational work-distribution experiment.
fn fig2(seed: u64) {
    let platform = HeterogeneousPlatform::emil_with_seed(seed);
    let cases = [
        ("Fig. 2a: 190 MB, 48 CPU threads", 190u64, 48u32),
        ("Fig. 2b: 3250 MB, 48 CPU threads", 3250, 48),
        ("Fig. 2c: 3250 MB, 4 CPU threads", 3250, 4),
    ];
    for (caption, megabytes, threads) in cases {
        let points = motivation_experiment(&platform, megabytes, threads);
        let headers = vec![
            "Work distribution".to_string(),
            "Time [s]".to_string(),
            "Normalized (1-10)".to_string(),
        ];
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| vec![p.label.clone(), fmt3(p.seconds), fmt2(p.normalized)])
            .collect();
        println!("{caption}");
        println!("{}", format_table(&headers, &rows));
        let best = points
            .iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .expect("eleven points");
        println!("best distribution: {}\n", best.label);
    }
}

/// Figs. 5 / 6: measured vs. predicted execution times.
fn fig5or6(study: &PaperStudy, host: bool) {
    let (caption, report, threads, affinity) = if host {
        (
            "Fig. 5: host, thread affinity scatter — measured vs. predicted [s]",
            &study.models.host_accuracy,
            vec![6u32, 12, 24, 48],
            Affinity::Scatter,
        )
    } else {
        (
            "Fig. 6: device, thread affinity balanced — measured vs. predicted [s]",
            study.models.device_accuracy(),
            vec![30u32, 60, 120, 240],
            Affinity::Balanced,
        )
    };
    println!("{caption}");
    let mut headers = vec!["File size [MB]".to_string()];
    for t in &threads {
        headers.push(format!("{t}thr measured"));
        headers.push(format!("{t}thr predicted"));
    }
    // collect the union of sizes over the selected series, bucketed to whole MB
    let mut sizes: Vec<u64> = vec![];
    let mut series = vec![];
    for &t in &threads {
        let s = report.series(t, affinity);
        for point in &s {
            let mb = point.0.round() as u64;
            if !sizes.contains(&mb) {
                sizes.push(mb);
            }
        }
        series.push(s);
    }
    sizes.sort_unstable();
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&mb| {
            let mut row = vec![mb.to_string()];
            for s in &series {
                match s.iter().find(|p| p.0.round() as u64 == mb) {
                    Some(&(_, measured, predicted)) => {
                        row.push(fmt3(measured));
                        row.push(fmt3(predicted));
                    }
                    None => {
                        row.push("-".to_string());
                        row.push("-".to_string());
                    }
                }
            }
            row
        })
        .collect();
    println!("{}", format_table(&headers, &rows));
}

/// Figs. 7 / 8: histograms of absolute prediction errors.
fn fig7or8(study: &PaperStudy, host: bool) {
    let (caption, report, bins) = if host {
        (
            "Fig. 7: error histogram for execution-time predictions on the host",
            &study.models.host_accuracy,
            ErrorHistogram::paper_host_bins(),
        )
    } else {
        (
            "Fig. 8: error histogram for execution-time predictions on the device",
            study.models.device_accuracy(),
            ErrorHistogram::paper_device_bins(),
        )
    };
    let histogram = report.histogram(bins);
    println!("{caption}");
    let headers = vec!["Absolute error ≤ [s]".to_string(), "Frequency".to_string()];
    let mut rows: Vec<Vec<String>> = histogram
        .upper_bounds()
        .iter()
        .zip(histogram.counts())
        .map(|(bound, count)| vec![format!("{bound}"), count.to_string()])
        .collect();
    rows.push(vec![
        "(larger)".to_string(),
        histogram.overflow().to_string(),
    ]);
    println!("{}", format_table(&headers, &rows));
    println!("total predictions evaluated: {}\n", histogram.total());
}

/// Tables IV / V: prediction accuracy per thread count.
fn table4or5(study: &PaperStudy, host: bool) {
    let (caption, report) = if host {
        (
            "Table IV: prediction accuracy for the host",
            &study.models.host_accuracy,
        )
    } else {
        (
            "Table V: prediction accuracy for the device",
            study.models.device_accuracy(),
        )
    };
    let by_threads = report.by_threads();
    let mut headers = vec!["Threads".to_string()];
    headers.extend(by_threads.iter().map(|(t, _, _)| t.to_string()));
    headers.push("avg".to_string());
    let absolute_row = {
        let mut row = vec!["absolute [s]".to_string()];
        row.extend(by_threads.iter().map(|(_, abs, _)| fmt3(*abs)));
        row.push(fmt3(report.mean_absolute_error()));
        row
    };
    let percent_row = {
        let mut row = vec!["percent [%]".to_string()];
        row.extend(by_threads.iter().map(|(_, _, pct)| fmt3(*pct)));
        row.push(fmt3(report.mean_percent_error()));
        row
    };
    println!("{caption}");
    println!("{}", format_table(&headers, &[absolute_row, percent_row]));
}

/// Fig. 9: per-genome convergence of SAML/SAM towards the EM optimum.
fn fig9(study: &PaperStudy) {
    for genome in study.convergence.cases.iter().filter_map(|c| c.genome) {
        let series = study
            .convergence
            .figure9_series(genome)
            .expect("series exists for every genome of the study");
        println!(
            "Fig. 9 ({genome}): execution time [s] of the configuration suggested after N iterations"
        );
        let headers = vec![
            "Iterations".to_string(),
            "SAML".to_string(),
            "SAM".to_string(),
            "GAML".to_string(),
            "EM".to_string(),
            "EML".to_string(),
        ];
        let rows: Vec<Vec<String>> = series
            .budgets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                vec![
                    b.to_string(),
                    fmt3(series.saml[i]),
                    fmt3(series.sam[i]),
                    fmt3(series.gaml[i]),
                    fmt3(series.em),
                    fmt3(series.eml),
                ]
            })
            .collect();
        println!("{}", format_table(&headers, &rows));
    }
}

/// `bench-enumeration`: measure the enumeration fast path and write the
/// `BENCH_enumeration.json` perf-trajectory artifact (one JSON object per run,
/// suitable for diffing across commits in CI).
///
/// The direct-vs-factorized measurement is `wd_bench::measure_fast_path` — the same
/// code the `enumeration_fast_path` criterion bench runs, on the same grid at paper
/// scale, so the JSON trajectory and the bench numbers describe one experiment.
fn bench_enumeration(scale: Scale) {
    use std::time::Instant;
    use wd_bench::{measure_fast_path, two_accel_bench_grid};
    use wd_opt::{MaterializedOnly, ParallelEnumeration, SearchSpace};

    let platform = HeterogeneousPlatform::emil_with_gpu();
    let models = TrainingCampaign::reduced_for(&platform).run(&platform, scale.boosting());

    // 2-accelerator EML grid: quick shrinks it, paper uses the bench grid
    let grid = match scale {
        Scale::Quick => ConfigurationSpace::tiny_multi(),
        Scale::Paper => two_accel_bench_grid(),
    };
    let m = measure_fast_path(&models, Genome::Human.workload(), &grid);

    // lazy vs. materialized streaming on the Table-I grid, cheap objective
    let table1 = ConfigurationSpace::enumeration_grid();
    let cheap = |config: &hetero_autotune::SystemConfiguration| {
        f64::from(config.host_threads) + f64::from(config.host_permille()) * 1e-3
    };
    let start = Instant::now();
    let lazy = ParallelEnumeration::new().run_indexed(&table1, &cheap);
    let t_lazy = start.elapsed();
    let start = Instant::now();
    let materialized =
        ParallelEnumeration::new().run_indexed(&MaterializedOnly::new(&table1), &cheap);
    let t_materialized = start.elapsed();
    assert_eq!(lazy.best_index, materialized.best_index);

    let json = format!(
        "{{\n  \"schema\": \"bench-enumeration/v1\",\n  \"scale\": \"{}\",\n  \
         \"tabulated_vs_direct\": {{\n    \"grid_configs\": {},\n    \
         \"direct_ms\": {:.3},\n    \"tabulated_ms\": {:.3},\n    \
         \"model_queries_direct\": {},\n    \
         \"model_queries_tabulated\": {},\n    \
         \"query_reduction\": {:.2},\n    \"identical_best\": {}\n  }},\n  \
         \"lazy_vs_materialized\": {{\n    \"grid_configs\": {},\n    \
         \"lazy_ms\": {:.3},\n    \"materialized_ms\": {:.3}\n  }}\n}}\n",
        if scale == Scale::Paper {
            "paper"
        } else {
            "quick"
        },
        m.grid_configs,
        m.direct.as_secs_f64() * 1e3,
        m.tabulated_total().as_secs_f64() * 1e3,
        m.model_queries_direct,
        m.model_queries_tabulated,
        m.query_reduction(),
        m.identical_best,
        table1.space_len().expect("Table-I grid is indexed"),
        t_lazy.as_secs_f64() * 1e3,
        t_materialized.as_secs_f64() * 1e3,
    );
    print!("{json}");
    std::fs::write("BENCH_enumeration.json", &json)
        .expect("failed to write BENCH_enumeration.json");
    eprintln!("# wrote BENCH_enumeration.json");
    m.assert_fast_path_won();
}

/// `bench-annealing`: measure the incremental annealing fast path and write the
/// `BENCH_annealing.json` perf-trajectory artifact (one JSON object per run,
/// suitable for diffing across commits in CI).
///
/// The measurement is `wd_bench::measure_annealing_fast_path` — the same code the
/// `annealing_fast_path` criterion bench runs — on the 2-accelerator bench space at
/// paper scale (`tiny_multi` + a shorter walk for `--quick`): one SAML trajectory,
/// walked three ways (direct full re-evaluation, eager tables + delta, lazy tables +
/// delta), with bit-identity and the ≥ 5× per-accepted-move query reduction asserted.
fn bench_annealing(scale: Scale, seed: u64) {
    use wd_bench::{measure_annealing_fast_path, two_accel_bench_grid};

    let platform = HeterogeneousPlatform::emil_with_gpu();
    let models = TrainingCampaign::reduced_for(&platform).run(&platform, scale.boosting());
    let (space, iterations) = match scale {
        Scale::Quick => (ConfigurationSpace::tiny_multi(), 300),
        Scale::Paper => (two_accel_bench_grid(), 2000),
    };
    let m =
        measure_annealing_fast_path(&models, Genome::Human.workload(), &space, iterations, seed);

    let json = format!(
        "{{\n  \"schema\": \"bench-annealing/v1\",\n  \"scale\": \"{}\",\n  \
         \"space_configs\": {},\n  \"iterations\": {},\n  \"evaluations\": {},\n  \
         \"accepted_moves\": {},\n  \"direct_ms\": {:.3},\n  \"eager_ms\": {:.3},\n  \
         \"lazy_ms\": {:.3},\n  \"model_queries_direct\": {},\n  \
         \"model_queries_eager\": {},\n  \"model_queries_lazy\": {},\n  \
         \"queries_per_accepted_direct\": {:.3},\n  \
         \"queries_per_accepted_lazy\": {:.3},\n  \"query_reduction\": {:.2},\n  \
         \"identical_trajectories\": {}\n}}\n",
        if scale == Scale::Paper {
            "paper"
        } else {
            "quick"
        },
        m.space_configs,
        m.iterations,
        m.evaluations,
        m.accepted_moves,
        m.direct.as_secs_f64() * 1e3,
        m.eager_total().as_secs_f64() * 1e3,
        m.lazy.as_secs_f64() * 1e3,
        m.model_queries_direct,
        m.model_queries_eager,
        m.model_queries_lazy,
        m.queries_per_accepted_direct(),
        m.queries_per_accepted_lazy(),
        m.query_reduction(),
        m.identical_trajectories,
    );
    print!("{json}");
    std::fs::write("BENCH_annealing.json", &json).expect("failed to write BENCH_annealing.json");
    eprintln!("# wrote BENCH_annealing.json");
    m.assert_fast_path_won();
}

/// `bench-prediction`: measure the flat-forest batch kernels and the GA's
/// incremental-recombination fast path, and write the `BENCH_prediction.json`
/// perf-trajectory artifact (one JSON object per run, suitable for diffing across
/// commits in CI).
///
/// The kernel half is `wd_bench::measure_prediction_kernel` over the shared
/// [`wd_bench::kernel_bench_forest`] ensemble and EML-tabulation-sized batch — the
/// same experiment the `prediction_model` criterion bench's `flat_kernel` group
/// times — asserting bit-identity and the ≥ 2× blocked-over-seed speedup.  The GA
/// half is `wd_bench::measure_genetic_fast_path` on the 2-accelerator bench space
/// (`tiny_multi` + a smaller budget for `--quick`): one GA trajectory, run twice
/// (direct full re-evaluation vs `run_delta` over lazy tables), with bit-identity
/// and the ≥ 5× per-generation query reduction asserted.
fn bench_prediction(scale: Scale, seed: u64) {
    use wd_bench::{
        kernel_bench_forest, measure_genetic_fast_path, measure_prediction_kernel,
        two_accel_bench_grid,
    };

    let (model, batch, width) = kernel_bench_forest();
    let repeats = match scale {
        Scale::Quick => 50,
        Scale::Paper => 200,
    };
    let kernel = measure_prediction_kernel(&model, &batch, width, repeats);

    let platform = HeterogeneousPlatform::emil_with_gpu();
    let models = TrainingCampaign::reduced_for(&platform).run(&platform, scale.boosting());
    let (space, iterations) = match scale {
        Scale::Quick => (ConfigurationSpace::tiny_multi(), 300),
        Scale::Paper => (two_accel_bench_grid(), 2000),
    };
    let ga = measure_genetic_fast_path(&models, Genome::Human.workload(), &space, iterations, seed);

    let simd_ms = kernel
        .simd
        .map(|t| format!("{:.3}", t.as_secs_f64() * 1e3))
        .unwrap_or_else(|| "null".to_string());
    let simd_speedup = kernel
        .simd_speedup()
        .map(|s| format!("{s:.2}"))
        .unwrap_or_else(|| "null".to_string());
    let json = format!(
        "{{\n  \"schema\": \"bench-prediction/v1\",\n  \"scale\": \"{}\",\n  \
         \"kernel\": {{\n    \"rows\": {},\n    \"width\": {},\n    \"trees\": {},\n    \
         \"repeats\": {},\n    \"reference_ms\": {:.3},\n    \"blocked_ms\": {:.3},\n    \
         \"simd_ms\": {},\n    \"blocked_speedup\": {:.2},\n    \"simd_speedup\": {},\n    \
         \"identical\": {}\n  }},\n  \
         \"ga_delta\": {{\n    \"space_configs\": {},\n    \"iterations\": {},\n    \
         \"generations\": {},\n    \"evaluations\": {},\n    \"direct_ms\": {:.3},\n    \
         \"lazy_ms\": {:.3},\n    \"model_queries_direct\": {},\n    \
         \"model_queries_lazy\": {},\n    \"queries_per_generation_direct\": {:.3},\n    \
         \"queries_per_generation_lazy\": {:.3},\n    \"query_reduction\": {:.2},\n    \
         \"identical_trajectories\": {}\n  }}\n}}\n",
        if scale == Scale::Paper {
            "paper"
        } else {
            "quick"
        },
        kernel.rows,
        kernel.width,
        kernel.trees,
        kernel.repeats,
        kernel.reference.as_secs_f64() * 1e3,
        kernel.blocked.as_secs_f64() * 1e3,
        simd_ms,
        kernel.blocked_speedup(),
        simd_speedup,
        kernel.identical,
        ga.space_configs,
        ga.iterations,
        ga.generations,
        ga.evaluations,
        ga.direct.as_secs_f64() * 1e3,
        ga.lazy.as_secs_f64() * 1e3,
        ga.model_queries_direct,
        ga.model_queries_lazy,
        ga.queries_per_generation_direct(),
        ga.queries_per_generation_lazy(),
        ga.query_reduction(),
        ga.identical_trajectories,
    );
    print!("{json}");
    std::fs::write("BENCH_prediction.json", &json).expect("failed to write BENCH_prediction.json");
    eprintln!("# wrote BENCH_prediction.json");
    kernel.assert_fast_path_won();
    ga.assert_fast_path_won();
}

/// `bench-observability`: measure the observability layer's hot-path cost and write
/// the `BENCH_observability.json` perf-trajectory artifact (one JSON object per run,
/// suitable for diffing across commits in CI).
///
/// The measurement is `wd_bench::measure_observability_overhead` — the same code the
/// `observability_overhead` criterion bench runs — on the 2-accelerator bench space
/// at paper scale (`tiny_multi` for `--quick`): one SAML delta walk timed unobserved
/// and under three recorders (disabled `NoopRecorder`, in-memory `Registry`, JSONL
/// exporter to disk), with bit-identity of all four trajectories, a bit-exact replay
/// of the best-energy series from the exporter's file alone, and the < 2 %
/// NoopRecorder overhead bound asserted.  The measurement's headline numbers are
/// also published into the shared `--metrics` registry.
fn bench_observability(scale: Scale, seed: u64, recorder: &dyn Recorder) {
    use wd_bench::{measure_observability_overhead, two_accel_bench_grid};

    let platform = HeterogeneousPlatform::emil_with_gpu();
    let models = TrainingCampaign::reduced_for(&platform).run(&platform, scale.boosting());
    // the walk stays at the bench's 2000 iterations even for --quick (the budget is
    // what the < 2 % bound is quoted against); quick only shrinks space + training
    let (space, repeats) = match scale {
        Scale::Quick => (ConfigurationSpace::tiny_multi(), 15),
        Scale::Paper => (two_accel_bench_grid(), 7),
    };
    let iterations = 2000;
    let m = measure_observability_overhead(
        &models,
        Genome::Human.workload(),
        &space,
        iterations,
        seed,
        repeats,
    );

    let json = format!(
        "{{\n  \"schema\": \"bench-observability/v1\",\n  \"scale\": \"{}\",\n  \
         \"space_configs\": {},\n  \"iterations\": {},\n  \"repeats\": {},\n  \
         \"unobserved_ms\": {:.3},\n  \"noop_ms\": {:.3},\n  \"registry_ms\": {:.3},\n  \
         \"exporter_ms\": {:.3},\n  \"noop_overhead_pct\": {:.3},\n  \
         \"registry_overhead_pct\": {:.3},\n  \"exporter_overhead_pct\": {:.3},\n  \
         \"events_written\": {},\n  \"bytes_written\": {},\n  \
         \"identical_trajectories\": {},\n  \"replay_matches\": {}\n}}\n",
        if scale == Scale::Paper {
            "paper"
        } else {
            "quick"
        },
        m.space_configs,
        m.iterations,
        m.repeats,
        m.unobserved.as_secs_f64() * 1e3,
        m.noop.as_secs_f64() * 1e3,
        m.registry.as_secs_f64() * 1e3,
        m.exporter.as_secs_f64() * 1e3,
        m.noop_overhead() * 100.0,
        m.registry_overhead() * 100.0,
        m.exporter_overhead() * 100.0,
        m.events_written,
        m.bytes_written,
        m.identical_trajectories,
        m.replay_matches,
    );
    print!("{json}");
    std::fs::write("BENCH_observability.json", &json)
        .expect("failed to write BENCH_observability.json");
    eprintln!("# wrote BENCH_observability.json");

    if recorder.enabled() {
        recorder.gauge("bench.observability.noop_overhead", m.noop_overhead());
        recorder.gauge(
            "bench.observability.registry_overhead",
            m.registry_overhead(),
        );
        recorder.gauge(
            "bench.observability.exporter_overhead",
            m.exporter_overhead(),
        );
        recorder.counter("bench.observability.events_written", m.events_written);
        recorder.counter("bench.observability.bytes_written", m.bytes_written);
    }
    m.assert_noop_is_free();
}

// ensure the helper crate links even when only static tables are printed
#[allow(unused)]
fn genomes() -> Vec<Genome> {
    Genome::ALL.to_vec()
}

#[allow(unused)]
fn campaigns() -> (TrainingCampaign, TrainingCampaign) {
    (TrainingCampaign::paper(), TrainingCampaign::reduced())
}
