//! # wd-bench
//!
//! Shared plumbing for the reproduction harness: the [`repro`](../repro/index.html)
//! binary regenerates every table and figure of the paper's evaluation section, and the
//! Criterion benches measure the cost of the individual components (DFA scanning, model
//! training/prediction, the optimization methods themselves).
//!
//! The heavy lifting lives in [`hetero_autotune`]; this crate only decides which
//! experiments to run at which scale and formats the results the way the paper's tables
//! present them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use dna_analysis::Genome;
use hetero_autotune::experiments::{paper_iteration_budgets, ConvergenceStudy};
use hetero_autotune::report::{fmt2, fmt3, format_table};
use hetero_autotune::{TrainedModels, TrainingCampaign};
use hetero_platform::HeterogeneousPlatform;
use wd_ml::BoostingParams;

/// At which scale to run the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full campaign: 7 200 training experiments, the 19 926-point
    /// enumeration grid and iteration budgets 250..=2000.
    Paper,
    /// A scaled-down run (reduced campaign, smaller budgets) for smoke tests.
    Quick,
}

impl Scale {
    /// Training campaign for this scale.
    pub fn campaign(&self) -> TrainingCampaign {
        match self {
            Scale::Paper => TrainingCampaign::paper(),
            Scale::Quick => TrainingCampaign::reduced(),
        }
    }

    /// Boosting hyper-parameters for this scale.
    pub fn boosting(&self) -> BoostingParams {
        match self {
            Scale::Paper => BoostingParams::default(),
            Scale::Quick => BoostingParams::fast(),
        }
    }

    /// Simulated-annealing iteration budgets for this scale.
    pub fn budgets(&self) -> Vec<usize> {
        match self {
            Scale::Paper => paper_iteration_budgets(),
            Scale::Quick => vec![100, 250, 500],
        }
    }

    /// Genomes examined at this scale.
    pub fn genomes(&self) -> Vec<Genome> {
        match self {
            Scale::Paper => Genome::ALL.to_vec(),
            Scale::Quick => vec![Genome::Human, Genome::Cat],
        }
    }
}

/// Everything the tables/figures of the evaluation section need, computed once.
pub struct PaperStudy {
    /// The simulated platform.
    pub platform: HeterogeneousPlatform,
    /// Scale the study was run at.
    pub scale: Scale,
    /// Trained prediction models and their accuracy reports (Figs. 5-8, Tables IV-V).
    pub models: TrainedModels,
    /// Convergence study (Fig. 9, Tables VI-IX).
    pub convergence: ConvergenceStudy,
}

impl PaperStudy {
    /// Run the training campaign and the convergence study at the given scale.
    pub fn run(scale: Scale, seed: u64) -> Self {
        let platform = HeterogeneousPlatform::emil_with_seed(seed);
        let models = scale.campaign().run(&platform, scale.boosting());
        let convergence =
            ConvergenceStudy::run(&platform, &models, &scale.genomes(), &scale.budgets(), seed);
        PaperStudy {
            platform,
            scale,
            models,
            convergence,
        }
    }

    /// Run only the training part (enough for Figs. 5-8 and Tables IV-V).
    pub fn run_training_only(scale: Scale, seed: u64) -> (HeterogeneousPlatform, TrainedModels) {
        let platform = HeterogeneousPlatform::emil_with_seed(seed);
        let models = scale.campaign().run(&platform, scale.boosting());
        (platform, models)
    }
}

/// Render a `(label, values-per-budget)` table with one column per iteration budget,
/// as used by Tables VI and VII.
pub fn render_budget_table(
    caption: &str,
    budgets: &[usize],
    rows: &[(String, Vec<f64>)],
) -> String {
    let mut headers = vec!["DNA".to_string()];
    headers.extend(budgets.iter().map(|b| b.to_string()));
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, values)| {
            let mut row = vec![label.clone()];
            row.extend(values.iter().map(|v| fmt3(*v)));
            row
        })
        .collect();
    format!("{caption}\n{}", format_table(&headers, &body))
}

/// Render a speedup table (Tables VIII and IX): one column per budget plus the EM column.
pub fn render_speedup_table(
    caption: &str,
    budgets: &[usize],
    rows: &[(String, Vec<f64>, f64)],
) -> String {
    let mut headers = vec!["DNA".to_string()];
    headers.extend(budgets.iter().map(|b| b.to_string()));
    headers.push("EM".to_string());
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, values, em)| {
            let mut row = vec![label.clone()];
            row.extend(values.iter().map(|v| fmt2(*v)));
            row.push(fmt2(*em));
            row
        })
        .collect();
    format!("{caption}\n{}", format_table(&headers, &body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wd_ml::Regressor as _;

    #[test]
    fn quick_scale_is_small() {
        assert!(Scale::Quick.campaign().total_experiment_count() < 1000);
        assert!(Scale::Quick.budgets().len() < Scale::Paper.budgets().len());
        assert_eq!(Scale::Paper.campaign().total_experiment_count(), 7200);
        assert_eq!(Scale::Paper.genomes().len(), 4);
    }

    #[test]
    fn budget_table_renders_all_rows_and_columns() {
        let budgets = vec![250, 500];
        let rows = vec![
            ("human".to_string(), vec![22.15, 16.17]),
            ("average".to_string(), vec![19.68, 14.07]),
        ];
        let table = render_budget_table("Table VI", &budgets, &rows);
        assert!(table.contains("Table VI"));
        assert!(table.contains("human"));
        assert!(table.contains("average"));
        assert!(table.contains("250") && table.contains("500"));
        assert!(table.contains("22.150"));
    }

    #[test]
    fn speedup_table_has_an_em_column() {
        let budgets = vec![1000];
        let rows = vec![("dog".to_string(), vec![1.56], 1.69)];
        let table = render_speedup_table("Table VIII", &budgets, &rows);
        assert!(table.contains("EM"));
        assert!(table.contains("1.56"));
        assert!(table.contains("1.69"));
    }

    #[test]
    fn quick_study_end_to_end() {
        let study = PaperStudy::run(Scale::Quick, 1);
        assert_eq!(study.scale, Scale::Quick);
        assert!(study.models.host_model.is_fitted());
        assert_eq!(study.convergence.cases.len(), 2);
        let table = study.convergence.percent_difference_rows();
        // two genomes + the average row
        assert_eq!(table.len(), 3);
    }
}
