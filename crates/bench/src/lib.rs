//! # wd-bench
//!
//! Shared plumbing for the reproduction harness: the [`repro`](../repro/index.html)
//! binary regenerates every table and figure of the paper's evaluation section, and the
//! Criterion benches measure the cost of the individual components (DFA scanning, model
//! training/prediction, the optimization methods themselves).
//!
//! The heavy lifting lives in [`hetero_autotune`]; this crate only decides which
//! experiments to run at which scale and formats the results the way the paper's tables
//! present them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use dna_analysis::Genome;
use hetero_autotune::experiments::{paper_iteration_budgets, ConvergenceStudy};
use hetero_autotune::report::{fmt2, fmt3, format_table};
use hetero_autotune::{TrainedModels, TrainingCampaign};
use hetero_platform::HeterogeneousPlatform;
use wd_ml::BoostingParams;

/// At which scale to run the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full campaign: 7 200 training experiments, the 19 926-point
    /// enumeration grid and iteration budgets 250..=2000.
    Paper,
    /// A scaled-down run (reduced campaign, smaller budgets) for smoke tests.
    Quick,
}

impl Scale {
    /// Training campaign for this scale.
    pub fn campaign(&self) -> TrainingCampaign {
        match self {
            Scale::Paper => TrainingCampaign::paper(),
            Scale::Quick => TrainingCampaign::reduced(),
        }
    }

    /// Boosting hyper-parameters for this scale.
    pub fn boosting(&self) -> BoostingParams {
        match self {
            Scale::Paper => BoostingParams::default(),
            Scale::Quick => BoostingParams::fast(),
        }
    }

    /// Simulated-annealing iteration budgets for this scale.
    pub fn budgets(&self) -> Vec<usize> {
        match self {
            Scale::Paper => paper_iteration_budgets(),
            Scale::Quick => vec![100, 250, 500],
        }
    }

    /// Genomes examined at this scale.
    pub fn genomes(&self) -> Vec<Genome> {
        match self {
            Scale::Paper => Genome::ALL.to_vec(),
            Scale::Quick => vec![Genome::Human, Genome::Cat],
        }
    }
}

/// Everything the tables/figures of the evaluation section need, computed once.
pub struct PaperStudy {
    /// The simulated platform.
    pub platform: HeterogeneousPlatform,
    /// Scale the study was run at.
    pub scale: Scale,
    /// Trained prediction models and their accuracy reports (Figs. 5-8, Tables IV-V).
    pub models: TrainedModels,
    /// Convergence study (Fig. 9, Tables VI-IX).
    pub convergence: ConvergenceStudy,
}

impl PaperStudy {
    /// Run the training campaign and the convergence study at the given scale.
    pub fn run(scale: Scale, seed: u64) -> Self {
        let platform = HeterogeneousPlatform::emil_with_seed(seed);
        let models = scale.campaign().run(&platform, scale.boosting());
        let convergence =
            ConvergenceStudy::run(&platform, &models, &scale.genomes(), &scale.budgets(), seed);
        PaperStudy {
            platform,
            scale,
            models,
            convergence,
        }
    }

    /// Run only the training part (enough for Figs. 5-8 and Tables IV-V).
    pub fn run_training_only(scale: Scale, seed: u64) -> (HeterogeneousPlatform, TrainedModels) {
        let platform = HeterogeneousPlatform::emil_with_seed(seed);
        let models = scale.campaign().run(&platform, scale.boosting());
        (platform, models)
    }
}

/// A [`wd_ml::Regressor`] wrapper counting model invocations (one per predicted row,
/// for both the single and the batched entry points).
///
/// This is the *instrumented objective* the enumeration fast-path bench and the
/// `bench-enumeration` perf artifact use to prove the factorized prediction path
/// really performs fewer model queries — wall-clock alone would not distinguish a
/// faster tree walk from fewer tree walks.
pub struct CountingRegressor<M> {
    inner: M,
    calls: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl<M: wd_ml::Regressor> CountingRegressor<M> {
    /// Wrap `inner`; the returned handle reads the invocation count even after the
    /// regressor has been moved into an evaluator.
    pub fn new(inner: M) -> (Self, std::sync::Arc<std::sync::atomic::AtomicUsize>) {
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        (Self::with_counter(inner, calls.clone()), calls)
    }

    /// Wrap `inner` onto an existing counter, so several models (e.g. one per
    /// device) accumulate into one total.
    pub fn with_counter(inner: M, calls: std::sync::Arc<std::sync::atomic::AtomicUsize>) -> Self {
        CountingRegressor { inner, calls }
    }
}

impl<M: wd_ml::Regressor> wd_ml::Regressor for CountingRegressor<M> {
    fn fit(&mut self, data: &wd_ml::Dataset) -> Result<(), wd_ml::MlError> {
        self.inner.fit(data)
    }

    fn predict_one(&self, features: &[f64]) -> f64 {
        self.calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.predict_one(features)
    }

    fn predict_batch(&self, rows: &[f64], width: usize) -> Vec<f64> {
        if let Some(count) = rows.len().checked_div(width) {
            self.calls
                .fetch_add(count, std::sync::atomic::Ordering::Relaxed);
        }
        self.inner.predict_batch(rows, width)
    }

    fn is_fitted(&self) -> bool {
        self.inner.is_fitted()
    }

    fn name(&self) -> &'static str {
        "counting"
    }
}

/// Build a [`hetero_autotune::PredictionEvaluator`] whose host and device models are
/// wrapped in [`CountingRegressor`]s, plus one shared invocation counter over all of
/// them.
pub fn counting_prediction_evaluator(
    models: &TrainedModels,
    workload: hetero_platform::WorkloadProfile,
) -> (
    hetero_autotune::PredictionEvaluator,
    std::sync::Arc<std::sync::atomic::AtomicUsize>,
) {
    let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let host = CountingRegressor::with_counter(models.host_model.clone(), calls.clone());
    let devices: Vec<Box<dyn wd_ml::Regressor + Send + Sync>> = models
        .device_models
        .iter()
        .map(|model| {
            Box::new(CountingRegressor::with_counter(
                model.clone(),
                calls.clone(),
            )) as Box<dyn wd_ml::Regressor + Send + Sync>
        })
        .collect();
    (
        hetero_autotune::PredictionEvaluator::new(Box::new(host), devices, workload),
        calls,
    )
}

/// The 2-accelerator (Phi + GPU) grid the enumeration fast-path bench and the
/// `bench-enumeration` perf artifact both measure, with 10 % split granularity —
/// one definition so the criterion trajectory and the CI JSON describe the same
/// experiment.
pub fn two_accel_bench_grid() -> hetero_autotune::ConfigurationSpace {
    hetero_autotune::ConfigurationSpace::multi_accelerator(
        vec![2, 12, 24, 48],
        vec![hetero_platform::Affinity::Scatter],
        vec![
            hetero_autotune::DeviceAxis::new(
                vec![30, 60, 120, 240],
                vec![hetero_platform::Affinity::Balanced],
            ),
            hetero_autotune::DeviceAxis::new(
                vec![112, 224, 448],
                vec![hetero_platform::Affinity::Balanced],
            ),
        ],
        100,
    )
}

/// One direct-vs-factorized EML measurement on a grid (see [`measure_fast_path`]).
pub struct FastPathMeasurement {
    /// Number of configurations in the measured grid.
    pub grid_configs: usize,
    /// Wall-clock of enumerating the direct prediction evaluator.
    pub direct: std::time::Duration,
    /// Wall-clock of building the factorized tables.
    pub build: std::time::Duration,
    /// Wall-clock of enumerating through the built tables.
    pub scan: std::time::Duration,
    /// Model invocations of the direct enumeration.
    pub model_queries_direct: usize,
    /// Model invocations of the factorized path (table construction only).
    pub model_queries_tabulated: usize,
    /// Whether both paths agreed on the best index and its energy bits.
    pub identical_best: bool,
}

impl FastPathMeasurement {
    /// Total wall-clock of the factorized path (build + scan).
    pub fn tabulated_total(&self) -> std::time::Duration {
        self.build + self.scan
    }

    /// Direct-over-tabulated model-invocation ratio.
    pub fn query_reduction(&self) -> f64 {
        self.model_queries_direct as f64 / self.model_queries_tabulated.max(1) as f64
    }

    /// Assert the *deterministic* acceptance criteria: bit-identical winner and
    /// ≥ 5× fewer model invocations.  Wall-clock is reported, never asserted — on a
    /// noisy CI runner a scheduling stall must not fail the build when the query
    /// counts already prove the claim.
    pub fn assert_fast_path_won(&self) {
        assert!(
            self.identical_best,
            "factorized EML diverged from the direct path"
        );
        assert!(
            self.model_queries_direct >= 5 * self.model_queries_tabulated,
            "factorization must save >= 5x model invocations ({} direct vs {} tabulated)",
            self.model_queries_direct,
            self.model_queries_tabulated
        );
    }
}

/// Measure EML over `grid` twice — through the direct [`CountingRegressor`]-wrapped
/// prediction evaluator and through the factorized tables — and compare.
pub fn measure_fast_path(
    models: &TrainedModels,
    workload: hetero_platform::WorkloadProfile,
    grid: &hetero_autotune::ConfigurationSpace,
) -> FastPathMeasurement {
    use std::sync::atomic::Ordering;
    use std::time::Instant;
    use wd_opt::{ParallelEnumeration, SearchSpace as _};

    let grid_configs = grid.space_len().expect("bench grids are indexed");

    let (direct, direct_calls) = counting_prediction_evaluator(models, workload.clone());
    let start = Instant::now();
    let reference = ParallelEnumeration::new().run_indexed(grid, &direct);
    let t_direct = start.elapsed();

    let (counted, tabulated_calls) = counting_prediction_evaluator(models, workload);
    let start = Instant::now();
    let tabulated = counted.tabulated(grid);
    let t_build = start.elapsed();
    let start = Instant::now();
    let fast = ParallelEnumeration::new().run_indexed(grid, &tabulated);
    let t_scan = start.elapsed();
    assert_eq!(tabulated.fallback_queries(), 0);

    FastPathMeasurement {
        grid_configs,
        direct: t_direct,
        build: t_build,
        scan: t_scan,
        model_queries_direct: direct_calls.load(Ordering::Relaxed),
        model_queries_tabulated: tabulated_calls.load(Ordering::Relaxed),
        identical_best: reference.best_index == fast.best_index
            && reference.outcome.best_energy.to_bits() == fast.outcome.best_energy.to_bits()
            && reference.outcome.best_config == fast.outcome.best_config,
    }
}

/// One direct-vs-eager-vs-lazy SAML measurement on an annealing space (see
/// [`measure_annealing_fast_path`]).
pub struct AnnealingMeasurement {
    /// Number of configurations in the annealing space.
    pub space_configs: usize,
    /// Iteration budget of the annealer.
    pub iterations: usize,
    /// Evaluation requests the walk performed (initial + one per proposal).
    pub evaluations: usize,
    /// Accepted moves of the (shared) trajectory.
    pub accepted_moves: usize,
    /// Wall-clock of the classic walk: full re-evaluation of the direct models.
    pub direct: std::time::Duration,
    /// Wall-clock of eagerly building the full per-device tables.
    pub eager_build: std::time::Duration,
    /// Wall-clock of the delta walk over the eager tables (excluding the build).
    pub eager_walk: std::time::Duration,
    /// Wall-clock of the delta walk over the lazy (fill-on-first-touch) tables.
    pub lazy: std::time::Duration,
    /// Model invocations of the direct walk.
    pub model_queries_direct: usize,
    /// Model invocations of the eager path (table construction; the walk itself
    /// performs none).
    pub model_queries_eager: usize,
    /// Model invocations of the lazy path (first-touch fills only).
    pub model_queries_lazy: usize,
    /// Whether all three walks produced the same trajectory: identical per-iteration
    /// trace, best configuration and best-energy bits.
    pub identical_trajectories: bool,
}

impl AnnealingMeasurement {
    /// Total wall-clock of the eager path (table build + walk).
    pub fn eager_total(&self) -> std::time::Duration {
        self.eager_build + self.eager_walk
    }

    /// Model invocations per accepted move of the direct walk.
    pub fn queries_per_accepted_direct(&self) -> f64 {
        self.model_queries_direct as f64 / self.accepted_moves.max(1) as f64
    }

    /// Model invocations per accepted move of the lazy delta walk.
    pub fn queries_per_accepted_lazy(&self) -> f64 {
        self.model_queries_lazy as f64 / self.accepted_moves.max(1) as f64
    }

    /// Direct-over-lazy model-invocation ratio (equivalently: the per-accepted-move
    /// ratio, the denominator being the shared trajectory's accepted moves).
    pub fn query_reduction(&self) -> f64 {
        self.model_queries_direct as f64 / self.model_queries_lazy.max(1) as f64
    }

    /// Assert the *deterministic* acceptance criteria: bit-identical trajectories and
    /// ≥ 5× fewer model invocations per accepted move for the lazy delta walk.
    /// Wall-clock is reported, never asserted — on a noisy CI runner a scheduling
    /// stall must not fail the build when the query counts already prove the claim.
    pub fn assert_fast_path_won(&self) {
        assert!(
            self.identical_trajectories,
            "incremental SAML diverged from the direct walk"
        );
        assert!(
            self.model_queries_direct >= 5 * self.model_queries_lazy,
            "the lazy delta walk must save >= 5x model invocations per accepted move \
             ({} direct vs {} lazy over {} accepted moves)",
            self.model_queries_direct,
            self.model_queries_lazy,
            self.accepted_moves
        );
    }
}

/// Run one SAML walk (budget `iterations`, fixed `seed`) over `space` three ways —
/// classic full re-evaluation of the direct models, the incremental
/// (`run_delta`) walk over eagerly built tables, and the incremental walk over lazy
/// fill-on-first-touch tables — counting boosted-tree invocations via
/// [`CountingRegressor`] and checking all three trajectories agree bit for bit.
pub fn measure_annealing_fast_path(
    models: &TrainedModels,
    workload: hetero_platform::WorkloadProfile,
    space: &hetero_autotune::ConfigurationSpace,
    iterations: usize,
    seed: u64,
) -> AnnealingMeasurement {
    use std::sync::atomic::Ordering;
    use std::time::Instant;
    use wd_opt::{SearchSpace as _, SimulatedAnnealing};

    let sa = SimulatedAnnealing::with_budget_and_range(iterations, 2.0, 0.02, seed);

    let (direct, direct_calls) = counting_prediction_evaluator(models, workload.clone());
    let start = Instant::now();
    let reference = sa.run(space, &direct);
    let t_direct = start.elapsed();

    let (eager_counted, eager_calls) = counting_prediction_evaluator(models, workload.clone());
    let start = Instant::now();
    let eager_tables = eager_counted.tabulated(space);
    let t_build = start.elapsed();
    let start = Instant::now();
    let eager = sa.run_delta(space, &eager_tables);
    let t_eager_walk = start.elapsed();
    assert_eq!(
        eager_tables.fallback_queries(),
        0,
        "the walk stays in-space"
    );

    let (lazy_counted, lazy_calls) = counting_prediction_evaluator(models, workload);
    let lazy_tables = lazy_counted.lazy_tabulated();
    let start = Instant::now();
    let lazy = sa.run_delta(space, &lazy_tables);
    let t_lazy = start.elapsed();

    let identical = |outcome: &wd_opt::Outcome<hetero_autotune::SystemConfiguration>| {
        outcome.best_config == reference.best_config
            && outcome.best_energy.to_bits() == reference.best_energy.to_bits()
            && outcome.trace.records() == reference.trace.records()
    };
    AnnealingMeasurement {
        space_configs: space.space_len().expect("bench spaces are indexed"),
        iterations,
        evaluations: reference.evaluations,
        accepted_moves: reference
            .trace
            .records()
            .iter()
            .filter(|record| record.accepted)
            .count(),
        direct: t_direct,
        eager_build: t_build,
        eager_walk: t_eager_walk,
        lazy: t_lazy,
        model_queries_direct: direct_calls.load(Ordering::Relaxed),
        model_queries_eager: eager_calls.load(Ordering::Relaxed),
        model_queries_lazy: lazy_calls.load(Ordering::Relaxed),
        identical_trajectories: identical(&eager) && identical(&lazy),
    }
}

/// One reference-vs-blocked(-vs-SIMD) measurement of the flat-forest batch kernels
/// (see [`measure_prediction_kernel`]).
pub struct PredictionKernelMeasurement {
    /// Rows per predicted batch.
    pub rows: usize,
    /// Features per row.
    pub width: usize,
    /// Trees in the measured ensemble.
    pub trees: usize,
    /// Timed repetitions per kernel (each duration below is the best of these).
    pub repeats: usize,
    /// Best wall-clock of the seed kernel (checked, branchy, tree-major).
    pub reference: std::time::Duration,
    /// Best wall-clock of the cache-blocked branch-free kernel.
    pub blocked: std::time::Duration,
    /// Best wall-clock of the explicit-SIMD lane (`--features simd` builds only).
    pub simd: Option<std::time::Duration>,
    /// Whether every kernel reproduced the `predict_one` row loop bit for bit.
    pub identical: bool,
}

impl PredictionKernelMeasurement {
    /// Reference-over-blocked wall-clock ratio.
    pub fn blocked_speedup(&self) -> f64 {
        self.reference.as_secs_f64() / self.blocked.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Reference-over-SIMD wall-clock ratio, when the SIMD lane was measured.
    pub fn simd_speedup(&self) -> Option<f64> {
        self.simd
            .map(|simd| self.reference.as_secs_f64() / simd.as_secs_f64().max(f64::MIN_POSITIVE))
    }

    /// Assert the acceptance criteria: bit-identical predictions and a ≥ 2× blocked
    /// kernel.  Unlike the query-count artifacts this one *does* gate on wall-clock —
    /// the kernel rework claims raw speed, and query counts cannot witness that —
    /// so the ratio is taken between best-of-[`PredictionKernelMeasurement::repeats`]
    /// times of the same in-process batch, which cancels machine speed and absorbs
    /// scheduling noise.
    pub fn assert_fast_path_won(&self) {
        assert!(
            self.identical,
            "a batch kernel diverged from the predict_one row loop"
        );
        assert!(
            self.blocked_speedup() >= 2.0,
            "the blocked kernel must be >= 2x the seed kernel (got {:.2}x: {:.1} us vs {:.1} us)",
            self.blocked_speedup(),
            self.reference.as_secs_f64() * 1e6,
            self.blocked.as_secs_f64() * 1e6,
        );
    }
}

/// A deterministic boosted ensemble plus one EML-tabulation-sized batch
/// (`rows × width`, the 256-row chunks the table builders feed
/// [`wd_ml::Regressor::predict_batch`]) for the flat-kernel measurements — one
/// definition so the criterion trajectory and the CI JSON describe the same
/// experiment.  Synthetic (LCG-drawn) features keep the fit off the hot path: the
/// kernels only care about tree *shape*, not accuracy.
pub fn kernel_bench_forest() -> (wd_ml::BoostedTreesRegressor, Vec<f64>, usize) {
    use wd_ml::Regressor as _;

    const WIDTH: usize = 5;
    const TRAIN_ROWS: usize = 800;
    const BATCH_ROWS: usize = 256;

    // deterministic pseudo-random features without pulling an RNG into the bench API
    let mut state = 0x9e37_79b9_97f4_a7c1u64;
    let mut draw = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };

    let mut data = wd_ml::Dataset::new((0..WIDTH).map(|i| format!("f{i}")).collect::<Vec<_>>());
    for _ in 0..TRAIN_ROWS {
        let features: Vec<f64> = (0..WIDTH).map(|_| draw() * 10.0).collect();
        let target = features[0] * features[1].sin() + (features[2] - 5.0).abs()
            - features[3] * 0.25
            + (features[4] * 0.7).cos() * 3.0;
        data.push(features, target).expect("row width is fixed");
    }
    let mut model = wd_ml::BoostedTreesRegressor::new(wd_ml::BoostingParams::default());
    model.fit(&data).expect("synthetic dataset is well-formed");

    let batch: Vec<f64> = (0..BATCH_ROWS * WIDTH).map(|_| draw() * 10.0).collect();
    (model, batch, WIDTH)
}

/// Time the flat-forest batch kernels (seed/reference, cache-blocked, and — in
/// `--features simd` builds — the explicit-SIMD lane) over the same batch,
/// `repeats` times each keeping the best, and check every kernel against the
/// `predict_one` row loop bit for bit.
pub fn measure_prediction_kernel(
    model: &wd_ml::BoostedTreesRegressor,
    rows: &[f64],
    width: usize,
    repeats: usize,
) -> PredictionKernelMeasurement {
    use std::time::{Duration, Instant};
    use wd_ml::Regressor as _;

    let repeats = repeats.max(1);
    let best_of = |kernel: &dyn Fn() -> Vec<f64>| -> (Duration, Vec<f64>) {
        let mut best = Duration::MAX;
        let mut output = kernel(); // warm-up pass, also the checked output
        for _ in 0..repeats {
            let start = Instant::now();
            let predictions = kernel();
            let elapsed = start.elapsed();
            if elapsed < best {
                best = elapsed;
            }
            output = predictions;
        }
        (best, output)
    };

    let (t_reference, reference) = best_of(&|| model.predict_batch_reference(rows, width));
    let (t_blocked, blocked) = best_of(&|| model.predict_batch_blocked(rows, width));
    #[cfg(feature = "simd")]
    let simd = Some(best_of(&|| model.predict_batch_simd(rows, width)));
    #[cfg(not(feature = "simd"))]
    let simd: Option<(Duration, Vec<f64>)> = None;

    let row_loop: Vec<f64> = rows
        .chunks(width.max(1))
        .map(|row| model.predict_one(row))
        .collect();
    let bits = |values: &[f64]| values.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    let mut identical = bits(&reference) == bits(&row_loop) && bits(&blocked) == bits(&row_loop);
    if let Some((_, ref lanes)) = simd {
        identical = identical && bits(lanes) == bits(&row_loop);
    }

    PredictionKernelMeasurement {
        rows: rows.len() / width.max(1),
        width,
        trees: model.tree_count(),
        repeats,
        reference: t_reference,
        blocked: t_blocked,
        simd: simd.map(|(t, _)| t),
        identical,
    }
}

/// One direct-vs-lazy-delta GA measurement on a search space (see
/// [`measure_genetic_fast_path`]).
pub struct GeneticMeasurement {
    /// Number of configurations in the search space.
    pub space_configs: usize,
    /// Evaluation budget handed to [`wd_opt::GeneticAlgorithm::with_budget`].
    pub iterations: usize,
    /// Generations the GA actually ran (trace records).
    pub generations: usize,
    /// Evaluation requests of the run (initial population + one per child).
    pub evaluations: usize,
    /// Wall-clock of the classic run: full re-evaluation of the direct models.
    pub direct: std::time::Duration,
    /// Wall-clock of the delta run over the lazy (fill-on-first-touch) tables.
    pub lazy: std::time::Duration,
    /// Model invocations of the direct run.
    pub model_queries_direct: usize,
    /// Model invocations of the lazy delta run (first-touch fills only).
    pub model_queries_lazy: usize,
    /// Whether both runs produced the same trajectory: identical per-generation
    /// trace, best configuration and best-energy bits.
    pub identical_trajectories: bool,
}

impl GeneticMeasurement {
    /// Model invocations per generation of the direct run.
    pub fn queries_per_generation_direct(&self) -> f64 {
        self.model_queries_direct as f64 / self.generations.max(1) as f64
    }

    /// Model invocations per generation of the lazy delta run.
    pub fn queries_per_generation_lazy(&self) -> f64 {
        self.model_queries_lazy as f64 / self.generations.max(1) as f64
    }

    /// Direct-over-lazy model-invocation ratio.
    pub fn query_reduction(&self) -> f64 {
        self.model_queries_direct as f64 / self.model_queries_lazy.max(1) as f64
    }

    /// Assert the *deterministic* acceptance criteria: bit-identical trajectories and
    /// ≥ 5× fewer model invocations per generation for the delta run.  Wall-clock is
    /// reported, never asserted — on a noisy CI runner a scheduling stall must not
    /// fail the build when the query counts already prove the claim.
    pub fn assert_fast_path_won(&self) {
        assert!(
            self.identical_trajectories,
            "the GA's incremental recombination path diverged from the direct run"
        );
        assert!(
            self.model_queries_direct >= 5 * self.model_queries_lazy,
            "the GA delta run must save >= 5x model invocations per generation \
             ({} direct vs {} lazy over {} generations)",
            self.model_queries_direct,
            self.model_queries_lazy,
            self.generations
        );
    }
}

/// Run one GA (budget `iterations`, fixed `seed`) over `space` two ways — the
/// classic full re-evaluation of the direct models (`run`) and the incremental
/// recombination path (`run_delta`) over lazy fill-on-first-touch tables, where
/// each child is re-scored against its first parent's retained per-device times —
/// counting boosted-tree invocations via [`CountingRegressor`] and checking both
/// trajectories agree bit for bit.
pub fn measure_genetic_fast_path(
    models: &TrainedModels,
    workload: hetero_platform::WorkloadProfile,
    space: &hetero_autotune::ConfigurationSpace,
    iterations: usize,
    seed: u64,
) -> GeneticMeasurement {
    use std::sync::atomic::Ordering;
    use std::time::Instant;
    use wd_opt::{GeneticAlgorithm, SearchSpace as _};

    let ga = GeneticAlgorithm::with_budget(iterations, seed);

    let (direct, direct_calls) = counting_prediction_evaluator(models, workload.clone());
    let start = Instant::now();
    let reference = ga.run(space, &direct);
    let t_direct = start.elapsed();

    let (lazy_counted, lazy_calls) = counting_prediction_evaluator(models, workload);
    let lazy_tables = lazy_counted.lazy_tabulated();
    let start = Instant::now();
    let lazy = ga.run_delta(space, &lazy_tables);
    let t_lazy = start.elapsed();

    GeneticMeasurement {
        space_configs: space.space_len().expect("bench spaces are indexed"),
        iterations,
        generations: reference.trace.records().len(),
        evaluations: reference.evaluations,
        direct: t_direct,
        lazy: t_lazy,
        model_queries_direct: direct_calls.load(Ordering::Relaxed),
        model_queries_lazy: lazy_calls.load(Ordering::Relaxed),
        identical_trajectories: lazy.best_config == reference.best_config
            && lazy.best_energy.to_bits() == reference.best_energy.to_bits()
            && lazy.evaluations == reference.evaluations
            && lazy.trace.records() == reference.trace.records(),
    }
}

/// One observability-overhead measurement of a SAML walk (see
/// [`measure_observability_overhead`]): the same delta walk timed unobserved and
/// under three recorders, plus the fidelity checks that make the timings meaningful.
#[derive(Debug, Clone)]
pub struct ObservabilityMeasurement {
    /// Number of configurations in the search space.
    pub space_configs: usize,
    /// Iteration budget of each walk.
    pub iterations: usize,
    /// Timed repeats per variant (each timing below is the best of these).
    pub repeats: usize,
    /// Back-to-back walks per timed sample, auto-sized from a warmup walk so every
    /// sample is long enough for the 2 % comparison to be above timer noise.
    pub rounds: usize,
    /// Best-of-repeats per-walk duration of the plain `run_delta` walk.
    pub unobserved: std::time::Duration,
    /// Best-of-repeats per-walk duration under the disabled [`wd_obs::NoopRecorder`].
    pub noop: std::time::Duration,
    /// Best-of-repeats per-walk duration under an in-memory [`wd_obs::Registry`].
    pub registry: std::time::Duration,
    /// Best-of-repeats per-walk duration under a [`wd_obs::JsonlExporter`] writing
    /// every iteration event to disk.
    pub exporter: std::time::Duration,
    /// Median over repeats of the per-repeat `noop / unobserved` duration ratio.
    /// Both samples of a pair run inside the same repeat window, so they share the
    /// machine's momentary state (frequency, cache pressure) — the paired ratio is
    /// stable where cross-run minima on a busy host are not.
    pub noop_ratio: f64,
    /// Median paired `registry / unobserved` duration ratio (see `noop_ratio`).
    pub registry_ratio: f64,
    /// Median paired `exporter / unobserved` duration ratio (see `noop_ratio`).
    pub exporter_ratio: f64,
    /// Events the last exporter run wrote to its JSONL file.
    pub events_written: u64,
    /// Bytes the last exporter run wrote to its JSONL file.
    pub bytes_written: u64,
    /// All four walks produced bit-identical outcomes and traces.
    pub identical_trajectories: bool,
    /// Replaying the exporter's JSONL file reconstructed the walk's best-energy
    /// series bit for bit, using nothing but the file.
    pub replay_matches: bool,
}

impl ObservabilityMeasurement {
    /// Fractional overhead of the disabled [`wd_obs::NoopRecorder`] (0.01 = 1 %),
    /// from the median paired ratio.
    pub fn noop_overhead(&self) -> f64 {
        self.noop_ratio - 1.0
    }

    /// Fractional overhead of recording every iteration into a [`wd_obs::Registry`].
    pub fn registry_overhead(&self) -> f64 {
        self.registry_ratio - 1.0
    }

    /// Fractional overhead of streaming every iteration event to a JSONL file.
    pub fn exporter_overhead(&self) -> f64 {
        self.exporter_ratio - 1.0
    }

    /// Assert the observability acceptance criteria: every observed walk is
    /// bit-identical to the unobserved one, the exporter's file alone reconstructs
    /// the best-energy series, and the disabled [`wd_obs::NoopRecorder`] costs less
    /// than 2 % wall-clock (compared on the median paired ratio, which is stable
    /// even on a noisy runner).
    pub fn assert_noop_is_free(&self) {
        assert!(
            self.identical_trajectories,
            "an observed SAML walk diverged from the unobserved run"
        );
        assert!(
            self.replay_matches,
            "replaying the exporter's JSONL file did not reconstruct the walk's \
             best-energy series bit for bit"
        );
        assert!(
            self.noop_ratio <= 1.02,
            "NoopRecorder overhead {:.2}% exceeds the 2% bound (median paired ratio over {} repeats; best walks {:?} observed vs {:?} unobserved)",
            self.noop_overhead() * 100.0,
            self.repeats,
            self.noop,
            self.unobserved
        );
    }
}

/// Run one SAML walk (budget `iterations`, fixed `seed`) over `space` four ways —
/// the plain `run_delta`, and `run_delta_observed` under the disabled
/// [`wd_obs::NoopRecorder`], an in-memory [`wd_obs::Registry`], and a
/// [`wd_obs::JsonlExporter`] streaming every iteration event to a temporary JSONL
/// file — timing each walk as the best of `repeats` interleaved runs over fresh
/// lazy tables (so every variant pays the same fill-on-first-touch cost), checking
/// all trajectories agree bit for bit, and replaying the exporter's file to verify
/// the recorded event stream alone reconstructs the walk's best-energy series.
pub fn measure_observability_overhead(
    models: &TrainedModels,
    workload: hetero_platform::WorkloadProfile,
    space: &hetero_autotune::ConfigurationSpace,
    iterations: usize,
    seed: u64,
    repeats: usize,
) -> ObservabilityMeasurement {
    use std::time::{Duration, Instant};
    use wd_obs::{EventLog, JsonlExporter, NoopRecorder, Registry};
    use wd_opt::{SearchSpace as _, SimulatedAnnealing};

    assert!(repeats > 0, "need at least one timed repeat");
    let sa = SimulatedAnnealing::with_budget_and_range(iterations, 2.0, 0.02, seed);
    let scope = "saml";

    // Warmup: one untimed-for-scoring walk that doubles as the duration estimate.
    // Every variant runs the exact same monomorphized loop (the unobserved entry
    // points delegate to the observed ones), so the measured difference is timer
    // noise unless each sample is comfortably above it — size the per-sample round
    // count so a sample spans at least a few milliseconds.
    let (reference, rounds) = {
        let (counted, _calls) = counting_prediction_evaluator(models, workload.clone());
        let tables = counted.lazy_tabulated();
        let start = Instant::now();
        let outcome = sa.run_delta(space, &tables);
        let per_walk = start.elapsed().max(Duration::from_micros(1));
        let rounds = (Duration::from_millis(10).as_secs_f64() / per_walk.as_secs_f64()).ceil();
        (outcome, (rounds as usize).clamp(1, 100))
    };

    let mut identical = true;
    let mut best = [Duration::MAX; 4];
    let mut events_written = 0u64;
    let mut bytes_written = 0u64;
    let exporter_path =
        std::env::temp_dir().join(format!("wd_obs_overhead_{}.jsonl", std::process::id()));

    // One timed sample = `rounds` back-to-back walks; evaluators (model clones) are
    // built outside the timer, the cheap lazy-table construction inside it — the
    // same split for every variant, so the comparison stays fair.
    let mut sample =
        |run: &mut dyn FnMut(
            &hetero_autotune::PredictionEvaluator,
        ) -> wd_opt::Outcome<hetero_autotune::SystemConfiguration>|
         -> Duration {
            let evaluators: Vec<hetero_autotune::PredictionEvaluator> = (0..rounds)
                .map(|_| counting_prediction_evaluator(models, workload.clone()).0)
                .collect();
            let mut outcomes = Vec::with_capacity(rounds);
            let start = Instant::now();
            for evaluator in &evaluators {
                outcomes.push(run(evaluator));
            }
            let elapsed = start.elapsed();
            for outcome in &outcomes {
                identical &= outcomes_identical(&reference, outcome);
            }
            elapsed / rounds as u32
        };

    // The variant order rotates per repeat so no variant systematically runs in the
    // wake of another's work (the exporter's disk I/O in particular) — with a fixed
    // order that aftermath biases whichever variant follows it.
    let mut times = vec![[Duration::ZERO; 4]; repeats];
    for (repeat, repeat_times) in times.iter_mut().enumerate() {
        for slot in 0..4 {
            let variant = (slot + repeat) % 4;
            let t = match variant {
                // unobserved run_delta
                0 => sample(&mut |evaluator| sa.run_delta(space, &evaluator.lazy_tabulated())),
                // observed, disabled NoopRecorder
                1 => sample(&mut |evaluator| {
                    sa.run_delta_observed(space, &evaluator.lazy_tabulated(), &NoopRecorder, scope)
                }),
                // observed, in-memory registry
                2 => sample(&mut |evaluator| {
                    let registry = Registry::new();
                    sa.run_delta_observed(space, &evaluator.lazy_tabulated(), &registry, scope)
                }),
                // observed, JSONL exporter streaming to disk (recreating the scratch
                // file each round, so the replay below sees exactly one walk)
                _ => sample(&mut |evaluator| {
                    let exporter = JsonlExporter::create(&exporter_path)
                        .expect("create the scratch JSONL file");
                    let outcome =
                        sa.run_delta_observed(space, &evaluator.lazy_tabulated(), &exporter, scope);
                    exporter.flush().expect("flush the scratch JSONL file");
                    events_written = exporter.events_written();
                    bytes_written = exporter.bytes_written();
                    outcome
                }),
            };
            best[variant] = best[variant].min(t);
            repeat_times[variant] = t;
        }
    }
    let median_ratio = |variant: usize| -> f64 {
        let mut ratios: Vec<f64> = times
            .iter()
            .map(|t| t[variant].as_secs_f64() / t[0].as_secs_f64().max(f64::MIN_POSITIVE))
            .collect();
        ratios.sort_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };

    // Replay the last exporter file: the event stream alone must reconstruct the
    // best-energy series of the walk, bit for bit.
    let replayed = EventLog::read(&exporter_path)
        .expect("read back the exporter's JSONL file")
        .best_energy_series(scope);
    let expected: Vec<u64> = reference
        .trace
        .records()
        .iter()
        .map(|record| record.best_energy.to_bits())
        .collect();
    let replay_matches = replayed.len() == expected.len()
        && replayed
            .iter()
            .zip(&expected)
            .all(|(a, b)| a.to_bits() == *b);
    let _ = std::fs::remove_file(&exporter_path);

    ObservabilityMeasurement {
        space_configs: space.space_len().expect("bench spaces are indexed"),
        iterations,
        repeats,
        rounds,
        unobserved: best[0],
        noop: best[1],
        registry: best[2],
        exporter: best[3],
        noop_ratio: median_ratio(1),
        registry_ratio: median_ratio(2),
        exporter_ratio: median_ratio(3),
        events_written,
        bytes_written,
        identical_trajectories: identical,
        replay_matches,
    }
}

fn outcomes_identical(
    a: &wd_opt::Outcome<hetero_autotune::SystemConfiguration>,
    b: &wd_opt::Outcome<hetero_autotune::SystemConfiguration>,
) -> bool {
    a.best_config == b.best_config
        && a.best_energy.to_bits() == b.best_energy.to_bits()
        && a.evaluations == b.evaluations
        && a.trace.records() == b.trace.records()
}

/// Render a `(label, values-per-budget)` table with one column per iteration budget,
/// as used by Tables VI and VII.
pub fn render_budget_table(
    caption: &str,
    budgets: &[usize],
    rows: &[(String, Vec<f64>)],
) -> String {
    let mut headers = vec!["DNA".to_string()];
    headers.extend(budgets.iter().map(|b| b.to_string()));
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, values)| {
            let mut row = vec![label.clone()];
            row.extend(values.iter().map(|v| fmt3(*v)));
            row
        })
        .collect();
    format!("{caption}\n{}", format_table(&headers, &body))
}

/// Render a speedup table (Tables VIII and IX): one column per budget plus the EM column.
pub fn render_speedup_table(
    caption: &str,
    budgets: &[usize],
    rows: &[(String, Vec<f64>, f64)],
) -> String {
    let mut headers = vec!["DNA".to_string()];
    headers.extend(budgets.iter().map(|b| b.to_string()));
    headers.push("EM".to_string());
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, values, em)| {
            let mut row = vec![label.clone()];
            row.extend(values.iter().map(|v| fmt2(*v)));
            row.push(fmt2(*em));
            row
        })
        .collect();
    format!("{caption}\n{}", format_table(&headers, &body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wd_ml::Regressor as _;

    #[test]
    fn quick_scale_is_small() {
        assert!(Scale::Quick.campaign().total_experiment_count() < 1000);
        assert!(Scale::Quick.budgets().len() < Scale::Paper.budgets().len());
        assert_eq!(Scale::Paper.campaign().total_experiment_count(), 7200);
        assert_eq!(Scale::Paper.genomes().len(), 4);
    }

    #[test]
    fn budget_table_renders_all_rows_and_columns() {
        let budgets = vec![250, 500];
        let rows = vec![
            ("human".to_string(), vec![22.15, 16.17]),
            ("average".to_string(), vec![19.68, 14.07]),
        ];
        let table = render_budget_table("Table VI", &budgets, &rows);
        assert!(table.contains("Table VI"));
        assert!(table.contains("human"));
        assert!(table.contains("average"));
        assert!(table.contains("250") && table.contains("500"));
        assert!(table.contains("22.150"));
    }

    #[test]
    fn speedup_table_has_an_em_column() {
        let budgets = vec![1000];
        let rows = vec![("dog".to_string(), vec![1.56], 1.69)];
        let table = render_speedup_table("Table VIII", &budgets, &rows);
        assert!(table.contains("EM"));
        assert!(table.contains("1.56"));
        assert!(table.contains("1.69"));
    }

    #[test]
    fn prediction_kernel_measurement_is_bit_identical() {
        let (model, batch, width) = kernel_bench_forest();
        // wall-clock is not asserted here (unit tests run unoptimised); the ≥ 2×
        // gate lives in the release-built bench and the repro artifact
        let m = measure_prediction_kernel(&model, &batch, width, 2);
        assert!(m.identical, "a batch kernel diverged from predict_one");
        assert_eq!(m.rows, 256);
        assert_eq!(m.width, 5);
        assert!(m.trees > 0);
        assert!(m.blocked_speedup() > 0.0);
        #[cfg(feature = "simd")]
        assert!(m.simd.is_some() && m.simd_speedup().is_some());
        #[cfg(not(feature = "simd"))]
        assert!(m.simd.is_none() && m.simd_speedup().is_none());
    }

    #[test]
    fn genetic_fast_path_measurement_is_deterministic() {
        let platform = HeterogeneousPlatform::emil_with_gpu();
        let models = hetero_autotune::TrainingCampaign::reduced_for(&platform)
            .run(&platform, BoostingParams::fast());
        let space = hetero_autotune::ConfigurationSpace::tiny_multi();
        let m = measure_genetic_fast_path(&models, Genome::Human.workload(), &space, 200, 41);
        // the query-count criteria are deterministic, so the full acceptance gate
        // runs even unoptimised
        m.assert_fast_path_won();
        assert!(m.generations > 0);
        assert!(m.evaluations >= 200);
        assert!(m.query_reduction() >= 5.0);
    }

    #[test]
    fn quick_study_end_to_end() {
        let study = PaperStudy::run(Scale::Quick, 1);
        assert_eq!(study.scale, Scale::Quick);
        assert!(study.models.host_model.is_fitted());
        assert_eq!(study.convergence.cases.len(), 2);
        let table = study.convergence.percent_difference_rows();
        // two genomes + the average row
        assert_eq!(table.len(), 3);
    }
}
