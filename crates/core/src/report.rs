//! Minimal plain-text table formatting used by the `repro` binary and the examples.

/// Render a fixed-width text table.  The first row of `rows` is printed under a
/// separator line following the headers.
pub fn format_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }

    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, width) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!("{cell:>width$}"));
            if i + 1 != widths.len() {
                line.push_str("  ");
            }
        }
        line.push('\n');
        line
    };

    out.push_str(&render_row(headers, &widths));
    let total_width: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
    out.push_str(&"-".repeat(total_width));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Format a float with three decimal places (the precision of most paper tables).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Format a float with two decimal places (used for speedups).
pub fn fmt2(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let headers = vec!["DNA".to_string(), "250".to_string(), "500".to_string()];
        let rows = vec![
            vec![
                "human".to_string(),
                "22.15".to_string(),
                "16.17".to_string(),
            ],
            vec![
                "mouse".to_string(),
                "22.80".to_string(),
                "16.84".to_string(),
            ],
        ];
        let table = format_table(&headers, &rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("DNA") && lines[0].contains("500"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("human"));
        assert!(lines[3].contains("mouse"));
        // columns align: every data line has the same length
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let headers = vec!["a".to_string(), "b".to_string()];
        let rows = vec![vec!["only".to_string()]];
        let table = format_table(&headers, &rows);
        assert!(table.contains("only"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt2(1.746), "1.75");
    }
}
