//! Selection of the performance-prediction model family.
//!
//! Section III-B of the paper: "we have considered various supervised machine learning
//! approaches, including Linear Regression, Poisson Regression, and the Boosted
//! Decision Tree Regression.  In our performance prediction experiments, we achieved
//! more accurate prediction results with the Boosted Decision Tree Regression."
//!
//! This module reproduces that comparison: it cross-validates the three candidate
//! families on the training-campaign data and reports which one wins.

use hetero_platform::HeterogeneousPlatform;
use wd_ml::{
    k_fold_cross_validation, BoostedTreesRegressor, BoostingParams, Dataset, LinearRegressor,
    PoissonRegressor,
};

use crate::training::TrainingCampaign;

/// A candidate model family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Gradient-boosted decision trees (the paper's choice).
    BoostedTrees,
    /// Ordinary least-squares linear regression.
    Linear,
    /// Poisson (log-link) regression.
    Poisson,
}

impl ModelFamily {
    /// All candidate families the paper mentions.
    pub const ALL: [ModelFamily; 3] = [
        ModelFamily::BoostedTrees,
        ModelFamily::Linear,
        ModelFamily::Poisson,
    ];

    /// Human readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelFamily::BoostedTrees => "boosted decision trees",
            ModelFamily::Linear => "linear regression",
            ModelFamily::Poisson => "poisson regression",
        }
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cross-validated accuracy of one family on one side of the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyScore {
    /// The model family.
    pub family: ModelFamily,
    /// Mean absolute percent error across folds.
    pub mape: f64,
    /// Mean RMSE across folds (seconds).
    pub rmse: f64,
}

/// The full comparison for the host model and one comparison per accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelComparison {
    /// Scores on the host-side campaign data.
    pub host: Vec<FamilyScore>,
    /// Scores on each accelerator's campaign data, in device order.
    pub devices: Vec<Vec<FamilyScore>>,
}

impl ModelComparison {
    /// Compare all families with `folds`-fold cross-validation on the campaign's data
    /// (every accelerator of the platform is cross-validated separately).
    pub fn run(
        platform: &HeterogeneousPlatform,
        campaign: &TrainingCampaign,
        boosting: BoostingParams,
        folds: usize,
        seed: u64,
    ) -> Self {
        let host_data = campaign.host_dataset(platform);
        let devices = (0..campaign.device_axes.len())
            .map(|index| {
                let device_data = campaign.device_dataset(platform, index);
                Self::score_all(&device_data, boosting, folds, seed)
            })
            .collect();
        ModelComparison {
            host: Self::score_all(&host_data, boosting, folds, seed),
            devices,
        }
    }

    fn score_all(
        data: &Dataset,
        boosting: BoostingParams,
        folds: usize,
        seed: u64,
    ) -> Vec<FamilyScore> {
        ModelFamily::ALL
            .iter()
            .map(|&family| {
                let cv = match family {
                    ModelFamily::BoostedTrees => k_fold_cross_validation(data, folds, seed, || {
                        BoostedTreesRegressor::new(boosting)
                    }),
                    ModelFamily::Linear => {
                        k_fold_cross_validation(data, folds, seed, LinearRegressor::new)
                    }
                    ModelFamily::Poisson => {
                        k_fold_cross_validation(data, folds, seed, PoissonRegressor::new)
                    }
                }
                .expect("campaign data is non-empty");
                FamilyScore {
                    family,
                    mape: cv.mean_mape(),
                    rmse: cv.mean_rmse(),
                }
            })
            .collect()
    }

    /// The family with the lowest MAPE on the host data.
    pub fn best_host_family(&self) -> ModelFamily {
        Self::best_of(&self.host)
    }

    /// The family with the lowest MAPE on the first accelerator's data.
    pub fn best_device_family(&self) -> ModelFamily {
        Self::best_of(&self.devices[0])
    }

    /// The family with the lowest MAPE on accelerator `index`'s data.
    pub fn best_device_family_for(&self, index: usize) -> ModelFamily {
        Self::best_of(&self.devices[index])
    }

    fn best_of(scores: &[FamilyScore]) -> ModelFamily {
        scores
            .iter()
            .min_by(|a, b| a.mape.total_cmp(&b.mape))
            .map(|s| s.family)
            .unwrap_or(ModelFamily::BoostedTrees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boosted_trees_win_the_model_comparison() {
        // Reproduces the paper's model-selection claim on the reduced campaign: the
        // boosted decision trees beat the linear and Poisson baselines on both sides.
        let platform = HeterogeneousPlatform::emil();
        let comparison = ModelComparison::run(
            &platform,
            &TrainingCampaign::reduced(),
            BoostingParams::fast(),
            4,
            3,
        );
        assert_eq!(comparison.host.len(), 3);
        assert_eq!(comparison.devices.len(), 1);
        assert_eq!(comparison.devices[0].len(), 3);
        assert_eq!(comparison.best_host_family(), ModelFamily::BoostedTrees);
        assert_eq!(comparison.best_device_family(), ModelFamily::BoostedTrees);
        assert_eq!(
            comparison.best_device_family_for(0),
            comparison.best_device_family()
        );
        for score in comparison
            .host
            .iter()
            .chain(comparison.devices.iter().flatten())
        {
            assert!(score.mape.is_finite() && score.mape >= 0.0);
            assert!(score.rmse.is_finite() && score.rmse >= 0.0);
        }
    }

    #[test]
    fn family_names_are_stable() {
        assert_eq!(ModelFamily::ALL.len(), 3);
        assert_eq!(
            ModelFamily::BoostedTrees.to_string(),
            "boosted decision trees"
        );
        assert_eq!(ModelFamily::Linear.name(), "linear regression");
        assert_eq!(ModelFamily::Poisson.name(), "poisson regression");
    }
}
