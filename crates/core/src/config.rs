//! System configurations and the discrete configuration space (the paper's Table I),
//! generalised from host + 1 accelerator to host + N accelerators.
//!
//! The paper's architecture allows one to eight accelerators per node; its evaluation
//! fixes N = 1.  A [`SystemConfiguration`] therefore carries one [`DeviceSetting`]
//! (threads, affinity, workload share) *per accelerator*, and a [`ConfigurationSpace`]
//! carries one [`DeviceAxis`] per accelerator plus an explicit list of candidate
//! workload splits.  Shares are stored in permille on a discrete simplex
//! (`host + Σ devices = 1000`), so configurations stay `Eq + Hash` and the space stays
//! exactly enumerable — the properties every method in [`wd_opt`] relies on.

use std::fmt;

use hetero_platform::{Affinity, ExecutionConfig, Partition};
use rand::rngs::StdRng;
use rand::Rng;
use wd_opt::{SearchSpace, Touched};

/// Tuning knobs of one accelerator: thread count, affinity and its workload share in
/// permille.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceSetting {
    /// Number of threads on this accelerator.
    pub threads: u32,
    /// Thread affinity on this accelerator.
    pub affinity: Affinity,
    /// Share of the workload processed by this accelerator, in permille (0..=1000).
    pub permille: u32,
}

impl DeviceSetting {
    /// Convenience constructor.
    pub fn new(threads: u32, affinity: Affinity, permille: u32) -> Self {
        DeviceSetting {
            threads,
            affinity,
            permille,
        }
    }

    /// This device's share as a fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        f64::from(self.permille) / 1000.0
    }
}

/// One *system configuration*: the tuning knobs the paper optimizes, for a node with
/// one host and any number of accelerators.
///
/// Workload shares are stored in permille (0..=1000) so that both the paper's
/// 1 %-granularity search space and its 2.5 %-granularity enumeration grid can be
/// represented exactly with integer (hashable) configurations.  The share fields are
/// private and maintained under the invariant
/// `host_permille + Σ device permilles == 1000`; constructing a configuration with
/// out-of-range or non-summing shares is an error, so two distinct in-memory values
/// can never describe the same semantic split (which used to create duplicate records
/// in persistent stores).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystemConfiguration {
    /// Number of threads on the host CPUs.
    pub host_threads: u32,
    /// Thread affinity on the host (`none` / `scatter` / `compact`).
    pub host_affinity: Affinity,
    host_permille: u32,
    devices: Vec<DeviceSetting>,
}

impl SystemConfiguration {
    /// Build a configuration from explicit shares.
    ///
    /// Fails unless every share lies in `0..=1000` and
    /// `host_permille + Σ devices[i].permille == 1000`, and at least one accelerator
    /// is described.
    pub fn new(
        host_threads: u32,
        host_affinity: Affinity,
        host_permille: u32,
        devices: Vec<DeviceSetting>,
    ) -> Result<Self, String> {
        if devices.is_empty() {
            return Err("a system configuration needs at least one accelerator".to_string());
        }
        if host_permille > 1000 || devices.iter().any(|d| d.permille > 1000) {
            return Err(format!(
                "shares must lie in 0..=1000 permille, got host {host_permille}, devices {:?}",
                devices.iter().map(|d| d.permille).collect::<Vec<_>>()
            ));
        }
        let sum: u32 = host_permille + devices.iter().map(|d| d.permille).sum::<u32>();
        if sum != 1000 {
            return Err(format!(
                "shares must sum to 1000 permille, got {sum} (host {host_permille}, devices {:?})",
                devices.iter().map(|d| d.permille).collect::<Vec<_>>()
            ));
        }
        Ok(SystemConfiguration {
            host_threads,
            host_affinity,
            host_permille,
            devices,
        })
    }

    /// Create a single-accelerator configuration from a host percentage.
    ///
    /// Percentages above 100 are normalized to 100 (everything on the host), so every
    /// constructible configuration satisfies the share invariant.
    pub fn with_host_percent(
        host_threads: u32,
        host_affinity: Affinity,
        device_threads: u32,
        device_affinity: Affinity,
        host_percent: u32,
    ) -> Self {
        let host_permille = host_percent.min(100) * 10;
        SystemConfiguration {
            host_threads,
            host_affinity,
            host_permille,
            devices: vec![DeviceSetting::new(
                device_threads,
                device_affinity,
                1000 - host_permille,
            )],
        }
    }

    /// Internal constructor for values expected to satisfy the invariant (space
    /// enumeration, key decoding after validation).  The invariant is still checked —
    /// `ConfigurationSpace`'s `splits` field is public, so a hand-built space could
    /// otherwise mint invalid configurations in release builds and resurrect the
    /// duplicate-store-key bug the invariant exists to prevent.
    pub(crate) fn from_validated(
        host_threads: u32,
        host_affinity: Affinity,
        host_permille: u32,
        devices: Vec<DeviceSetting>,
    ) -> Self {
        assert_eq!(
            host_permille + devices.iter().map(|d| d.permille).sum::<u32>(),
            1000,
            "shares must sum to 1000 permille (is a hand-built ConfigurationSpace::splits entry invalid?)"
        );
        SystemConfiguration {
            host_threads,
            host_affinity,
            host_permille,
            devices,
        }
    }

    /// Host share in permille (0..=1000).
    pub fn host_permille(&self) -> u32 {
        self.host_permille
    }

    /// Per-accelerator settings.
    pub fn devices(&self) -> &[DeviceSetting] {
        &self.devices
    }

    /// Settings of accelerator `index`.
    pub fn device(&self, index: usize) -> DeviceSetting {
        self.devices[index]
    }

    /// Number of accelerators this configuration describes.
    pub fn accelerator_count(&self) -> usize {
        self.devices.len()
    }

    /// Thread count of the first accelerator (the paper's single-device view).
    pub fn device_threads(&self) -> u32 {
        self.devices[0].threads
    }

    /// Affinity of the first accelerator (the paper's single-device view).
    pub fn device_affinity(&self) -> Affinity {
        self.devices[0].affinity
    }

    /// Host share as a fraction in `[0, 1]`.
    pub fn host_fraction(&self) -> f64 {
        f64::from(self.host_permille) / 1000.0
    }

    /// Host share as a percentage in `[0, 100]`.
    pub fn host_percent(&self) -> f64 {
        self.host_fraction() * 100.0
    }

    /// Combined accelerator share as a fraction in `[0, 1]`.
    pub fn device_fraction(&self) -> f64 {
        1.0 - self.host_fraction()
    }

    /// Does the host receive any work?
    pub fn uses_host(&self) -> bool {
        self.host_permille > 0
    }

    /// Does any accelerator receive work?
    pub fn uses_device(&self) -> bool {
        self.host_permille < 1000
    }

    /// The N-way workload partition this configuration describes.  The share invariant
    /// guarantees the partition passes [`Partition::new`]'s validation.
    pub fn partition(&self) -> Partition {
        let mut fractions = Vec::with_capacity(self.devices.len() + 1);
        fractions.push(self.host_fraction());
        fractions.extend(self.devices.iter().map(DeviceSetting::fraction));
        Partition::new(fractions).expect("the share invariant implies a valid partition")
    }

    /// Host execution configuration (threads + affinity).
    pub fn host_execution(&self) -> ExecutionConfig {
        ExecutionConfig::new(self.host_threads, self.host_affinity)
    }

    /// Execution configuration of the first accelerator.
    pub fn device_execution(&self) -> ExecutionConfig {
        ExecutionConfig::new(self.devices[0].threads, self.devices[0].affinity)
    }

    /// Execution configurations of all accelerators, in device order.
    pub fn device_executions(&self) -> Vec<ExecutionConfig> {
        self.devices
            .iter()
            .map(|d| ExecutionConfig::new(d.threads, d.affinity))
            .collect()
    }

    /// A copy with the host share replaced by `host_permille` (clamped to 0..=1000)
    /// and the accelerator shares rescaled proportionally to fill the remainder —
    /// the move the adaptive refinement controller makes.  Rounding residue goes to
    /// the largest accelerator share so the invariant holds exactly.
    pub fn with_host_permille(&self, host_permille: u32) -> Self {
        let host_permille = host_permille.min(1000);
        let remainder = 1000 - host_permille;
        let old_total: u32 = self.devices.iter().map(|d| d.permille).sum();
        let mut devices = self.devices.clone();
        if old_total == 0 {
            // all devices were idle: give the remainder to the first one
            for d in devices.iter_mut() {
                d.permille = 0;
            }
            devices[0].permille = remainder;
        } else {
            let mut assigned = 0u32;
            for d in devices.iter_mut() {
                d.permille =
                    (u64::from(d.permille) * u64::from(remainder) / u64::from(old_total)) as u32;
                assigned += d.permille;
            }
            // deterministic largest-remainder fix-up: the residue joins the largest share
            let residue = remainder - assigned;
            let largest = devices
                .iter()
                .enumerate()
                .max_by_key(|(i, d)| (d.permille, usize::MAX - i))
                .map(|(i, _)| i)
                .expect("at least one device");
            devices[largest].permille += residue;
        }
        SystemConfiguration {
            host_threads: self.host_threads,
            host_affinity: self.host_affinity,
            host_permille,
            devices,
        }
    }

    /// The CPU-only baseline configuration used by the paper's Table VIII
    /// (48 host threads, everything on the host).
    pub fn host_only_baseline() -> Self {
        Self::host_only_baseline_for(1)
    }

    /// The CPU-only baseline for a platform with `accelerators` accelerators.
    pub fn host_only_baseline_for(accelerators: usize) -> Self {
        assert!(accelerators >= 1, "at least one accelerator is required");
        SystemConfiguration {
            host_threads: 48,
            host_affinity: Affinity::Scatter,
            host_permille: 1000,
            devices: vec![DeviceSetting::new(2, Affinity::Balanced, 0); accelerators],
        }
    }

    /// The accelerator-only baseline of the paper's Table IX (all 240 usable device
    /// threads, everything on the first accelerator).
    pub fn device_only_baseline() -> Self {
        Self::device_only_baseline_for(1)
    }

    /// The accelerator-only baseline for a platform with `accelerators` accelerators
    /// (everything on the first one).
    pub fn device_only_baseline_for(accelerators: usize) -> Self {
        assert!(accelerators >= 1, "at least one accelerator is required");
        let mut devices = vec![DeviceSetting::new(2, Affinity::Balanced, 0); accelerators];
        devices[0] = DeviceSetting::new(240, Affinity::Balanced, 1000);
        SystemConfiguration {
            host_threads: 2,
            host_affinity: Affinity::Scatter,
            host_permille: 0,
            devices,
        }
    }

    /// The share vector `[host, device1, ..., deviceN]` in permille.
    pub fn split(&self) -> Vec<u32> {
        let mut split = Vec::with_capacity(self.devices.len() + 1);
        split.push(self.host_permille);
        split.extend(self.devices.iter().map(|d| d.permille));
        split
    }
}

impl fmt::Display for SystemConfiguration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.devices.len() == 1 {
            let device = self.devices[0];
            write!(
                f,
                "host {{threads: {}, affinity: {}}}, device {{threads: {}, affinity: {}}}, split {:.1}/{:.1}",
                self.host_threads,
                self.host_affinity,
                device.threads,
                device.affinity,
                self.host_percent(),
                100.0 - self.host_percent(),
            )
        } else {
            write!(
                f,
                "host {{threads: {}, affinity: {}}}",
                self.host_threads, self.host_affinity
            )?;
            for (i, device) in self.devices.iter().enumerate() {
                write!(
                    f,
                    ", device{} {{threads: {}, affinity: {}}}",
                    i + 1,
                    device.threads,
                    device.affinity
                )?;
            }
            write!(f, ", split {:.1}", self.host_percent())?;
            for device in &self.devices {
                write!(f, "/{:.1}", device.fraction() * 100.0)?;
            }
            Ok(())
        }
    }
}

/// Candidate thread counts and affinities of one accelerator — one axis of the
/// configuration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceAxis {
    /// Candidate thread counts on this accelerator.
    pub threads: Vec<u32>,
    /// Candidate affinities on this accelerator.
    pub affinities: Vec<Affinity>,
}

impl DeviceAxis {
    /// Convenience constructor.
    pub fn new(threads: Vec<u32>, affinities: Vec<Affinity>) -> Self {
        DeviceAxis {
            threads,
            affinities,
        }
    }

    /// The paper's Xeon Phi axis: thread counts {2, 4, 8, 16, 30, 60, 120, 180, 240}
    /// and the three device affinities.
    pub fn paper_phi() -> Self {
        DeviceAxis::new(
            vec![2, 4, 8, 16, 30, 60, 120, 180, 240],
            Affinity::DEVICE.to_vec(),
        )
    }

    /// An axis for an arbitrary accelerator: the paper's thread-count ladder clipped
    /// to the device's capacity, with the capacity itself appended (so "all threads"
    /// is always a candidate), and the three device affinities.
    pub fn for_max_threads(max_threads: u32) -> Self {
        Self::with_ladder(
            &[2, 4, 8, 16, 30, 60, 120, 180, 240, 360, 448],
            max_threads,
            Affinity::DEVICE.to_vec(),
        )
    }

    /// An axis from an arbitrary thread-count ladder: values below `max_threads` are
    /// kept and the capacity itself is appended as the top candidate.
    pub fn with_ladder(ladder: &[u32], max_threads: u32, affinities: Vec<Affinity>) -> Self {
        let mut threads: Vec<u32> = ladder
            .iter()
            .copied()
            .filter(|&t| t < max_threads)
            .collect();
        threads.push(max_threads);
        DeviceAxis::new(threads, affinities)
    }

    fn len(&self) -> usize {
        self.threads.len() * self.affinities.len()
    }
}

/// The discrete space of system configurations (the paper's Table I, generalised to
/// host + N accelerators), which also serves as the [`SearchSpace`] explored by
/// simulated annealing and the other heuristics.
///
/// Workload splits are an explicit list of permille share vectors
/// (`[host, device1, ..., deviceN]`, each summing to 1000) — for one accelerator this
/// is the paper's scalar "workload fraction" parameter, for N accelerators it is a
/// discrete simplex (see [`ConfigurationSpace::simplex_splits`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigurationSpace {
    /// Candidate host thread counts.
    pub host_threads: Vec<u32>,
    /// Candidate host affinities.
    pub host_affinities: Vec<Affinity>,
    /// One axis per accelerator.
    pub device_axes: Vec<DeviceAxis>,
    /// Candidate workload splits (`[host, device1, ..., deviceN]` permille vectors,
    /// each summing to 1000, each of length `device_axes.len() + 1`).
    pub splits: Vec<Vec<u32>>,
}

impl ConfigurationSpace {
    /// A single-accelerator space from the paper's parameterization: explicit host
    /// permille candidates, one device axis.
    pub fn two_way(
        host_threads: Vec<u32>,
        host_affinities: Vec<Affinity>,
        device_threads: Vec<u32>,
        device_affinities: Vec<Affinity>,
        host_permilles: Vec<u32>,
    ) -> Self {
        ConfigurationSpace {
            host_threads,
            host_affinities,
            device_axes: vec![DeviceAxis::new(device_threads, device_affinities)],
            splits: host_permilles
                .into_iter()
                .map(|p| {
                    assert!(p <= 1000, "host permille {p} out of range");
                    vec![p, 1000 - p]
                })
                .collect(),
        }
    }

    /// A multi-accelerator space: the paper's host axis, one [`DeviceAxis`] per
    /// accelerator and all workload splits on the uniform `step_permille` simplex.
    pub fn multi_accelerator(
        host_threads: Vec<u32>,
        host_affinities: Vec<Affinity>,
        device_axes: Vec<DeviceAxis>,
        step_permille: u32,
    ) -> Self {
        let steps = vec![step_permille; device_axes.len() + 1];
        Self::multi_accelerator_heterogeneous(host_threads, host_affinities, device_axes, &steps)
    }

    /// A multi-accelerator space with **per-device split granularity**: one
    /// `step_permille` per simplex position (`steps_permille[0]` is the host,
    /// `steps_permille[i]` accelerator `i − 1`, so
    /// `steps_permille.len() == device_axes.len() + 1`).
    ///
    /// Coarse steps for slow devices shrink the N-way split simplex multiplicatively —
    /// a host + 2-accelerator space at a uniform 2.5 % step has 861 splits, while
    /// 2.5 % host / 10 % fast device / 25 % slow device keeps 55 — which shortens both
    /// enumeration grids and the annealer's warm-up over the split axis.
    pub fn multi_accelerator_heterogeneous(
        host_threads: Vec<u32>,
        host_affinities: Vec<Affinity>,
        device_axes: Vec<DeviceAxis>,
        steps_permille: &[u32],
    ) -> Self {
        assert_eq!(
            steps_permille.len(),
            device_axes.len() + 1,
            "one step per simplex position: host + {} accelerators, got {} steps",
            device_axes.len(),
            steps_permille.len()
        );
        let splits = Self::simplex_splits_heterogeneous(steps_permille);
        ConfigurationSpace {
            host_threads,
            host_affinities,
            device_axes,
            splits,
        }
    }

    /// All share vectors `[host, device1, ..., deviceN]` whose entries are multiples
    /// of `step_permille` and sum to 1000 — the discrete simplex the N-way splits
    /// live on.  `step_permille` must divide 1000.  Vectors are ordered
    /// lexicographically (host share ascending, then device shares), so for one
    /// accelerator the order matches the paper's ascending workload-fraction list.
    pub fn simplex_splits(accelerators: usize, step_permille: u32) -> Vec<Vec<u32>> {
        assert!(accelerators >= 1, "at least one accelerator is required");
        Self::simplex_splits_heterogeneous(&vec![step_permille; accelerators + 1])
    }

    /// [`ConfigurationSpace::simplex_splits`] with one step per simplex position:
    /// all share vectors `[host, device1, ..., deviceN]` summing to 1000 in which
    /// every position is a multiple of *its own* `steps_permille` entry (host first).
    ///
    /// Every step must divide 1000 (so the simplex is never empty — the
    /// all-on-the-last-device vector always qualifies).  Positions before the last
    /// iterate their own step grid and the last device takes the remainder, which is
    /// kept only when it lands on that device's grid; with uniform steps this prunes
    /// nothing and reproduces `simplex_splits` exactly, element for element.  The
    /// lexicographic (host-ascending) order is preserved.
    pub fn simplex_splits_heterogeneous(steps_permille: &[u32]) -> Vec<Vec<u32>> {
        assert!(
            steps_permille.len() >= 2,
            "a split needs the host plus at least one accelerator, got {} positions",
            steps_permille.len()
        );
        for &step in steps_permille {
            assert!(
                step >= 1 && 1000 % step == 0,
                "every step must divide 1000 permille, got {step}"
            );
        }
        let mut splits = Vec::new();
        let mut current = Vec::with_capacity(steps_permille.len());
        fn recurse(steps: &[u32], remaining: u32, current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if steps.len() == 1 {
                // the last device absorbs the remainder — but only onto its own grid
                if remaining.is_multiple_of(steps[0]) {
                    current.push(remaining);
                    out.push(current.clone());
                    current.pop();
                }
                return;
            }
            let mut share = 0;
            while share <= remaining {
                current.push(share);
                recurse(&steps[1..], remaining - share, current, out);
                current.pop();
                share += steps[0];
            }
        }
        recurse(steps_permille, 1000, &mut current, &mut splits);
        splits
    }

    /// The search space of the paper's Table I: host threads {2, 4, 6, 12, 24, 36, 48},
    /// device threads {2, 4, 8, 16, 30, 60, 120, 180, 240}, three affinities per side
    /// and a workload fraction with 1 % granularity (0..=100).
    pub fn paper() -> Self {
        Self::two_way(
            vec![2, 4, 6, 12, 24, 36, 48],
            Affinity::HOST.to_vec(),
            vec![2, 4, 8, 16, 30, 60, 120, 180, 240],
            Affinity::DEVICE.to_vec(),
            (0..=100).map(|p| p * 10).collect(),
        )
    }

    /// The enumeration grid used by the paper's EM/EML reference methods
    /// (Section IV-C): host threads {2, 6, 12, 24, 36, 48}, the same device threads and
    /// affinities, and the workload fraction in 2.5 % steps, for a total of
    /// 6 × 3 × 9 × 3 × 41 = 19 926 configurations.
    pub fn enumeration_grid() -> Self {
        Self::two_way(
            vec![2, 6, 12, 24, 36, 48],
            Affinity::HOST.to_vec(),
            vec![2, 4, 8, 16, 30, 60, 120, 180, 240],
            Affinity::DEVICE.to_vec(),
            (0..=40).map(|s| s * 25).collect(),
        )
    }

    /// A deliberately small space for unit tests and quick examples.
    pub fn tiny() -> Self {
        Self::two_way(
            vec![4, 24, 48],
            vec![Affinity::Scatter, Affinity::Compact],
            vec![30, 120, 240],
            vec![Affinity::Balanced, Affinity::Compact],
            (0..=10).map(|p| p * 100).collect(),
        )
    }

    /// A small two-accelerator space over the Emil-with-GPU platform
    /// ([`hetero_platform::HeterogeneousPlatform::emil_with_gpu`]): host + Xeon Phi +
    /// GPU with 10 % split granularity.  Used by the multi-accelerator example and
    /// tests.
    pub fn tiny_multi() -> Self {
        ConfigurationSpace::multi_accelerator(
            vec![12, 48],
            vec![Affinity::Scatter],
            vec![
                DeviceAxis::new(vec![60, 240], vec![Affinity::Balanced]),
                DeviceAxis::new(vec![112, 448], vec![Affinity::Balanced]),
            ],
            100,
        )
    }

    /// Number of accelerators this space describes.
    pub fn accelerator_count(&self) -> usize {
        self.device_axes.len()
    }

    /// Number of configurations in the space (the paper's Eq. 1: the product of the
    /// parameter value-range sizes).
    pub fn total_configurations(&self) -> u128 {
        self.host_threads.len() as u128
            * self.host_affinities.len() as u128
            * self
                .device_axes
                .iter()
                .map(|axis| axis.len() as u128)
                .product::<u128>()
            * self.splits.len() as u128
    }

    fn sample_index<T>(values: &[T], rng: &mut StdRng) -> usize {
        debug_assert!(!values.is_empty());
        rng.gen_range(0..values.len())
    }

    fn nudge_index<T>(values: &[T], current: usize, max_step: usize, rng: &mut StdRng) -> usize {
        if values.len() <= 1 {
            return 0;
        }
        // Mostly local moves, with an occasional uniform jump so the walk can escape
        // corner optima (e.g. "everything on the host") that local moves reach slowly.
        if rng.gen_bool(0.1) {
            return rng.gen_range(0..values.len());
        }
        let step = rng.gen_range(1..=max_step.max(1)) as i64;
        let direction = if rng.gen_bool(0.5) { 1 } else { -1 };
        (current as i64 + direction * step).clamp(0, values.len() as i64 - 1) as usize
    }

    fn index_of<T: PartialEq>(values: &[T], value: &T) -> usize {
        values.iter().position(|v| v == value).unwrap_or(0)
    }

    /// A local move on the split list: pick uniformly among the `2 * max_step` splits
    /// *nearest by L1 distance* to the current one (ties broken by list order), with
    /// the usual occasional uniform jump.
    ///
    /// Nudging the *index* instead would be wrong for N ≥ 2 accelerators: the simplex
    /// list is ordered lexicographically, so index-adjacent entries straddling a
    /// host-share boundary are semantically distant (`[0, 1000, 0]` is next to
    /// `[100, 0, 900]`) and a "small" nudge would teleport an entire device share.
    /// For one accelerator the L1-nearest window reproduces the old ±`max_step`
    /// index walk exactly.
    fn nudge_split(&self, current: usize, max_step: usize, rng: &mut StdRng) -> usize {
        if self.splits.len() <= 1 {
            return 0;
        }
        if rng.gen_bool(0.1) {
            return rng.gen_range(0..self.splits.len());
        }
        let here = &self.splits[current];
        let mut by_distance: Vec<(u64, usize)> = self
            .splits
            .iter()
            .enumerate()
            .filter(|&(index, _)| index != current)
            .map(|(index, split)| {
                let distance: u64 = split
                    .iter()
                    .zip(here)
                    .map(|(&a, &b)| u64::from(a.abs_diff(b)))
                    .sum();
                (distance, index)
            })
            .collect();
        let window = (2 * max_step.max(1)).min(by_distance.len());
        by_distance.select_nth_unstable(window - 1);
        by_distance.truncate(window);
        by_distance.sort_unstable();
        by_distance[rng.gen_range(0..window)].1
    }

    /// Build a configuration from axis values and a split vector.
    fn build(
        &self,
        host_threads: u32,
        host_affinity: Affinity,
        device_values: &[(u32, Affinity)],
        split: &[u32],
    ) -> SystemConfiguration {
        debug_assert_eq!(device_values.len(), self.device_axes.len());
        debug_assert_eq!(split.len(), self.device_axes.len() + 1);
        let devices = device_values
            .iter()
            .zip(&split[1..])
            .map(|(&(threads, affinity), &permille)| {
                DeviceSetting::new(threads, affinity, permille)
            })
            .collect();
        SystemConfiguration::from_validated(host_threads, host_affinity, split[0], devices)
    }
}

impl SearchSpace for ConfigurationSpace {
    type Config = SystemConfiguration;

    fn random(&self, rng: &mut StdRng) -> SystemConfiguration {
        let host_threads = self.host_threads[Self::sample_index(&self.host_threads, rng)];
        let host_affinity = self.host_affinities[Self::sample_index(&self.host_affinities, rng)];
        let device_values: Vec<(u32, Affinity)> = self
            .device_axes
            .iter()
            .map(|axis| {
                (
                    axis.threads[Self::sample_index(&axis.threads, rng)],
                    axis.affinities[Self::sample_index(&axis.affinities, rng)],
                )
            })
            .collect();
        let split = &self.splits[Self::sample_index(&self.splits, rng)];
        self.build(host_threads, host_affinity, &device_values, split)
    }

    fn neighbor(&self, config: &SystemConfiguration, rng: &mut StdRng) -> SystemConfiguration {
        self.neighbor_move(config, rng).0
    }

    /// The neighbour move plus its exact footprint in the delta-evaluation component
    /// convention (component 0 = host, component `i + 1` = accelerator `i`):
    /// the move is generated once and the touched set is the per-component diff
    /// against `config`, so `neighbor` (which discards the footprint) consumes
    /// exactly the same RNG draws and the set never under-approximates.  A split
    /// move touches every component whose share actually moved — for one accelerator
    /// that is host + device, for N accelerators usually a small subset.
    fn neighbor_move(
        &self,
        config: &SystemConfiguration,
        rng: &mut StdRng,
    ) -> (SystemConfiguration, Touched) {
        let mut host_threads = config.host_threads;
        let mut host_affinity = config.host_affinity;
        let mut device_values: Vec<(u32, Affinity)> = config
            .devices()
            .iter()
            .map(|d| (d.threads, d.affinity))
            .collect();
        debug_assert_eq!(device_values.len(), self.device_axes.len());
        let mut split_index = Self::index_of(&self.splits, &config.split());

        // perturb one parameter most of the time, occasionally two, so the walk can
        // escape ridges that require coordinated changes
        let parameters = 3 + 2 * self.device_axes.len() as u8;
        let changes = if rng.gen_bool(0.2) { 2 } else { 1 };
        for _ in 0..changes {
            match rng.gen_range(0..parameters) {
                0 => {
                    let i = Self::index_of(&self.host_threads, &host_threads);
                    host_threads =
                        self.host_threads[Self::nudge_index(&self.host_threads, i, 2, rng)];
                }
                1 => {
                    host_affinity =
                        self.host_affinities[Self::sample_index(&self.host_affinities, rng)];
                }
                2 => {
                    split_index = self.nudge_split(split_index, 8, rng);
                }
                p => {
                    let device = ((p - 3) / 2) as usize;
                    let axis = &self.device_axes[device];
                    if (p - 3) % 2 == 0 {
                        let i = Self::index_of(&axis.threads, &device_values[device].0);
                        device_values[device].0 =
                            axis.threads[Self::nudge_index(&axis.threads, i, 2, rng)];
                    } else {
                        device_values[device].1 =
                            axis.affinities[Self::sample_index(&axis.affinities, rng)];
                    }
                }
            }
        }
        let next = self.build(
            host_threads,
            host_affinity,
            &device_values,
            &self.splits[split_index],
        );
        let mut touched = Vec::new();
        if next.host_threads != config.host_threads
            || next.host_affinity != config.host_affinity
            || next.host_permille() != config.host_permille()
        {
            touched.push(0);
        }
        for (index, (new, old)) in next.devices().iter().zip(config.devices()).enumerate() {
            if new != old {
                touched.push(index + 1);
            }
        }
        (next, Touched::Components(touched))
    }

    fn cardinality(&self) -> Option<u128> {
        Some(self.total_configurations())
    }

    fn space_len(&self) -> Option<usize> {
        usize::try_from(self.total_configurations()).ok()
    }

    /// Decode the mixed-radix enumeration index — host threads are the most
    /// significant digit, the split the least, matching exactly the nested-loop order
    /// of [`SearchSpace::enumerate`] below.  This is the zero-materialization path:
    /// the enumeration drivers stream N-way grids through it in fixed-size chunks
    /// instead of allocating the whole cross product.
    fn config_at(&self, index: usize) -> Option<SystemConfiguration> {
        let len = self.space_len()?;
        if index >= len {
            return None;
        }
        let mut rest = index;
        let split_index = rest % self.splits.len();
        rest /= self.splits.len();
        // device digits, least significant device last in the loop nest
        let mut device_values = vec![(0u32, Affinity::None); self.device_axes.len()];
        for (value, axis) in device_values.iter_mut().zip(&self.device_axes).rev() {
            let affinity_index = rest % axis.affinities.len();
            rest /= axis.affinities.len();
            let thread_index = rest % axis.threads.len();
            rest /= axis.threads.len();
            *value = (axis.threads[thread_index], axis.affinities[affinity_index]);
        }
        let host_affinity = self.host_affinities[rest % self.host_affinities.len()];
        rest /= self.host_affinities.len();
        debug_assert!(rest < self.host_threads.len());
        Some(self.build(
            self.host_threads[rest],
            host_affinity,
            &device_values,
            &self.splits[split_index],
        ))
    }

    fn enumerate(&self) -> Option<Vec<SystemConfiguration>> {
        // cross product over the device axes, axis-major (threads outer, affinity
        // inner), matching the single-accelerator enumeration order of the paper grid
        let mut device_combos: Vec<Vec<(u32, Affinity)>> = vec![Vec::new()];
        for axis in &self.device_axes {
            let mut extended = Vec::with_capacity(
                device_combos.len() * axis.threads.len() * axis.affinities.len(),
            );
            for combo in &device_combos {
                for &threads in &axis.threads {
                    for &affinity in &axis.affinities {
                        let mut next = combo.clone();
                        next.push((threads, affinity));
                        extended.push(next);
                    }
                }
            }
            device_combos = extended;
        }

        let mut all = Vec::with_capacity(self.total_configurations().min(1 << 24) as usize);
        for &host_threads in &self.host_threads {
            for &host_affinity in &self.host_affinities {
                for combo in &device_combos {
                    for split in &self.splits {
                        all.push(self.build(host_threads, host_affinity, combo, split));
                    }
                }
            }
        }
        Some(all)
    }

    fn crossover(
        &self,
        parent_a: &SystemConfiguration,
        parent_b: &SystemConfiguration,
        rng: &mut StdRng,
    ) -> SystemConfiguration {
        self.crossover_move(parent_a, parent_b, rng).0
    }

    /// Uniform crossover plus the two-parent merge footprint, in the same component
    /// convention as [`SearchSpace::neighbor_move`] (component 0 = host, `i + 1` =
    /// accelerator `i`).  The child is generated once and the footprint is the
    /// per-component diff against the **first** parent, so `crossover` (which
    /// discards the footprint) consumes exactly the same RNG draws, and a delta
    /// objective holding `parent_a`'s per-device times recomputes only the
    /// components inherited from `parent_b` (including every component whose
    /// work share moved when `parent_b`'s split is inherited wholesale).
    fn crossover_move(
        &self,
        parent_a: &SystemConfiguration,
        parent_b: &SystemConfiguration,
        rng: &mut StdRng,
    ) -> (SystemConfiguration, Touched) {
        debug_assert_eq!(parent_a.accelerator_count(), parent_b.accelerator_count());
        let host_threads = if rng.gen_bool(0.5) {
            parent_a.host_threads
        } else {
            parent_b.host_threads
        };
        let host_affinity = if rng.gen_bool(0.5) {
            parent_a.host_affinity
        } else {
            parent_b.host_affinity
        };
        let device_values: Vec<(u32, Affinity)> = parent_a
            .devices()
            .iter()
            .zip(parent_b.devices())
            .map(|(a, b)| {
                (
                    if rng.gen_bool(0.5) {
                        a.threads
                    } else {
                        b.threads
                    },
                    if rng.gen_bool(0.5) {
                        a.affinity
                    } else {
                        b.affinity
                    },
                )
            })
            .collect();
        // the split is inherited wholesale: mixing permilles element-wise would leave
        // the simplex
        let split = if rng.gen_bool(0.5) {
            parent_a.split()
        } else {
            parent_b.split()
        };
        let child = self.build(host_threads, host_affinity, &device_values, &split);
        let mut touched = Vec::new();
        if child.host_threads != parent_a.host_threads
            || child.host_affinity != parent_a.host_affinity
            || child.host_permille() != parent_a.host_permille()
        {
            touched.push(0);
        }
        for (index, (new, old)) in child.devices().iter().zip(parent_a.devices()).enumerate() {
            if new != old {
                touched.push(index + 1);
            }
        }
        (child, Touched::Components(touched))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fraction_accessors_are_consistent() {
        let cfg = SystemConfiguration::with_host_percent(
            24,
            Affinity::Scatter,
            120,
            Affinity::Balanced,
            60,
        );
        assert_eq!(cfg.host_permille(), 600);
        assert!((cfg.host_fraction() - 0.6).abs() < 1e-12);
        assert!((cfg.device_fraction() - 0.4).abs() < 1e-12);
        assert!(cfg.uses_host() && cfg.uses_device());
        assert!((cfg.partition().host_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(cfg.host_execution().threads, 24);
        assert_eq!(cfg.device_execution().threads, 120);
        assert_eq!(cfg.accelerator_count(), 1);
        assert_eq!(cfg.split(), vec![600, 400]);
    }

    #[test]
    fn construction_enforces_the_share_invariant() {
        // Regression: `host_permille` used to be a public field with no invariant, so
        // an out-of-range value (e.g. 1200) evaluated identically to 1000 but produced
        // a distinct persistent-store key.  Out-of-range and non-summing shares are
        // now rejected at construction.
        assert!(SystemConfiguration::new(
            48,
            Affinity::Scatter,
            1200,
            vec![DeviceSetting::new(240, Affinity::Balanced, 0)]
        )
        .is_err());
        assert!(SystemConfiguration::new(
            48,
            Affinity::Scatter,
            600,
            vec![DeviceSetting::new(240, Affinity::Balanced, 300)]
        )
        .is_err());
        assert!(SystemConfiguration::new(48, Affinity::Scatter, 1000, vec![]).is_err());
        let ok = SystemConfiguration::new(
            48,
            Affinity::Scatter,
            500,
            vec![
                DeviceSetting::new(240, Affinity::Balanced, 300),
                DeviceSetting::new(448, Affinity::Balanced, 200),
            ],
        )
        .unwrap();
        assert_eq!(ok.accelerator_count(), 2);
        assert_eq!(ok.split(), vec![500, 300, 200]);
        // and `with_host_percent` normalizes over-range percentages instead of
        // storing them
        let clamped = SystemConfiguration::with_host_percent(
            48,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            120,
        );
        assert_eq!(clamped.host_permille(), 1000);
    }

    #[test]
    fn with_host_permille_rebalances_device_shares() {
        let cfg = SystemConfiguration::new(
            48,
            Affinity::Scatter,
            400,
            vec![
                DeviceSetting::new(240, Affinity::Balanced, 450),
                DeviceSetting::new(448, Affinity::Balanced, 150),
            ],
        )
        .unwrap();
        let moved = cfg.with_host_permille(700);
        assert_eq!(moved.host_permille(), 700);
        let split = moved.split();
        assert_eq!(split.iter().sum::<u32>(), 1000);
        // proportions preserved (450:150 = 3:1 over the remaining 300)
        assert_eq!(split[1], 225);
        assert_eq!(split[2], 75);
        // partition stays valid at every host share
        for permille in [0u32, 1, 333, 999, 1000, 1500] {
            let p = cfg.with_host_permille(permille).partition();
            assert!((p.host_fraction() - f64::from(permille.min(1000)) / 1000.0).abs() < 1e-12);
        }
        // all-idle devices: the remainder lands on the first device
        let host_only = SystemConfiguration::host_only_baseline_for(2);
        let reopened = host_only.with_host_permille(600);
        assert_eq!(reopened.split(), vec![600, 400, 0]);
    }

    #[test]
    fn baselines_are_exclusive() {
        let host_only = SystemConfiguration::host_only_baseline();
        assert!(host_only.uses_host() && !host_only.uses_device());
        assert_eq!(host_only.host_threads, 48);
        let device_only = SystemConfiguration::device_only_baseline();
        assert!(!device_only.uses_host() && device_only.uses_device());
        assert_eq!(device_only.device_threads(), 240);

        // multi-accelerator variants keep the invariant and the right arity
        let host_only2 = SystemConfiguration::host_only_baseline_for(2);
        assert_eq!(host_only2.accelerator_count(), 2);
        assert_eq!(host_only2.partition().device_fractions(), &[0.0, 0.0]);
        let device_only2 = SystemConfiguration::device_only_baseline_for(2);
        assert_eq!(device_only2.split(), vec![0, 1000, 0]);
    }

    #[test]
    fn display_mentions_the_split() {
        let cfg =
            SystemConfiguration::with_host_percent(48, Affinity::None, 240, Affinity::Compact, 70);
        let text = cfg.to_string();
        assert!(text.contains("70.0/30.0"));
        assert!(text.contains("none"));
        assert!(text.contains("compact"));

        let multi = SystemConfiguration::new(
            48,
            Affinity::Scatter,
            500,
            vec![
                DeviceSetting::new(240, Affinity::Balanced, 300),
                DeviceSetting::new(448, Affinity::Balanced, 200),
            ],
        )
        .unwrap();
        let text = multi.to_string();
        assert!(text.contains("device1"));
        assert!(text.contains("device2"));
        assert!(text.contains("50.0/30.0/20.0"));
    }

    #[test]
    fn paper_space_cardinality_matches_eq_1() {
        let space = ConfigurationSpace::paper();
        assert_eq!(
            space.total_configurations(),
            7 * 3 * 9 * 3 * 101,
            "product of the Table I value-range sizes"
        );
    }

    #[test]
    fn enumeration_grid_has_19926_configurations() {
        let grid = ConfigurationSpace::enumeration_grid();
        assert_eq!(grid.total_configurations(), 19_926);
        let all = grid.enumerate().unwrap();
        assert_eq!(all.len(), 19_926);
        // no duplicates
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn simplex_splits_cover_exactly_the_step_grid() {
        // one accelerator: the simplex is the paper's scalar fraction list
        let one = ConfigurationSpace::simplex_splits(1, 25);
        assert_eq!(one.len(), 41);
        assert_eq!(one.first().unwrap(), &vec![0, 1000]);
        assert_eq!(one.last().unwrap(), &vec![1000, 0]);

        // two accelerators with 10 % steps: C(12, 2) = 66 compositions
        let two = ConfigurationSpace::simplex_splits(2, 100);
        assert_eq!(two.len(), 66);
        for split in &two {
            assert_eq!(split.len(), 3);
            assert_eq!(split.iter().sum::<u32>(), 1000);
            assert!(split.iter().all(|&s| s % 100 == 0));
        }
        // no duplicates
        let unique: std::collections::HashSet<_> = two.iter().collect();
        assert_eq!(unique.len(), two.len());

        // three accelerators with 25 % steps: C(4 + 3, 3) = 35 compositions
        assert_eq!(ConfigurationSpace::simplex_splits(3, 250).len(), 35);
    }

    #[test]
    fn heterogeneous_steps_reproduce_the_uniform_simplex_exactly() {
        // the uniform constructors are wrappers: same vectors, same order
        for (accelerators, step) in [(1usize, 25u32), (1, 100), (2, 100), (2, 250), (3, 250)] {
            assert_eq!(
                ConfigurationSpace::simplex_splits(accelerators, step),
                ConfigurationSpace::simplex_splits_heterogeneous(&vec![step; accelerators + 1]),
                "{accelerators} accelerators, step {step}"
            );
        }
    }

    #[test]
    fn heterogeneous_steps_prune_to_each_devices_grid() {
        // host at 25 %, one device at 10 %: only remainders on the 10 % grid survive
        // (750 and 250 are not multiples of 100, so those host shares are pruned)
        let splits = ConfigurationSpace::simplex_splits_heterogeneous(&[250, 100]);
        assert_eq!(splits, vec![vec![0, 1000], vec![500, 500], vec![1000, 0]]);

        // host 25 %, device at 100 %: only the two corners and the 0-remainder rows
        let coarse = ConfigurationSpace::simplex_splits_heterogeneous(&[250, 1000]);
        assert_eq!(coarse, vec![vec![0, 1000], vec![1000, 0]]);

        // three positions, mixed granularity: every entry is on its own grid, the sum
        // invariant holds, the order is host-ascending lexicographic, no duplicates
        let steps = [100u32, 250, 500];
        let mixed = ConfigurationSpace::simplex_splits_heterogeneous(&steps);
        assert!(!mixed.is_empty());
        for split in &mixed {
            assert_eq!(split.len(), 3);
            assert_eq!(split.iter().sum::<u32>(), 1000);
            for (share, step) in split.iter().zip(steps) {
                assert_eq!(share % step, 0, "{split:?}");
            }
        }
        let mut sorted = mixed.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, mixed, "lexicographic order, no duplicates");
        // and the coarse slow device shrinks the simplex well below the uniform grid
        assert!(mixed.len() < ConfigurationSpace::simplex_splits(2, 100).len());
    }

    #[test]
    fn heterogeneous_space_enumerates_and_anneals() {
        use rand::SeedableRng as _;
        let space = ConfigurationSpace::multi_accelerator_heterogeneous(
            vec![12, 48],
            vec![Affinity::Scatter],
            vec![
                DeviceAxis::new(vec![60, 240], vec![Affinity::Balanced]),
                DeviceAxis::new(vec![112, 448], vec![Affinity::Balanced]),
            ],
            &[100, 200, 500],
        );
        let all = space.enumerate().unwrap();
        assert_eq!(all.len() as u128, space.total_configurations());
        for (index, config) in all.iter().enumerate() {
            assert_eq!(space.config_at(index).as_ref(), Some(config));
            assert_eq!(config.split().iter().sum::<u32>(), 1000);
        }
        // the walk stays inside the pruned simplex
        let mut rng = StdRng::seed_from_u64(11);
        let mut config = space.random(&mut rng);
        for _ in 0..300 {
            config = space.neighbor(&config, &mut rng);
            assert!(space.splits.contains(&config.split()));
        }
    }

    #[test]
    #[should_panic(expected = "one step per simplex position")]
    fn heterogeneous_steps_must_match_the_device_count() {
        let _ = ConfigurationSpace::multi_accelerator_heterogeneous(
            vec![48],
            vec![Affinity::Scatter],
            vec![DeviceAxis::new(vec![240], vec![Affinity::Balanced])],
            &[100, 100, 100],
        );
    }

    #[test]
    fn neighbor_move_footprints_are_sound() {
        use wd_opt::Touched;
        for space in [
            ConfigurationSpace::paper(),
            ConfigurationSpace::tiny_multi(),
        ] {
            let mut rng = StdRng::seed_from_u64(17);
            let mut config = space.random(&mut rng);
            for _ in 0..500 {
                // the footprinted move and `neighbor` consume the same RNG draws
                let mut probe = rng.clone();
                let (next, touched) = space.neighbor_move(&config, &mut rng);
                assert_eq!(next, space.neighbor(&config, &mut probe));

                let components = match &touched {
                    Touched::Components(components) => components.clone(),
                    Touched::Unknown => panic!("ConfigurationSpace reports exact footprints"),
                };
                // every changed component is listed (never under-approximates)
                let host_changed = next.host_threads != config.host_threads
                    || next.host_affinity != config.host_affinity
                    || next.host_permille() != config.host_permille();
                assert_eq!(components.contains(&0), host_changed);
                for (index, (new, old)) in next.devices().iter().zip(config.devices()).enumerate() {
                    assert_eq!(components.contains(&(index + 1)), *new != *old);
                }
                config = next;
            }
        }
    }

    #[test]
    fn multi_accelerator_space_enumerates_valid_configurations() {
        let space = ConfigurationSpace::tiny_multi();
        assert_eq!(space.accelerator_count(), 2);
        let all = space.enumerate().unwrap();
        assert_eq!(all.len() as u128, space.total_configurations());
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
        for config in &all {
            assert_eq!(config.accelerator_count(), 2);
            assert_eq!(config.split().iter().sum::<u32>(), 1000);
            // every enumerated configuration yields a partition `Partition::new` accepts
            let partition = config.partition();
            assert_eq!(partition.accelerator_count(), 2);
        }
    }

    #[test]
    fn random_configurations_stay_within_the_space() {
        let space = ConfigurationSpace::paper();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let cfg = space.random(&mut rng);
            assert!(space.host_threads.contains(&cfg.host_threads));
            assert!(space.host_affinities.contains(&cfg.host_affinity));
            assert!(space.device_axes[0].threads.contains(&cfg.device_threads()));
            assert!(space.device_axes[0]
                .affinities
                .contains(&cfg.device_affinity()));
            assert!(space.splits.contains(&cfg.split()));
        }
    }

    #[test]
    fn neighbors_stay_within_the_space_and_differ_slightly() {
        for space in [
            ConfigurationSpace::paper(),
            ConfigurationSpace::tiny_multi(),
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let mut cfg = space.random(&mut rng);
            for _ in 0..1000 {
                let next = space.neighbor(&cfg, &mut rng);
                assert!(space.host_threads.contains(&next.host_threads));
                assert!(space.host_affinities.contains(&next.host_affinity));
                for (axis, device) in space.device_axes.iter().zip(next.devices()) {
                    assert!(axis.threads.contains(&device.threads));
                    assert!(axis.affinities.contains(&device.affinity));
                }
                assert!(space.splits.contains(&next.split()));
                // at most two of the parameters change per move (threads, affinity or
                // the whole split vector)
                let changed = usize::from(next.host_threads != cfg.host_threads)
                    + usize::from(next.host_affinity != cfg.host_affinity)
                    + usize::from(next.split() != cfg.split())
                    + next
                        .devices()
                        .iter()
                        .zip(cfg.devices())
                        .map(|(n, c)| {
                            usize::from(n.threads != c.threads)
                                + usize::from(n.affinity != c.affinity)
                        })
                        .sum::<usize>();
                assert!(changed <= 2, "{changed} parameters changed in one move");
                cfg = next;
            }
        }
    }

    #[test]
    fn neighbor_fraction_moves_are_mostly_local() {
        let space = ConfigurationSpace::paper();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SystemConfiguration::with_host_percent(
            24,
            Affinity::Scatter,
            60,
            Affinity::Balanced,
            50,
        );
        let mut large_moves = 0usize;
        let samples = 1000;
        for _ in 0..samples {
            let next = space.neighbor(&cfg, &mut rng);
            let delta = (next.host_permille() as i64 - cfg.host_permille() as i64).abs();
            if delta > 160 {
                large_moves += 1;
            }
        }
        // local nudges dominate; the occasional uniform jump (~10 % of fraction moves,
        // i.e. a few percent of all moves) keeps the walk ergodic
        assert!(
            large_moves < samples / 10,
            "{large_moves}/{samples} moves were long-range jumps"
        );
    }

    #[test]
    fn crossover_only_mixes_parent_values() {
        let space = ConfigurationSpace::paper();
        let mut rng = StdRng::seed_from_u64(4);
        let a = SystemConfiguration::with_host_percent(2, Affinity::None, 2, Affinity::Compact, 0);
        let b = SystemConfiguration::with_host_percent(
            48,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            100,
        );
        for _ in 0..100 {
            let child = space.crossover(&a, &b, &mut rng);
            assert!(child.host_threads == 2 || child.host_threads == 48);
            assert!(child.device_threads() == 2 || child.device_threads() == 240);
            assert!(child.host_permille() == 0 || child.host_permille() == 1000);
            assert_eq!(child.split().iter().sum::<u32>(), 1000);
        }
    }

    #[test]
    fn crossover_move_footprints_are_sound() {
        use wd_opt::Touched;
        for space in [
            ConfigurationSpace::paper(),
            ConfigurationSpace::tiny_multi(),
        ] {
            let mut rng = StdRng::seed_from_u64(23);
            for _ in 0..300 {
                let parent_a = space.random(&mut rng);
                let parent_b = space.random(&mut rng);
                // the footprinted recombination and `crossover` consume the same draws
                let mut probe = rng.clone();
                let (child, touched) = space.crossover_move(&parent_a, &parent_b, &mut rng);
                assert_eq!(child, space.crossover(&parent_a, &parent_b, &mut probe));

                let components = match &touched {
                    Touched::Components(components) => components.clone(),
                    Touched::Unknown => panic!("ConfigurationSpace reports exact footprints"),
                };
                // every component where the child differs from the FIRST parent is
                // listed (never under-approximates), and nothing else is
                let host_changed = child.host_threads != parent_a.host_threads
                    || child.host_affinity != parent_a.host_affinity
                    || child.host_permille() != parent_a.host_permille();
                assert_eq!(components.contains(&0), host_changed);
                for (index, (new, old)) in
                    child.devices().iter().zip(parent_a.devices()).enumerate()
                {
                    assert_eq!(components.contains(&(index + 1)), *new != *old);
                }
            }
        }
    }

    #[test]
    fn config_at_matches_the_enumeration_order_exactly() {
        // the indexed decoder and the nested-loop enumeration are two independent
        // implementations of the same order; they must agree element by element
        for space in [
            ConfigurationSpace::tiny(),
            ConfigurationSpace::tiny_multi(),
            ConfigurationSpace::multi_accelerator(
                vec![12, 48],
                vec![Affinity::Scatter, Affinity::Compact],
                vec![
                    DeviceAxis::new(vec![60, 240], vec![Affinity::Balanced, Affinity::Scatter]),
                    DeviceAxis::new(vec![448], vec![Affinity::Balanced]),
                    DeviceAxis::new(vec![30, 60], vec![Affinity::Compact]),
                ],
                250,
            ),
        ] {
            let all = space.enumerate().unwrap();
            assert_eq!(space.space_len(), Some(all.len()));
            for (index, config) in all.iter().enumerate() {
                assert_eq!(
                    space.config_at(index).as_ref(),
                    Some(config),
                    "index {index}"
                );
            }
            assert_eq!(space.config_at(all.len()), None);
        }
    }

    #[test]
    fn tiny_space_is_enumerable_quickly() {
        let space = ConfigurationSpace::tiny();
        let all = space.enumerate().unwrap();
        assert_eq!(all.len() as u128, space.total_configurations());
        assert!(all.len() < 1000);
    }

    #[test]
    fn hand_built_spaces_cannot_mint_invalid_configurations() {
        // `splits` is a public field; a bad entry must fail loudly (in every build
        // profile) instead of silently producing a configuration that evaluates like
        // another split but occupies its own persistent-store key.
        let mut space = ConfigurationSpace::tiny();
        space.splits.push(vec![1200, 0]);
        assert!(std::panic::catch_unwind(|| space.enumerate()).is_err());
    }

    #[test]
    fn multi_accelerator_split_moves_are_local_in_l1_distance() {
        // Regression: nudging the *index* into the lexicographically ordered simplex
        // list teleports across host-share boundaries for N >= 2 accelerators
        // ([0,1000,0] is index-adjacent to [100,0,900]); moves must be local in the
        // split itself, not in the list order.
        let space = ConfigurationSpace::tiny_multi();
        let start = space
            .enumerate()
            .unwrap()
            .into_iter()
            .find(|c| c.split() == vec![0, 1000, 0])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let samples = 1000;
        let mut far_moves = 0usize;
        for _ in 0..samples {
            let next = space.neighbor(&start, &mut rng);
            let l1: u64 = next
                .split()
                .iter()
                .zip(start.split())
                .map(|(&a, b)| u64::from(a.abs_diff(b)))
                .sum();
            if l1 > 600 {
                far_moves += 1;
            }
        }
        // only the occasional uniform jump may travel far across the simplex
        assert!(
            far_moves < samples / 10,
            "{far_moves}/{samples} split moves teleported across the simplex"
        );
    }

    #[test]
    fn device_axis_for_max_threads_clips_and_appends_capacity() {
        let axis = DeviceAxis::for_max_threads(240);
        assert_eq!(axis.threads.last(), Some(&240));
        assert!(axis.threads.iter().all(|&t| t <= 240));
        let gpu = DeviceAxis::for_max_threads(448);
        assert_eq!(gpu.threads.last(), Some(&448));
        assert!(gpu.threads.contains(&240));
    }
}
