//! System configurations and the discrete configuration space (the paper's Table I).

use std::fmt;

use hetero_platform::{Affinity, ExecutionConfig, Partition};
use rand::rngs::StdRng;
use rand::Rng;
use wd_opt::SearchSpace;

/// One *system configuration*: the tuning knobs the paper optimizes.
///
/// The workload fraction is stored in permille (0..=1000) so that both the paper's
/// 1 %-granularity search space and its 2.5 %-granularity enumeration grid can be
/// represented exactly with integer (hashable) configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemConfiguration {
    /// Number of threads on the host CPUs.
    pub host_threads: u32,
    /// Thread affinity on the host (`none` / `scatter` / `compact`).
    pub host_affinity: Affinity,
    /// Number of threads on the accelerator.
    pub device_threads: u32,
    /// Thread affinity on the accelerator (`balanced` / `scatter` / `compact`).
    pub device_affinity: Affinity,
    /// Share of the workload processed by the host, in permille (0..=1000).
    /// The accelerator receives the remaining `1000 - host_permille`.
    pub host_permille: u32,
}

impl SystemConfiguration {
    /// Create a configuration from a host percentage (0..=100).
    pub fn with_host_percent(
        host_threads: u32,
        host_affinity: Affinity,
        device_threads: u32,
        device_affinity: Affinity,
        host_percent: u32,
    ) -> Self {
        SystemConfiguration {
            host_threads,
            host_affinity,
            device_threads,
            device_affinity,
            host_permille: host_percent.min(100) * 10,
        }
    }

    /// Host share as a fraction in `[0, 1]`.
    pub fn host_fraction(&self) -> f64 {
        f64::from(self.host_permille.min(1000)) / 1000.0
    }

    /// Host share as a percentage in `[0, 100]`.
    pub fn host_percent(&self) -> f64 {
        self.host_fraction() * 100.0
    }

    /// Device share as a fraction in `[0, 1]`.
    pub fn device_fraction(&self) -> f64 {
        1.0 - self.host_fraction()
    }

    /// Does the host receive any work?
    pub fn uses_host(&self) -> bool {
        self.host_permille > 0
    }

    /// Does the accelerator receive any work?
    pub fn uses_device(&self) -> bool {
        self.host_permille < 1000
    }

    /// The two-way workload partition this configuration describes.
    pub fn partition(&self) -> Partition {
        Partition::two_way(self.host_fraction())
    }

    /// Host execution configuration (threads + affinity).
    pub fn host_execution(&self) -> ExecutionConfig {
        ExecutionConfig::new(self.host_threads, self.host_affinity)
    }

    /// Device execution configuration (threads + affinity).
    pub fn device_execution(&self) -> ExecutionConfig {
        ExecutionConfig::new(self.device_threads, self.device_affinity)
    }

    /// The CPU-only baseline configuration used by the paper's Table VIII
    /// (48 host threads, everything on the host).
    pub fn host_only_baseline() -> Self {
        SystemConfiguration {
            host_threads: 48,
            host_affinity: Affinity::Scatter,
            device_threads: 2,
            device_affinity: Affinity::Balanced,
            host_permille: 1000,
        }
    }

    /// The accelerator-only baseline of the paper's Table IX (all 240 usable device
    /// threads, everything on the device).
    pub fn device_only_baseline() -> Self {
        SystemConfiguration {
            host_threads: 2,
            host_affinity: Affinity::Scatter,
            device_threads: 240,
            device_affinity: Affinity::Balanced,
            host_permille: 0,
        }
    }
}

impl fmt::Display for SystemConfiguration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "host {{threads: {}, affinity: {}}}, device {{threads: {}, affinity: {}}}, split {:.1}/{:.1}",
            self.host_threads,
            self.host_affinity,
            self.device_threads,
            self.device_affinity,
            self.host_percent(),
            100.0 - self.host_percent(),
        )
    }
}

/// The discrete space of system configurations (the paper's Table I), which also serves
/// as the [`SearchSpace`] explored by simulated annealing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigurationSpace {
    /// Candidate host thread counts.
    pub host_threads: Vec<u32>,
    /// Candidate host affinities.
    pub host_affinities: Vec<Affinity>,
    /// Candidate device thread counts.
    pub device_threads: Vec<u32>,
    /// Candidate device affinities.
    pub device_affinities: Vec<Affinity>,
    /// Candidate host shares in permille (0..=1000).
    pub host_permilles: Vec<u32>,
}

impl ConfigurationSpace {
    /// The search space of the paper's Table I: host threads {2, 4, 6, 12, 24, 36, 48},
    /// device threads {2, 4, 8, 16, 30, 60, 120, 180, 240}, three affinities per side
    /// and a workload fraction with 1 % granularity (0..=100).
    pub fn paper() -> Self {
        ConfigurationSpace {
            host_threads: vec![2, 4, 6, 12, 24, 36, 48],
            host_affinities: Affinity::HOST.to_vec(),
            device_threads: vec![2, 4, 8, 16, 30, 60, 120, 180, 240],
            device_affinities: Affinity::DEVICE.to_vec(),
            host_permilles: (0..=100).map(|p| p * 10).collect(),
        }
    }

    /// The enumeration grid used by the paper's EM/EML reference methods
    /// (Section IV-C): host threads {2, 6, 12, 24, 36, 48}, the same device threads and
    /// affinities, and the workload fraction in 2.5 % steps, for a total of
    /// 6 × 3 × 9 × 3 × 41 = 19 926 configurations.
    pub fn enumeration_grid() -> Self {
        ConfigurationSpace {
            host_threads: vec![2, 6, 12, 24, 36, 48],
            host_affinities: Affinity::HOST.to_vec(),
            device_threads: vec![2, 4, 8, 16, 30, 60, 120, 180, 240],
            device_affinities: Affinity::DEVICE.to_vec(),
            host_permilles: (0..=40).map(|s| s * 25).collect(),
        }
    }

    /// A deliberately small space for unit tests and quick examples.
    pub fn tiny() -> Self {
        ConfigurationSpace {
            host_threads: vec![4, 24, 48],
            host_affinities: vec![Affinity::Scatter, Affinity::Compact],
            device_threads: vec![30, 120, 240],
            device_affinities: vec![Affinity::Balanced, Affinity::Compact],
            host_permilles: (0..=10).map(|p| p * 100).collect(),
        }
    }

    /// Number of configurations in the space (the paper's Eq. 1: the product of the
    /// parameter value-range sizes).
    pub fn total_configurations(&self) -> u128 {
        self.host_threads.len() as u128
            * self.host_affinities.len() as u128
            * self.device_threads.len() as u128
            * self.device_affinities.len() as u128
            * self.host_permilles.len() as u128
    }

    fn sample_index<T>(values: &[T], rng: &mut StdRng) -> usize {
        debug_assert!(!values.is_empty());
        rng.gen_range(0..values.len())
    }

    fn nudge_index<T>(values: &[T], current: usize, max_step: usize, rng: &mut StdRng) -> usize {
        if values.len() <= 1 {
            return 0;
        }
        // Mostly local moves, with an occasional uniform jump so the walk can escape
        // corner optima (e.g. "everything on the host") that local moves reach slowly.
        if rng.gen_bool(0.1) {
            return rng.gen_range(0..values.len());
        }
        let step = rng.gen_range(1..=max_step.max(1)) as i64;
        let direction = if rng.gen_bool(0.5) { 1 } else { -1 };
        (current as i64 + direction * step).clamp(0, values.len() as i64 - 1) as usize
    }

    fn index_of<T: PartialEq>(values: &[T], value: &T) -> usize {
        values.iter().position(|v| v == value).unwrap_or(0)
    }
}

impl SearchSpace for ConfigurationSpace {
    type Config = SystemConfiguration;

    fn random(&self, rng: &mut StdRng) -> SystemConfiguration {
        SystemConfiguration {
            host_threads: self.host_threads[Self::sample_index(&self.host_threads, rng)],
            host_affinity: self.host_affinities[Self::sample_index(&self.host_affinities, rng)],
            device_threads: self.device_threads[Self::sample_index(&self.device_threads, rng)],
            device_affinity: self.device_affinities
                [Self::sample_index(&self.device_affinities, rng)],
            host_permille: self.host_permilles[Self::sample_index(&self.host_permilles, rng)],
        }
    }

    fn neighbor(&self, config: &SystemConfiguration, rng: &mut StdRng) -> SystemConfiguration {
        let mut next = *config;
        // perturb one parameter most of the time, occasionally two, so the walk can
        // escape ridges that require coordinated changes
        let changes = if rng.gen_bool(0.2) { 2 } else { 1 };
        for _ in 0..changes {
            match rng.gen_range(0..5u8) {
                0 => {
                    let i = Self::index_of(&self.host_threads, &next.host_threads);
                    next.host_threads =
                        self.host_threads[Self::nudge_index(&self.host_threads, i, 2, rng)];
                }
                1 => {
                    next.host_affinity =
                        self.host_affinities[Self::sample_index(&self.host_affinities, rng)];
                }
                2 => {
                    let i = Self::index_of(&self.device_threads, &next.device_threads);
                    next.device_threads =
                        self.device_threads[Self::nudge_index(&self.device_threads, i, 2, rng)];
                }
                3 => {
                    next.device_affinity =
                        self.device_affinities[Self::sample_index(&self.device_affinities, rng)];
                }
                _ => {
                    let i = Self::index_of(&self.host_permilles, &next.host_permille);
                    next.host_permille =
                        self.host_permilles[Self::nudge_index(&self.host_permilles, i, 8, rng)];
                }
            }
        }
        next
    }

    fn cardinality(&self) -> Option<u128> {
        Some(self.total_configurations())
    }

    fn enumerate(&self) -> Option<Vec<SystemConfiguration>> {
        let mut all = Vec::with_capacity(self.total_configurations().min(1 << 24) as usize);
        for &host_threads in &self.host_threads {
            for &host_affinity in &self.host_affinities {
                for &device_threads in &self.device_threads {
                    for &device_affinity in &self.device_affinities {
                        for &host_permille in &self.host_permilles {
                            all.push(SystemConfiguration {
                                host_threads,
                                host_affinity,
                                device_threads,
                                device_affinity,
                                host_permille,
                            });
                        }
                    }
                }
            }
        }
        Some(all)
    }

    fn crossover(
        &self,
        parent_a: &SystemConfiguration,
        parent_b: &SystemConfiguration,
        rng: &mut StdRng,
    ) -> SystemConfiguration {
        SystemConfiguration {
            host_threads: if rng.gen_bool(0.5) {
                parent_a.host_threads
            } else {
                parent_b.host_threads
            },
            host_affinity: if rng.gen_bool(0.5) {
                parent_a.host_affinity
            } else {
                parent_b.host_affinity
            },
            device_threads: if rng.gen_bool(0.5) {
                parent_a.device_threads
            } else {
                parent_b.device_threads
            },
            device_affinity: if rng.gen_bool(0.5) {
                parent_a.device_affinity
            } else {
                parent_b.device_affinity
            },
            host_permille: if rng.gen_bool(0.5) {
                parent_a.host_permille
            } else {
                parent_b.host_permille
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fraction_accessors_are_consistent() {
        let cfg = SystemConfiguration::with_host_percent(
            24,
            Affinity::Scatter,
            120,
            Affinity::Balanced,
            60,
        );
        assert_eq!(cfg.host_permille, 600);
        assert!((cfg.host_fraction() - 0.6).abs() < 1e-12);
        assert!((cfg.device_fraction() - 0.4).abs() < 1e-12);
        assert!(cfg.uses_host() && cfg.uses_device());
        assert!((cfg.partition().host_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(cfg.host_execution().threads, 24);
        assert_eq!(cfg.device_execution().threads, 120);
    }

    #[test]
    fn baselines_are_exclusive() {
        let host_only = SystemConfiguration::host_only_baseline();
        assert!(host_only.uses_host() && !host_only.uses_device());
        assert_eq!(host_only.host_threads, 48);
        let device_only = SystemConfiguration::device_only_baseline();
        assert!(!device_only.uses_host() && device_only.uses_device());
        assert_eq!(device_only.device_threads, 240);
    }

    #[test]
    fn display_mentions_the_split() {
        let cfg =
            SystemConfiguration::with_host_percent(48, Affinity::None, 240, Affinity::Compact, 70);
        let text = cfg.to_string();
        assert!(text.contains("70.0/30.0"));
        assert!(text.contains("none"));
        assert!(text.contains("compact"));
    }

    #[test]
    fn paper_space_cardinality_matches_eq_1() {
        let space = ConfigurationSpace::paper();
        assert_eq!(
            space.total_configurations(),
            7 * 3 * 9 * 3 * 101,
            "product of the Table I value-range sizes"
        );
    }

    #[test]
    fn enumeration_grid_has_19926_configurations() {
        let grid = ConfigurationSpace::enumeration_grid();
        assert_eq!(grid.total_configurations(), 19_926);
        let all = grid.enumerate().unwrap();
        assert_eq!(all.len(), 19_926);
        // no duplicates
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn random_configurations_stay_within_the_space() {
        let space = ConfigurationSpace::paper();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let cfg = space.random(&mut rng);
            assert!(space.host_threads.contains(&cfg.host_threads));
            assert!(space.host_affinities.contains(&cfg.host_affinity));
            assert!(space.device_threads.contains(&cfg.device_threads));
            assert!(space.device_affinities.contains(&cfg.device_affinity));
            assert!(space.host_permilles.contains(&cfg.host_permille));
        }
    }

    #[test]
    fn neighbors_stay_within_the_space_and_differ_slightly() {
        let space = ConfigurationSpace::paper();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = space.random(&mut rng);
        for _ in 0..1000 {
            let next = space.neighbor(&cfg, &mut rng);
            assert!(space.host_threads.contains(&next.host_threads));
            assert!(space.host_affinities.contains(&next.host_affinity));
            assert!(space.device_threads.contains(&next.device_threads));
            assert!(space.device_affinities.contains(&next.device_affinity));
            assert!(space.host_permilles.contains(&next.host_permille));
            // at most three of the five parameters change per move
            let changed = usize::from(next.host_threads != cfg.host_threads)
                + usize::from(next.host_affinity != cfg.host_affinity)
                + usize::from(next.device_threads != cfg.device_threads)
                + usize::from(next.device_affinity != cfg.device_affinity)
                + usize::from(next.host_permille != cfg.host_permille);
            assert!(changed <= 3);
            cfg = next;
        }
    }

    #[test]
    fn neighbor_fraction_moves_are_mostly_local() {
        let space = ConfigurationSpace::paper();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SystemConfiguration::with_host_percent(
            24,
            Affinity::Scatter,
            60,
            Affinity::Balanced,
            50,
        );
        let mut large_moves = 0usize;
        let samples = 1000;
        for _ in 0..samples {
            let next = space.neighbor(&cfg, &mut rng);
            let delta = (next.host_permille as i64 - cfg.host_permille as i64).abs();
            if delta > 160 {
                large_moves += 1;
            }
        }
        // local nudges dominate; the occasional uniform jump (~10 % of fraction moves,
        // i.e. a few percent of all moves) keeps the walk ergodic
        assert!(
            large_moves < samples / 10,
            "{large_moves}/{samples} moves were long-range jumps"
        );
    }

    #[test]
    fn crossover_only_mixes_parent_values() {
        let space = ConfigurationSpace::paper();
        let mut rng = StdRng::seed_from_u64(4);
        let a = SystemConfiguration::with_host_percent(2, Affinity::None, 2, Affinity::Compact, 0);
        let b = SystemConfiguration::with_host_percent(
            48,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            100,
        );
        for _ in 0..100 {
            let child = space.crossover(&a, &b, &mut rng);
            assert!(child.host_threads == 2 || child.host_threads == 48);
            assert!(child.device_threads == 2 || child.device_threads == 240);
            assert!(child.host_permille == 0 || child.host_permille == 1000);
        }
    }

    #[test]
    fn tiny_space_is_enumerable_quickly() {
        let space = ConfigurationSpace::tiny();
        let all = space.enumerate().unwrap();
        assert_eq!(all.len() as u128, space.total_configurations());
        assert!(all.len() < 1000);
    }
}
