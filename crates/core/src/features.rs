//! Feature encoding for the performance-prediction models.
//!
//! The paper trains one model for the host and one for the device; both use "the input
//! size, the available computing resources, and the thread allocation strategies" as
//! features (Section III-B).  We encode them as: thread count, a one-hot affinity
//! encoding, and the size of the device's input share in gigabytes.
//!
//! For a node with N accelerators the same schema applies per device:
//! [`per_device_features`] extracts one feature vector per accelerator from a
//! [`SystemConfiguration`], each consumed by that accelerator's own model.

use hetero_platform::Affinity;

use crate::config::SystemConfiguration;

/// Names of the host-model features, in column order.
pub fn host_feature_names() -> Vec<String> {
    vec![
        "host_threads".to_string(),
        "affinity_none".to_string(),
        "affinity_scatter".to_string(),
        "affinity_compact".to_string(),
        "input_gb".to_string(),
    ]
}

/// Names of the device-model features, in column order.
pub fn device_feature_names() -> Vec<String> {
    vec![
        "device_threads".to_string(),
        "affinity_balanced".to_string(),
        "affinity_scatter".to_string(),
        "affinity_compact".to_string(),
        "input_gb".to_string(),
    ]
}

/// Feature vector for one host-side experiment.
pub fn host_features(threads: u32, affinity: Affinity, bytes: u64) -> Vec<f64> {
    vec![
        f64::from(threads),
        f64::from(affinity == Affinity::None),
        f64::from(affinity == Affinity::Scatter),
        f64::from(affinity == Affinity::Compact),
        bytes as f64 / 1e9,
    ]
}

/// Feature vector for one device-side experiment.
pub fn device_features(threads: u32, affinity: Affinity, bytes: u64) -> Vec<f64> {
    vec![
        f64::from(threads),
        f64::from(affinity == Affinity::Balanced),
        f64::from(affinity == Affinity::Scatter),
        f64::from(affinity == Affinity::Compact),
        bytes as f64 / 1e9,
    ]
}

/// Bytes of a `total_bytes` workload that a share of `permille` receives — the same
/// rounding [`hetero_platform::WorkloadProfile::fraction`] applies, so prediction
/// features describe exactly the share the simulator would execute.
pub fn share_bytes(total_bytes: u64, permille: u32) -> u64 {
    (total_bytes as f64 * f64::from(permille.min(1000)) / 1000.0).round() as u64
}

/// Host-side feature vector of a configuration for a `total_bytes` workload.
pub fn host_config_features(config: &SystemConfiguration, total_bytes: u64) -> Vec<f64> {
    host_features(
        config.host_threads,
        config.host_affinity,
        share_bytes(total_bytes, config.host_permille()),
    )
}

/// One device-side feature vector per accelerator of `config`, in device order — the
/// N-way generalisation of the paper's single device feature row.  Device `i`'s vector
/// is consumed by device `i`'s prediction model.
pub fn per_device_features(config: &SystemConfiguration, total_bytes: u64) -> Vec<Vec<f64>> {
    config
        .devices()
        .iter()
        .map(|device| {
            device_features(
                device.threads,
                device.affinity,
                share_bytes(total_bytes, device.permille),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vectors_match_their_schemas() {
        assert_eq!(
            host_features(24, Affinity::Scatter, 1_000_000_000).len(),
            host_feature_names().len()
        );
        assert_eq!(
            device_features(120, Affinity::Balanced, 1_000_000_000).len(),
            device_feature_names().len()
        );
    }

    #[test]
    fn one_hot_encoding_is_exclusive() {
        for affinity in [Affinity::None, Affinity::Scatter, Affinity::Compact] {
            let f = host_features(2, affinity, 0);
            let ones = f[1] + f[2] + f[3];
            assert_eq!(ones, 1.0, "exactly one affinity indicator for {affinity}");
        }
        for affinity in [Affinity::Balanced, Affinity::Scatter, Affinity::Compact] {
            let f = device_features(2, affinity, 0);
            let ones = f[1] + f[2] + f[3];
            assert_eq!(ones, 1.0);
        }
    }

    #[test]
    fn size_is_reported_in_gigabytes() {
        let f = host_features(48, Affinity::Scatter, 3_170_000_000);
        assert!((f[4] - 3.17).abs() < 1e-9);
        let f = device_features(240, Affinity::Balanced, 500_000_000);
        assert!((f[4] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn thread_count_is_the_first_feature() {
        assert_eq!(host_features(36, Affinity::None, 0)[0], 36.0);
        assert_eq!(device_features(180, Affinity::Compact, 0)[0], 180.0);
    }

    #[test]
    fn per_device_features_produce_one_vector_per_accelerator() {
        use crate::config::DeviceSetting;
        let config = SystemConfiguration::new(
            48,
            Affinity::Scatter,
            500,
            vec![
                DeviceSetting::new(240, Affinity::Balanced, 300),
                DeviceSetting::new(448, Affinity::Scatter, 200),
            ],
        )
        .unwrap();
        let total = 1_000_000_000u64;
        let rows = per_device_features(&config, total);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            device_features(240, Affinity::Balanced, 300_000_000)
        );
        assert_eq!(
            rows[1],
            device_features(448, Affinity::Scatter, 200_000_000)
        );
        let host = host_config_features(&config, total);
        assert_eq!(host, host_features(48, Affinity::Scatter, 500_000_000));
        // share rounding matches WorkloadProfile::fraction
        assert_eq!(share_bytes(3, 500), 2); // 1.5 rounds half away from zero
        assert_eq!(share_bytes(1_000, 333), 333);
    }
}
