//! Canonical experiment definitions shared by the `repro` harness, the Criterion
//! benches, the examples and the integration tests.
//!
//! Every figure and table of the paper's evaluation maps to a function or type here:
//!
//! | paper artifact | entry point |
//! |---|---|
//! | Fig. 2a–c (motivation)            | [`motivation_experiment`] |
//! | Figs. 5–8, Tables IV–V (accuracy) | [`TrainingCampaign::run`](crate::TrainingCampaign) via [`prediction_study`] |
//! | Fig. 9, Tables VI–VII             | [`ConvergenceStudy`] |
//! | Tables VIII–IX (speedups)         | [`ConvergenceStudy::speedup_rows`] |

use dna_analysis::Genome;
use hetero_platform::{
    Affinity, ExecutionConfig, ExecutionRequest, HeterogeneousPlatform, WorkloadProfile,
};
use rayon::prelude::*;
use wd_ml::BoostingParams;

use crate::config::SystemConfiguration;
use crate::evaluator::MeasurementEvaluator;
use crate::methods::{MethodKind, MethodOutcome, MethodRunner};
use crate::training::{TrainedModels, TrainingCampaign};

/// The iteration budgets reported in the paper's Tables VI–IX and Fig. 9.
pub fn paper_iteration_budgets() -> Vec<usize> {
    vec![250, 500, 750, 1000, 1250, 1500, 1750, 2000]
}

/// One point of the motivational experiment (Fig. 2): a work-distribution ratio and its
/// execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct MotivationPoint {
    /// Human-readable ratio label ("CPU only", "90/10", ..., "Phi only").
    pub label: String,
    /// Host share in percent.
    pub host_percent: u32,
    /// Simulated execution time in seconds.
    pub seconds: f64,
    /// Execution time normalised into the range 1–10 as in the paper's plots.
    pub normalized: f64,
}

/// Reproduce one sub-figure of Fig. 2: scan `input_megabytes` MB with `host_threads`
/// host threads (scatter affinity) and all 240 device threads (balanced affinity),
/// varying the work-distribution ratio over the paper's eleven values.
///
/// All eleven ratios are measured as one batched
/// [`HeterogeneousPlatform::execute_many`] call.
pub fn motivation_experiment(
    platform: &HeterogeneousPlatform,
    input_megabytes: u64,
    host_threads: u32,
) -> Vec<MotivationPoint> {
    let workload = WorkloadProfile::dna_scan(
        &format!("motivation-{input_megabytes}MB"),
        input_megabytes * 1_000_000,
    );
    let host_cfg = ExecutionConfig::new(host_threads, Affinity::Scatter);
    let device_cfg = ExecutionConfig::new(240, Affinity::Balanced);

    let ratios: Vec<u32> = (0..=10u32).rev().map(|step| step * 10).collect();
    let requests: Vec<ExecutionRequest> = ratios
        .iter()
        .map(|&host_percent| {
            ExecutionRequest::two_way(f64::from(host_percent) / 100.0, host_cfg, device_cfg)
        })
        .collect();
    let mut points: Vec<MotivationPoint> = platform
        .execute_many(&workload, &requests)
        .into_iter()
        .zip(&ratios)
        .map(|(measurement, &host_percent)| {
            let label = match host_percent {
                100 => "CPU only".to_string(),
                0 => "Phi only".to_string(),
                p => format!("{p}/{d}", d = 100 - p),
            };
            MotivationPoint {
                label,
                host_percent,
                seconds: measurement
                    .expect("motivation configuration is valid")
                    .t_total,
                normalized: 0.0,
            }
        })
        .collect();

    // normalise into 1..10 as the paper does
    let min = points
        .iter()
        .map(|p| p.seconds)
        .fold(f64::INFINITY, f64::min);
    let max = points
        .iter()
        .map(|p| p.seconds)
        .fold(f64::NEG_INFINITY, f64::max);
    let range = (max - min).max(f64::MIN_POSITIVE);
    for point in &mut points {
        point.normalized = 1.0 + 9.0 * (point.seconds - min) / range;
    }
    points
}

/// Run the prediction study (the paper's Section IV-B): execute the training campaign
/// and fit/evaluate the host and device models.
pub fn prediction_study(
    platform: &HeterogeneousPlatform,
    campaign: &TrainingCampaign,
    boosting: BoostingParams,
) -> TrainedModels {
    campaign.run(platform, boosting)
}

/// Convergence results for one genome.
#[derive(Debug, Clone)]
pub struct GenomeConvergence {
    /// The genome being analysed.
    pub genome: Genome,
    /// Enumeration + Measurements (the reference optimum).
    pub em: MethodOutcome,
    /// Enumeration + Machine Learning.
    pub eml: MethodOutcome,
    /// Simulated Annealing + Measurements, per iteration budget.
    pub sam: Vec<(usize, MethodOutcome)>,
    /// Simulated Annealing + Machine Learning, per iteration budget.
    pub saml: Vec<(usize, MethodOutcome)>,
    /// Host-only baseline (48 threads) in seconds.
    pub host_only_seconds: f64,
    /// Device-only baseline (240 threads) in seconds.
    pub device_only_seconds: f64,
}

/// The convergence study behind the paper's Fig. 9 and Tables VI–IX.
#[derive(Debug, Clone)]
pub struct ConvergenceStudy {
    /// The simulated-annealing iteration budgets examined.
    pub budgets: Vec<usize>,
    /// Per-genome results.
    pub genomes: Vec<GenomeConvergence>,
}

/// Which baseline a speedup table compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedupBaseline {
    /// Compare against host-only execution (Table VIII).
    HostOnly,
    /// Compare against device-only execution (Table IX).
    DeviceOnly,
}

impl ConvergenceStudy {
    /// Run the study with the default number of annealing repetitions per budget.
    ///
    /// See [`ConvergenceStudy::run_with_repeats`]; three repetitions keep the
    /// run-to-run variance of the stochastic annealer from obscuring the
    /// convergence trend, matching the smooth curves the paper plots.
    pub fn run(
        platform: &HeterogeneousPlatform,
        models: &TrainedModels,
        genomes: &[Genome],
        budgets: &[usize],
        seed: u64,
    ) -> Self {
        Self::run_with_repeats(platform, models, genomes, budgets, seed, 3)
    }

    /// Run the study: for every genome run EM and EML once and, per iteration budget,
    /// run SAM/SAML `repeats` times with independent seeds and keep the run with the
    /// median measured execution time.
    pub fn run_with_repeats(
        platform: &HeterogeneousPlatform,
        models: &TrainedModels,
        genomes: &[Genome],
        budgets: &[usize],
        seed: u64,
        repeats: usize,
    ) -> Self {
        let repeats = repeats.max(1);

        // run one method at every budget, `repeats` times in parallel (each annealing
        // repeat has an independent seed, so repeats are order-independent), keeping
        // the run with the median measured execution time
        let run_annealer = |workload: &WorkloadProfile, method: MethodKind, genome: Genome| {
            budgets
                .iter()
                .map(|&budget| {
                    let mut outcomes: Vec<MethodOutcome> = (0..repeats)
                        .collect::<Vec<_>>()
                        .into_par_iter()
                        .map(|repeat| {
                            let run_seed = seed
                                ^ (genome as u64)
                                ^ (repeat as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                            MethodRunner::new(platform, workload, Some(models), run_seed)
                                .run(method, budget)
                                .expect("annealing methods cannot fail with models present")
                        })
                        .collect();
                    outcomes.sort_by(|a, b| a.measured_energy.total_cmp(&b.measured_energy));
                    (budget, outcomes.swap_remove(outcomes.len() / 2))
                })
                .collect::<Vec<_>>()
        };

        let genomes = genomes
            .iter()
            .map(|&genome| {
                let workload = genome.workload();
                let runner =
                    MethodRunner::new(platform, &workload, Some(models), seed ^ genome as u64);
                let em = runner.run(MethodKind::Em, 0).expect("EM needs no models");
                let eml = runner.run(MethodKind::Eml, 0).expect("models provided");
                let sam = run_annealer(&workload, MethodKind::Sam, genome);
                let saml = run_annealer(&workload, MethodKind::Saml, genome);
                let measurement = MeasurementEvaluator::new(platform.clone(), workload.clone());
                use wd_opt::Objective as _;
                let baselines = measurement.evaluate_batch(&[
                    SystemConfiguration::host_only_baseline(),
                    SystemConfiguration::device_only_baseline(),
                ]);
                GenomeConvergence {
                    genome,
                    em,
                    eml,
                    sam,
                    saml,
                    host_only_seconds: baselines[0],
                    device_only_seconds: baselines[1],
                }
            })
            .collect();
        ConvergenceStudy {
            budgets: budgets.to_vec(),
            genomes,
        }
    }

    /// Table VI: percent difference between the SAML configuration at each budget and
    /// the EM optimum, per genome, plus the average row.  Rows are
    /// `(label, one value per budget)`.
    pub fn percent_difference_rows(&self) -> Vec<(String, Vec<f64>)> {
        self.difference_rows(|saml, em| 100.0 * (saml - em).abs() / em)
    }

    /// Table VII: absolute difference [s] between SAML and EM.
    pub fn absolute_difference_rows(&self) -> Vec<(String, Vec<f64>)> {
        self.difference_rows(|saml, em| (saml - em).abs())
    }

    fn difference_rows(&self, difference: impl Fn(f64, f64) -> f64) -> Vec<(String, Vec<f64>)> {
        let mut rows: Vec<(String, Vec<f64>)> = self
            .genomes
            .iter()
            .map(|g| {
                let values = g
                    .saml
                    .iter()
                    .map(|(_, outcome)| difference(outcome.measured_energy, g.em.measured_energy))
                    .collect();
                (g.genome.name().to_string(), values)
            })
            .collect();
        if !rows.is_empty() {
            let columns = self.budgets.len();
            let average: Vec<f64> = (0..columns)
                .map(|c| rows.iter().map(|(_, v)| v[c]).sum::<f64>() / rows.len() as f64)
                .collect();
            rows.push(("average".to_string(), average));
        }
        rows
    }

    /// Tables VIII and IX: speedup of the SAML configuration at each budget (and of the
    /// EM optimum, as the final column) over the selected baseline.  Rows are
    /// `(label, one value per budget, EM value)`.
    pub fn speedup_rows(&self, baseline: SpeedupBaseline) -> Vec<(String, Vec<f64>, f64)> {
        self.genomes
            .iter()
            .map(|g| {
                let reference = match baseline {
                    SpeedupBaseline::HostOnly => g.host_only_seconds,
                    SpeedupBaseline::DeviceOnly => g.device_only_seconds,
                };
                let budget_speedups = g
                    .saml
                    .iter()
                    .map(|(_, outcome)| reference / outcome.measured_energy)
                    .collect();
                let em_speedup = reference / g.em.measured_energy;
                (g.genome.name().to_string(), budget_speedups, em_speedup)
            })
            .collect()
    }

    /// Fig. 9 data for one genome: `(budget, SAML, SAM)` measured execution times plus
    /// the EM and EML reference lines.
    pub fn figure9_series(&self, genome: Genome) -> Option<Figure9Series> {
        self.genomes
            .iter()
            .find(|g| g.genome == genome)
            .map(|g| Figure9Series {
                genome,
                budgets: self.budgets.clone(),
                saml: g.saml.iter().map(|(_, o)| o.measured_energy).collect(),
                sam: g.sam.iter().map(|(_, o)| o.measured_energy).collect(),
                em: g.em.measured_energy,
                eml: g.eml.measured_energy,
            })
    }
}

/// The data behind one sub-plot of the paper's Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure9Series {
    /// The genome of this sub-plot.
    pub genome: Genome,
    /// Iteration budgets (x-axis).
    pub budgets: Vec<usize>,
    /// Measured execution time of the SAML-suggested configuration per budget.
    pub saml: Vec<f64>,
    /// Measured execution time of the SAM-suggested configuration per budget.
    pub sam: Vec<f64>,
    /// The EM optimum (solid horizontal line).
    pub em: f64,
    /// The EML optimum re-measured (dashed horizontal line).
    pub eml: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigurationSpace;

    fn platform() -> HeterogeneousPlatform {
        HeterogeneousPlatform::emil()
    }

    #[test]
    fn motivation_experiment_has_eleven_normalized_points() {
        let points = motivation_experiment(&platform(), 3250, 48);
        assert_eq!(points.len(), 11);
        assert_eq!(points.first().unwrap().label, "CPU only");
        assert_eq!(points.last().unwrap().label, "Phi only");
        for point in &points {
            assert!(point.normalized >= 1.0 - 1e-9 && point.normalized <= 10.0 + 1e-9);
            assert!(point.seconds > 0.0);
        }
        // at least one point touches each end of the normalised range
        assert!(points.iter().any(|p| (p.normalized - 1.0).abs() < 1e-9));
        assert!(points.iter().any(|p| (p.normalized - 10.0).abs() < 1e-9));
    }

    #[test]
    fn motivation_small_input_prefers_cpu_only() {
        // Fig. 2a: for a 190 MB input with 48 threads the CPU-only point is the fastest.
        let points = motivation_experiment(&platform(), 190, 48);
        let cpu_only = points.iter().find(|p| p.host_percent == 100).unwrap();
        let best = points
            .iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .unwrap();
        assert_eq!(best.host_percent, cpu_only.host_percent);
    }

    #[test]
    fn motivation_large_input_prefers_a_mixed_split() {
        // Fig. 2b: for a 3250 MB input with 48 threads a 60/40-ish split wins.
        let points = motivation_experiment(&platform(), 3250, 48);
        let best = points
            .iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .unwrap();
        assert!(best.host_percent > 0 && best.host_percent < 100);
    }

    #[test]
    fn motivation_few_host_threads_prefers_the_device() {
        // Fig. 2c: with only 4 host threads most of the work should go to the device.
        let points = motivation_experiment(&platform(), 3250, 4);
        let best = points
            .iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .unwrap();
        assert!(
            best.host_percent <= 40,
            "best host share {}",
            best.host_percent
        );
    }

    #[test]
    fn convergence_study_on_a_tiny_space_is_consistent() {
        let platform = platform();
        let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
        // shrink the study so the test stays fast: tiny grid, two budgets, one genome
        let workload = Genome::Cat.workload();
        let runner = MethodRunner::new(&platform, &workload, Some(&models), 3)
            .with_grid(ConfigurationSpace::tiny())
            .with_space(ConfigurationSpace::tiny());
        let em = runner.run(MethodKind::Em, 0).unwrap();
        let saml = runner.run(MethodKind::Saml, 200).unwrap();
        assert!(em.measured_energy > 0.0);
        // EM is optimal on the grid, so SAML (restricted to the same space) cannot beat
        // it by more than the measurement noise
        assert!(saml.measured_energy >= em.measured_energy * 0.9);
    }

    #[test]
    fn paper_iteration_budgets_match_the_tables() {
        assert_eq!(
            paper_iteration_budgets(),
            vec![250, 500, 750, 1000, 1250, 1500, 1750, 2000]
        );
    }
}
