//! Canonical experiment definitions shared by the `repro` harness, the Criterion
//! benches, the examples and the integration tests.
//!
//! Every figure and table of the paper's evaluation maps to a function or type here:
//!
//! | paper artifact | entry point |
//! |---|---|
//! | Fig. 2a–c (motivation)            | [`motivation_experiment`] |
//! | Figs. 5–8, Tables IV–V (accuracy) | [`TrainingCampaign::run`](crate::TrainingCampaign) via [`prediction_study`] |
//! | Fig. 9, Tables VI–VII             | [`ConvergenceStudy`] |
//! | Tables VIII–IX (speedups)         | [`ConvergenceStudy::speedup_rows`] |

use dna_analysis::Genome;
use hetero_platform::{
    Affinity, ExecutionConfig, ExecutionRequest, HeterogeneousPlatform, WorkloadProfile,
};
use rayon::prelude::*;
use wd_ml::BoostingParams;

use crate::config::{ConfigurationSpace, SystemConfiguration};
use crate::evaluator::MeasurementEvaluator;
use crate::methods::{MethodKind, MethodOutcome, MethodRunner};
use crate::training::{TrainedModels, TrainingCampaign};

/// The iteration budgets reported in the paper's Tables VI–IX and Fig. 9.
pub fn paper_iteration_budgets() -> Vec<usize> {
    vec![250, 500, 750, 1000, 1250, 1500, 1750, 2000]
}

/// One point of the motivational experiment (Fig. 2): a work-distribution ratio and its
/// execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct MotivationPoint {
    /// Human-readable ratio label ("CPU only", "90/10", ..., "Phi only").
    pub label: String,
    /// Host share in percent.
    pub host_percent: u32,
    /// Simulated execution time in seconds.
    pub seconds: f64,
    /// Execution time normalised into the range 1–10 as in the paper's plots.
    pub normalized: f64,
}

/// Reproduce one sub-figure of Fig. 2: scan `input_megabytes` MB with `host_threads`
/// host threads (scatter affinity) and all 240 device threads (balanced affinity),
/// varying the work-distribution ratio over the paper's eleven values.
///
/// All eleven ratios are measured as one batched
/// [`HeterogeneousPlatform::execute_many`] call.
pub fn motivation_experiment(
    platform: &HeterogeneousPlatform,
    input_megabytes: u64,
    host_threads: u32,
) -> Vec<MotivationPoint> {
    let workload = WorkloadProfile::dna_scan(
        &format!("motivation-{input_megabytes}MB"),
        input_megabytes * 1_000_000,
    );
    let host_cfg = ExecutionConfig::new(host_threads, Affinity::Scatter);
    let device_cfg = ExecutionConfig::new(240, Affinity::Balanced);

    let ratios: Vec<u32> = (0..=10u32).rev().map(|step| step * 10).collect();
    let requests: Vec<ExecutionRequest> = ratios
        .iter()
        .map(|&host_percent| {
            ExecutionRequest::two_way(f64::from(host_percent) / 100.0, host_cfg, device_cfg)
                .expect("motivation ratios lie in [0, 1]")
        })
        .collect();
    let mut points: Vec<MotivationPoint> = platform
        .execute_many(&workload, &requests)
        .into_iter()
        .zip(&ratios)
        .map(|(measurement, &host_percent)| {
            let label = match host_percent {
                100 => "CPU only".to_string(),
                0 => "Phi only".to_string(),
                p => format!("{p}/{d}", d = 100 - p),
            };
            MotivationPoint {
                label,
                host_percent,
                seconds: measurement
                    .expect("motivation configuration is valid")
                    .t_total,
                normalized: 0.0,
            }
        })
        .collect();

    // normalise into 1..10 as the paper does
    let min = points
        .iter()
        .map(|p| p.seconds)
        .fold(f64::INFINITY, f64::min);
    let max = points
        .iter()
        .map(|p| p.seconds)
        .fold(f64::NEG_INFINITY, f64::max);
    let range = (max - min).max(f64::MIN_POSITIVE);
    for point in &mut points {
        point.normalized = 1.0 + 9.0 * (point.seconds - min) / range;
    }
    points
}

/// Run the prediction study (the paper's Section IV-B): execute the training campaign
/// and fit/evaluate the host and device models.
pub fn prediction_study(
    platform: &HeterogeneousPlatform,
    campaign: &TrainingCampaign,
    boosting: BoostingParams,
) -> TrainedModels {
    campaign.run(platform, boosting)
}

/// The three [`WorkloadProfile`] kinds at one input size: the paper's DNA scan plus
/// the synthetic compute-bound and streaming (transfer-bound) workloads.  This is the
/// standard mix the multi-workload studies and benches iterate over (ROADMAP "More
/// workloads").
pub fn workload_mix(bytes: u64) -> Vec<WorkloadProfile> {
    vec![
        WorkloadProfile::dna_scan("dna-scan", bytes),
        WorkloadProfile::compute_bound("compute-bound", bytes, 6.0),
        WorkloadProfile::streaming("streaming", bytes),
    ]
}

/// Convergence results for one workload case (one genome of the paper's study, or any
/// other [`WorkloadProfile`]).
#[derive(Debug, Clone)]
pub struct CaseConvergence {
    /// Row label of this case in the tables (genome name or workload name).
    pub label: String,
    /// The genome, when this case came from the paper's per-genome study.
    pub genome: Option<Genome>,
    /// The workload being analysed.
    pub workload: WorkloadProfile,
    /// Enumeration + Measurements (the reference optimum).
    pub em: MethodOutcome,
    /// Enumeration + Machine Learning.
    pub eml: MethodOutcome,
    /// Simulated Annealing + Measurements, per iteration budget.
    pub sam: Vec<(usize, MethodOutcome)>,
    /// Simulated Annealing + Machine Learning, per iteration budget.
    pub saml: Vec<(usize, MethodOutcome)>,
    /// Genetic Algorithm + Machine Learning (this crate's extension beyond the
    /// paper's Table II), per iteration budget — same budgets, seeds and
    /// median-of-repeats selection as the annealing rows.
    pub gaml: Vec<(usize, MethodOutcome)>,
    /// Host-only baseline (48 threads) in seconds.
    pub host_only_seconds: f64,
    /// Device-only baseline (240 threads) in seconds.
    pub device_only_seconds: f64,
}

/// The convergence study behind the paper's Fig. 9 and Tables VI–IX, generalised to
/// arbitrary workload cases.
#[derive(Debug, Clone)]
pub struct ConvergenceStudy {
    /// The simulated-annealing iteration budgets examined.
    pub budgets: Vec<usize>,
    /// Per-case results (one per genome for the paper's study, one per workload for
    /// the multi-workload studies).
    pub cases: Vec<CaseConvergence>,
}

/// Deterministic per-case seed salt derived from the case label (FNV-1a), so every
/// case gets an independent annealing stream regardless of its position in the study.
fn label_seed(label: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Which baseline a speedup table compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedupBaseline {
    /// Compare against host-only execution (Table VIII).
    HostOnly,
    /// Compare against device-only execution (Table IX).
    DeviceOnly,
}

impl ConvergenceStudy {
    /// Run the study with the default number of annealing repetitions per budget.
    ///
    /// See [`ConvergenceStudy::run_with_repeats`]; three repetitions keep the
    /// run-to-run variance of the stochastic annealer from obscuring the
    /// convergence trend, matching the smooth curves the paper plots.
    pub fn run(
        platform: &HeterogeneousPlatform,
        models: &TrainedModels,
        genomes: &[Genome],
        budgets: &[usize],
        seed: u64,
    ) -> Self {
        Self::run_with_repeats(platform, models, genomes, budgets, seed, 3)
    }

    /// Run the study: for every genome run EM and EML once and, per iteration budget,
    /// run SAM/SAML `repeats` times with independent seeds and keep the run with the
    /// median measured execution time.
    pub fn run_with_repeats(
        platform: &HeterogeneousPlatform,
        models: &TrainedModels,
        genomes: &[Genome],
        budgets: &[usize],
        seed: u64,
        repeats: usize,
    ) -> Self {
        let cases: Vec<(String, Option<Genome>, WorkloadProfile)> = genomes
            .iter()
            .map(|&genome| (genome.name().to_string(), Some(genome), genome.workload()))
            .collect();
        Self::run_cases_scaled(
            platform,
            models,
            &cases,
            budgets,
            seed,
            repeats,
            &ConfigurationSpace::enumeration_grid(),
            &ConfigurationSpace::paper(),
        )
    }

    /// Run the study over arbitrary workload profiles (ROADMAP "More workloads"): the
    /// compute-bound and streaming kinds go through exactly the same EM/EML/SAM/SAML
    /// pipeline as the paper's DNA scans.  Case labels are the workload names.
    pub fn run_workloads(
        platform: &HeterogeneousPlatform,
        models: &TrainedModels,
        workloads: &[WorkloadProfile],
        budgets: &[usize],
        seed: u64,
    ) -> Self {
        Self::run_workloads_scaled(
            platform,
            models,
            workloads,
            budgets,
            seed,
            3,
            &ConfigurationSpace::enumeration_grid(),
            &ConfigurationSpace::paper(),
        )
    }

    /// [`ConvergenceStudy::run_workloads`] with explicit repeats, enumeration grid and
    /// annealing space — the knob tests and benches use to shrink the study.
    #[allow(clippy::too_many_arguments)]
    pub fn run_workloads_scaled(
        platform: &HeterogeneousPlatform,
        models: &TrainedModels,
        workloads: &[WorkloadProfile],
        budgets: &[usize],
        seed: u64,
        repeats: usize,
        grid: &ConfigurationSpace,
        space: &ConfigurationSpace,
    ) -> Self {
        let cases: Vec<(String, Option<Genome>, WorkloadProfile)> = workloads
            .iter()
            .map(|workload| (workload.name.clone(), None, workload.clone()))
            .collect();
        Self::run_cases_scaled(
            platform, models, &cases, budgets, seed, repeats, grid, space,
        )
    }

    /// The study engine shared by the genome, workload and sharded drivers: EM/EML
    /// through the default [`MethodRunner`] enumeration path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_cases_scaled(
        platform: &HeterogeneousPlatform,
        models: &TrainedModels,
        cases: &[(String, Option<Genome>, WorkloadProfile)],
        budgets: &[usize],
        seed: u64,
        repeats: usize,
        grid: &ConfigurationSpace,
        space: &ConfigurationSpace,
    ) -> Self {
        let reference = |workload: &WorkloadProfile, case_seed: u64, method: MethodKind| {
            MethodRunner::new(platform, workload, Some(models), case_seed)
                .with_grid(grid.clone())
                .with_space(space.clone())
                .run(method, 0)
                .expect("enumeration methods cannot fail with models present")
        };
        Self::run_cases(
            platform, models, cases, budgets, seed, repeats, grid, space, &reference,
        )
    }

    /// The innermost engine: the caller supplies how the enumeration references (EM
    /// and EML) are produced — the sharded driver routes them through a
    /// `wd_dist::ShardedCampaign` — while the annealing methods always run locally.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_cases(
        platform: &HeterogeneousPlatform,
        models: &TrainedModels,
        cases: &[(String, Option<Genome>, WorkloadProfile)],
        budgets: &[usize],
        seed: u64,
        repeats: usize,
        grid: &ConfigurationSpace,
        space: &ConfigurationSpace,
        reference: &(dyn Fn(&WorkloadProfile, u64, MethodKind) -> MethodOutcome + Sync),
    ) -> Self {
        let repeats = repeats.max(1);

        // run one method at every budget, `repeats` times in parallel (each annealing
        // repeat has an independent seed, so repeats are order-independent), keeping
        // the run with the median measured execution time
        let run_annealer = |workload: &WorkloadProfile, method: MethodKind, case_seed: u64| {
            budgets
                .iter()
                .map(|&budget| {
                    let mut outcomes: Vec<MethodOutcome> = (0..repeats)
                        .collect::<Vec<_>>()
                        .into_par_iter()
                        .map(|repeat| {
                            let run_seed =
                                case_seed ^ (repeat as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                            MethodRunner::new(platform, workload, Some(models), run_seed)
                                .with_grid(grid.clone())
                                .with_space(space.clone())
                                .run(method, budget)
                                .expect("annealing methods cannot fail with models present")
                        })
                        .collect();
                    outcomes.sort_by(|a, b| a.measured_energy.total_cmp(&b.measured_energy));
                    (budget, outcomes.swap_remove(outcomes.len() / 2))
                })
                .collect::<Vec<_>>()
        };

        let cases = cases
            .iter()
            .map(|(label, genome, workload)| {
                let case_seed = seed ^ label_seed(label);
                let em = reference(workload, case_seed, MethodKind::Em);
                let eml = reference(workload, case_seed, MethodKind::Eml);
                let sam = run_annealer(workload, MethodKind::Sam, case_seed);
                let saml = run_annealer(workload, MethodKind::Saml, case_seed);
                let gaml = run_annealer(workload, MethodKind::Gaml, case_seed);
                let measurement = MeasurementEvaluator::new(platform.clone(), workload.clone());
                use wd_opt::Objective as _;
                let accelerators = platform.accelerator_count();
                let baselines = measurement.evaluate_batch(&[
                    SystemConfiguration::host_only_baseline_for(accelerators),
                    SystemConfiguration::device_only_baseline_for(accelerators),
                ]);
                CaseConvergence {
                    label: label.clone(),
                    genome: *genome,
                    workload: workload.clone(),
                    em,
                    eml,
                    sam,
                    saml,
                    gaml,
                    host_only_seconds: baselines[0],
                    device_only_seconds: baselines[1],
                }
            })
            .collect();
        ConvergenceStudy {
            budgets: budgets.to_vec(),
            cases,
        }
    }

    /// Table VI: percent difference between the SAML configuration at each budget and
    /// the EM optimum, per genome, plus the average row.  Rows are
    /// `(label, one value per budget)`.
    pub fn percent_difference_rows(&self) -> Vec<(String, Vec<f64>)> {
        self.difference_rows(|saml, em| 100.0 * (saml - em).abs() / em)
    }

    /// Table VII: absolute difference [s] between SAML and EM.
    pub fn absolute_difference_rows(&self) -> Vec<(String, Vec<f64>)> {
        self.difference_rows(|saml, em| (saml - em).abs())
    }

    fn difference_rows(&self, difference: impl Fn(f64, f64) -> f64) -> Vec<(String, Vec<f64>)> {
        let mut rows: Vec<(String, Vec<f64>)> = self
            .cases
            .iter()
            .map(|case| {
                let values = case
                    .saml
                    .iter()
                    .map(|(_, outcome)| {
                        difference(outcome.measured_energy, case.em.measured_energy)
                    })
                    .collect();
                (case.label.clone(), values)
            })
            .collect();
        if !rows.is_empty() {
            let columns = self.budgets.len();
            let average: Vec<f64> = (0..columns)
                .map(|c| rows.iter().map(|(_, v)| v[c]).sum::<f64>() / rows.len() as f64)
                .collect();
            rows.push(("average".to_string(), average));
        }
        rows
    }

    /// Tables VIII and IX: speedup of the SAML configuration at each budget (and of the
    /// EM optimum, as the final column) over the selected baseline.  Rows are
    /// `(label, one value per budget, EM value)`.
    pub fn speedup_rows(&self, baseline: SpeedupBaseline) -> Vec<(String, Vec<f64>, f64)> {
        self.cases
            .iter()
            .map(|case| {
                let reference = match baseline {
                    SpeedupBaseline::HostOnly => case.host_only_seconds,
                    SpeedupBaseline::DeviceOnly => case.device_only_seconds,
                };
                let budget_speedups = case
                    .saml
                    .iter()
                    .map(|(_, outcome)| reference / outcome.measured_energy)
                    .collect();
                let em_speedup = reference / case.em.measured_energy;
                (case.label.clone(), budget_speedups, em_speedup)
            })
            .collect()
    }

    /// Fig. 9 data for one genome: `(budget, SAML, SAM)` measured execution times plus
    /// the EM and EML reference lines.
    pub fn figure9_series(&self, genome: Genome) -> Option<Figure9Series> {
        let case = self.cases.iter().find(|c| c.genome == Some(genome))?;
        self.case_series(&case.label)
    }

    /// Fig.-9-shaped data for one case, by label (works for the workload studies too).
    pub fn case_series(&self, label: &str) -> Option<Figure9Series> {
        self.cases
            .iter()
            .find(|case| case.label == label)
            .map(|case| Figure9Series {
                label: case.label.clone(),
                budgets: self.budgets.clone(),
                saml: case.saml.iter().map(|(_, o)| o.measured_energy).collect(),
                sam: case.sam.iter().map(|(_, o)| o.measured_energy).collect(),
                gaml: case.gaml.iter().map(|(_, o)| o.measured_energy).collect(),
                em: case.em.measured_energy,
                eml: case.eml.measured_energy,
            })
    }
}

/// The data behind one sub-plot of the paper's Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure9Series {
    /// Case label of this sub-plot (genome or workload name).
    pub label: String,
    /// Iteration budgets (x-axis).
    pub budgets: Vec<usize>,
    /// Measured execution time of the SAML-suggested configuration per budget.
    pub saml: Vec<f64>,
    /// Measured execution time of the SAM-suggested configuration per budget.
    pub sam: Vec<f64>,
    /// Measured execution time of the GAML-suggested configuration per budget (this
    /// crate's extension; not part of the paper's Fig. 9).
    pub gaml: Vec<f64>,
    /// The EM optimum (solid horizontal line).
    pub em: f64,
    /// The EML optimum re-measured (dashed horizontal line).
    pub eml: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigurationSpace;

    fn platform() -> HeterogeneousPlatform {
        HeterogeneousPlatform::emil()
    }

    #[test]
    fn motivation_experiment_has_eleven_normalized_points() {
        let points = motivation_experiment(&platform(), 3250, 48);
        assert_eq!(points.len(), 11);
        assert_eq!(points.first().unwrap().label, "CPU only");
        assert_eq!(points.last().unwrap().label, "Phi only");
        for point in &points {
            assert!(point.normalized >= 1.0 - 1e-9 && point.normalized <= 10.0 + 1e-9);
            assert!(point.seconds > 0.0);
        }
        // at least one point touches each end of the normalised range
        assert!(points.iter().any(|p| (p.normalized - 1.0).abs() < 1e-9));
        assert!(points.iter().any(|p| (p.normalized - 10.0).abs() < 1e-9));
    }

    #[test]
    fn motivation_small_input_prefers_cpu_only() {
        // Fig. 2a: for a 190 MB input with 48 threads the CPU-only point is the fastest.
        let points = motivation_experiment(&platform(), 190, 48);
        let cpu_only = points.iter().find(|p| p.host_percent == 100).unwrap();
        let best = points
            .iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .unwrap();
        assert_eq!(best.host_percent, cpu_only.host_percent);
    }

    #[test]
    fn motivation_large_input_prefers_a_mixed_split() {
        // Fig. 2b: for a 3250 MB input with 48 threads a 60/40-ish split wins.
        let points = motivation_experiment(&platform(), 3250, 48);
        let best = points
            .iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .unwrap();
        assert!(best.host_percent > 0 && best.host_percent < 100);
    }

    #[test]
    fn motivation_few_host_threads_prefers_the_device() {
        // Fig. 2c: with only 4 host threads most of the work should go to the device.
        let points = motivation_experiment(&platform(), 3250, 4);
        let best = points
            .iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .unwrap();
        assert!(
            best.host_percent <= 40,
            "best host share {}",
            best.host_percent
        );
    }

    #[test]
    fn convergence_study_on_a_tiny_space_is_consistent() {
        let platform = platform();
        let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
        // shrink the study so the test stays fast: tiny grid, two budgets, one genome
        let workload = Genome::Cat.workload();
        let runner = MethodRunner::new(&platform, &workload, Some(&models), 3)
            .with_grid(ConfigurationSpace::tiny())
            .with_space(ConfigurationSpace::tiny());
        let em = runner.run(MethodKind::Em, 0).unwrap();
        let saml = runner.run(MethodKind::Saml, 200).unwrap();
        assert!(em.measured_energy > 0.0);
        // EM is optimal on the grid, so SAML (restricted to the same space) cannot beat
        // it by more than the measurement noise
        assert!(saml.measured_energy >= em.measured_energy * 0.9);
    }

    #[test]
    fn workload_mix_covers_all_three_profile_kinds() {
        let mix = workload_mix(1_000_000_000);
        assert_eq!(mix.len(), 3);
        let names: Vec<&str> = mix.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, vec!["dna-scan", "compute-bound", "streaming"]);
        for workload in &mix {
            workload.validate().unwrap();
            assert_eq!(workload.bytes, 1_000_000_000);
        }
        // the kinds are genuinely different regimes
        assert!(mix[1].cost_factor > mix[0].cost_factor);
        assert!(mix[2].cost_factor < mix[0].cost_factor);
    }

    #[test]
    fn convergence_study_runs_compute_bound_and_streaming_workloads() {
        let platform = platform();
        let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
        let study = ConvergenceStudy::run_workloads_scaled(
            &platform,
            &models,
            &workload_mix(800_000_000),
            &[100],
            7,
            1,
            &ConfigurationSpace::tiny(),
            &ConfigurationSpace::tiny(),
        );
        assert_eq!(study.cases.len(), 3);
        for case in &study.cases {
            assert!(case.genome.is_none());
            assert!(case.em.measured_energy > 0.0, "{}", case.label);
            assert!(case.host_only_seconds > 0.0 && case.device_only_seconds > 0.0);
            assert_eq!(case.saml.len(), 1);
            // EM is optimal on the shared grid, so SAML cannot beat it by more than
            // the measurement noise
            assert!(
                case.saml[0].1.measured_energy >= case.em.measured_energy * 0.9,
                "{}",
                case.label
            );
        }
        // rows carry the workload names plus the average row
        let rows = study.percent_difference_rows();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|(label, _)| label == "streaming"));
        assert!(study.case_series("compute-bound").is_some());
        assert!(study.case_series("no-such-case").is_none());
        // streaming workloads are transfer-bound: offloading rarely pays off, so the
        // optimum keeps a clear majority of the work on the host
        let streaming = &study.cases[2];
        assert!(
            streaming.em.best_config.host_permille() >= 500,
            "streaming optimum sent {} permille to the host",
            streaming.em.best_config.host_permille()
        );
    }

    #[test]
    fn convergence_study_gaml_row_matches_a_direct_gaml_run_bit_for_bit() {
        let platform = platform();
        let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
        let tiny = ConfigurationSpace::tiny();
        let (seed, budget) = (11u64, 120usize);
        let study = ConvergenceStudy::run_cases_scaled(
            &platform,
            &models,
            &[("cat".to_string(), Some(Genome::Cat), Genome::Cat.workload())],
            &[budget],
            seed,
            1,
            &tiny,
            &tiny,
        );
        let case = &study.cases[0];
        assert_eq!(case.gaml.len(), 1);
        let (row_budget, gaml) = &case.gaml[0];
        assert_eq!(*row_budget, budget);
        assert_eq!(gaml.method, MethodKind::Gaml);

        // with repeats = 1 the study's run seed is exactly the case seed, so the row
        // must reproduce a direct MethodRunner GAML run bit for bit
        let workload = Genome::Cat.workload();
        let case_seed = seed ^ label_seed("cat");
        let direct = MethodRunner::new(&platform, &workload, Some(&models), case_seed)
            .with_grid(tiny.clone())
            .with_space(tiny.clone())
            .run(MethodKind::Gaml, budget)
            .unwrap();
        assert_eq!(gaml.best_config, direct.best_config);
        assert_eq!(gaml.search_energy.to_bits(), direct.search_energy.to_bits());
        assert_eq!(
            gaml.measured_energy.to_bits(),
            direct.measured_energy.to_bits()
        );
        assert_eq!(gaml.evaluations, direct.evaluations);
        assert_eq!(gaml.trace.records(), direct.trace.records());
        assert_eq!(gaml.stats, direct.stats);

        // the Fig.-9-shaped series surfaces the row next to SAM/SAML
        let series = study.case_series("cat").unwrap();
        assert_eq!(series.gaml, vec![gaml.measured_energy]);
        assert_eq!(series.saml.len(), series.gaml.len());
    }

    #[test]
    fn paper_iteration_budgets_match_the_tables() {
        assert_eq!(
            paper_iteration_budgets(),
            vec![250, 500, 750, 1000, 1250, 1500, 1750, 2000]
        );
    }
}
