//! Adaptive workload-aware refinement of the host/device split.
//!
//! The paper closes with "Future work will study adaptive workload-aware approaches."
//! This module provides such an approach as an extension: starting from any system
//! configuration (for example the one SAML suggests), it repeatedly *runs* the
//! configuration, observes the imbalance between `T_host` and `T_device`, and shifts
//! the workload fraction towards the side that finished early — a proportional
//! controller on the split ratio.  Because every step is an actual (simulated)
//! execution, the refinement also corrects residual errors of the prediction model.

use crate::config::SystemConfiguration;
use crate::evaluator::{LazyTabulatedPredictionEvaluator, MeasurementEvaluator};

/// One refinement step.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementStep {
    /// The configuration that was executed.
    pub config: SystemConfiguration,
    /// Host time observed for this configuration.
    pub t_host: f64,
    /// Device time observed for this configuration.
    pub t_device: f64,
    /// Total (max) time observed.
    pub t_total: f64,
}

/// Result of an adaptive refinement run.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementOutcome {
    /// The best configuration observed during refinement.
    pub best_config: SystemConfiguration,
    /// Its total execution time.
    pub best_time: f64,
    /// Every step taken, in order.
    pub steps: Vec<RefinementStep>,
}

impl RefinementOutcome {
    /// Number of executions performed.
    pub fn executions(&self) -> usize {
        self.steps.len()
    }

    /// Relative imbalance `|T_host − T_device| / T_total` of the final step
    /// (0 when either side is idle).
    pub fn final_imbalance(&self) -> f64 {
        match self.steps.last() {
            Some(step) if step.t_total > 0.0 && step.t_host > 0.0 && step.t_device > 0.0 => {
                (step.t_host - step.t_device).abs() / step.t_total
            }
            _ => 0.0,
        }
    }
}

/// Proportional controller that refines the workload fraction of a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveRefinement {
    /// Maximum number of refinement executions.
    pub max_steps: usize,
    /// Stop once the relative imbalance between host and device drops below this value.
    pub imbalance_tolerance: f64,
    /// Gain of the proportional controller (fraction of the observed imbalance that is
    /// shifted per step); values in (0, 1].
    pub gain: f64,
}

impl Default for AdaptiveRefinement {
    fn default() -> Self {
        AdaptiveRefinement {
            max_steps: 12,
            imbalance_tolerance: 0.02,
            gain: 0.85,
        }
    }
}

impl AdaptiveRefinement {
    /// Refine `start` by executing on the (simulated) platform via `evaluator`.
    pub fn refine(
        &self,
        evaluator: &MeasurementEvaluator,
        start: SystemConfiguration,
    ) -> RefinementOutcome {
        self.refine_with(|config| evaluator.evaluate_times(config), start)
    }

    /// Refine `start` against the prediction models through the lazy factorized
    /// tables: every step's `(T_host, T_device)` comes from memoized per-device
    /// entries, so repeated refinements (e.g. one per SAML suggestion, or a sweep of
    /// starting points) share the walk's table fills instead of re-walking the
    /// boosted trees — bit-identical to refining over
    /// [`crate::PredictionEvaluator::evaluate_times`] directly.
    pub fn refine_predicted(
        &self,
        evaluator: &LazyTabulatedPredictionEvaluator<'_>,
        start: SystemConfiguration,
    ) -> RefinementOutcome {
        self.refine_with(|config| evaluator.evaluate_times(config), start)
    }

    /// Refine `start` with an arbitrary `(T_host, T_device)` oracle.  This is the
    /// generic entry point: pass a closure over any evaluator (for example a
    /// [`crate::PredictionEvaluator`], or a cached/instrumented one).
    pub fn refine_with(
        &self,
        times: impl Fn(&SystemConfiguration) -> (f64, f64),
        start: SystemConfiguration,
    ) -> RefinementOutcome {
        let mut config = start.clone();
        let mut steps = Vec::with_capacity(self.max_steps);
        let mut best_config = start;
        let mut best_time = f64::INFINITY;

        for _ in 0..self.max_steps.max(1) {
            let (t_host, t_device) = times(&config);
            let t_total = t_host.max(t_device);
            steps.push(RefinementStep {
                config: config.clone(),
                t_host,
                t_device,
                t_total,
            });
            if t_total < best_time {
                best_time = t_total;
                best_config = config.clone();
            }

            // One-sided configurations cannot be rebalanced by moving the fraction;
            // stop immediately (the caller picked a host-only or device-only start).
            if t_host == 0.0 || t_device == 0.0 {
                break;
            }
            let imbalance = (t_host - t_device).abs() / t_total;
            if imbalance <= self.imbalance_tolerance {
                break;
            }

            // Shift work away from the slower side proportionally to the imbalance.
            // If the host is slower, its share shrinks by `gain * imbalance` of itself.
            let host_fraction = config.host_fraction();
            let adjustment = self.gain.clamp(0.0, 1.0) * imbalance;
            let new_fraction = if t_host > t_device {
                host_fraction * (1.0 - adjustment)
            } else {
                host_fraction + (1.0 - host_fraction) * adjustment
            };
            let new_permille = (new_fraction * 1000.0).round().clamp(0.0, 1000.0) as u32;
            if new_permille == config.host_permille() {
                break; // converged to the granularity of the fraction parameter
            }
            // rebalances the accelerator shares proportionally, so the controller
            // works unchanged on multi-accelerator configurations
            config = config.with_host_permille(new_permille);
        }

        RefinementOutcome {
            best_config,
            best_time,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_analysis::Genome;
    use hetero_platform::{Affinity, HeterogeneousPlatform};

    fn evaluator(genome: Genome) -> MeasurementEvaluator {
        MeasurementEvaluator::new(
            HeterogeneousPlatform::emil().without_noise(),
            genome.workload(),
        )
    }

    fn start_config(host_percent: u32) -> SystemConfiguration {
        SystemConfiguration::with_host_percent(
            48,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            host_percent,
        )
    }

    #[test]
    fn refinement_balances_a_skewed_split() {
        let evaluator = evaluator(Genome::Human);
        let refinement = AdaptiveRefinement::default();
        let outcome = refinement.refine(&evaluator, start_config(95));

        // the refined configuration is clearly better than the skewed start
        let start_time = outcome.steps.first().unwrap().t_total;
        assert!(
            outcome.best_time < start_time * 0.8,
            "refinement should improve a 95/5 split: {} -> {}",
            start_time,
            outcome.best_time
        );
        // and the final step is nearly balanced
        assert!(
            outcome.final_imbalance() < 0.1,
            "imbalance {}",
            outcome.final_imbalance()
        );
        // the refined split lands in the regime the paper's enumeration finds optimal
        let percent = outcome.best_config.host_percent();
        assert!(
            (50.0..=80.0).contains(&percent),
            "refined host share {percent}%"
        );
    }

    #[test]
    fn refinement_approaches_the_enumerated_optimum() {
        let evaluator = evaluator(Genome::Cat);
        // brute-force the best fraction for this thread/affinity choice, through the
        // unified layer's batched path
        use wd_opt::Objective as _;
        let candidates: Vec<SystemConfiguration> = (0..=100u32).map(start_config).collect();
        let best_enumerated = evaluator
            .evaluate_batch(&candidates)
            .into_iter()
            .fold(f64::INFINITY, f64::min);

        let outcome = AdaptiveRefinement::default().refine(&evaluator, start_config(20));
        assert!(
            outcome.best_time <= best_enumerated * 1.05,
            "adaptive refinement ({}) should come within 5% of the best fraction ({})",
            outcome.best_time,
            best_enumerated
        );
        // and it needs only a handful of executions, not 101
        assert!(outcome.executions() <= AdaptiveRefinement::default().max_steps);
    }

    #[test]
    fn one_sided_configurations_terminate_immediately() {
        let evaluator = evaluator(Genome::Dog);
        let outcome = AdaptiveRefinement::default().refine(&evaluator, start_config(100));
        assert_eq!(outcome.executions(), 1);
        assert_eq!(outcome.best_config.host_permille(), 1000);
        assert_eq!(outcome.final_imbalance(), 0.0);
    }

    #[test]
    fn step_budget_is_respected() {
        let evaluator = evaluator(Genome::Mouse);
        let refinement = AdaptiveRefinement {
            max_steps: 3,
            imbalance_tolerance: 0.0,
            gain: 0.3,
        };
        let outcome = refinement.refine(&evaluator, start_config(90));
        assert!(outcome.executions() <= 3);
    }

    #[test]
    fn refine_predicted_matches_the_direct_models_and_shares_tables() {
        use crate::training::TrainingCampaign;
        use wd_ml::BoostingParams;

        let platform = HeterogeneousPlatform::emil();
        let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
        let prediction = models.prediction_evaluator(Genome::Human.workload());
        let lazy = prediction.lazy_tabulated();
        let refinement = AdaptiveRefinement::default();

        let fast = refinement.refine_predicted(&lazy, start_config(95));
        let direct =
            refinement.refine_with(|config| prediction.evaluate_times(config), start_config(95));
        assert_eq!(fast.best_config, direct.best_config);
        assert_eq!(fast.best_time.to_bits(), direct.best_time.to_bits());
        assert_eq!(fast.steps, direct.steps);

        // a second refinement re-walks mostly warm table entries
        let warm_queries = lazy.model_queries();
        let again = refinement.refine_predicted(&lazy, start_config(95));
        assert_eq!(again.steps, fast.steps);
        assert_eq!(
            lazy.model_queries(),
            warm_queries,
            "an identical refinement must be answered from the tables"
        );

        // refinements only move the split, so other starts reuse the same
        // thread/affinity axis and still fill few fresh entries
        let other = refinement.refine_predicted(&lazy, start_config(20));
        assert!(other.executions() >= 1);
    }

    #[test]
    fn refine_with_accepts_any_times_oracle() {
        // a synthetic oracle: host time proportional to its share, device to the rest
        let outcome = AdaptiveRefinement::default().refine_with(
            |config| (2.0 * config.host_fraction(), 1.0 * config.device_fraction()),
            start_config(90),
        );
        // the balance point of 2h = (1-h) is h = 1/3
        let percent = outcome.best_config.host_percent();
        assert!(
            (28.0..=38.0).contains(&percent),
            "refined host share {percent}%"
        );
    }
}
