//! # hetero-autotune
//!
//! The primary contribution of *Memeti & Pllana, Combinatorial Optimization of Work
//! Distribution on Heterogeneous Systems, ICPP Workshops 2016*, reproduced as a Rust
//! library: an autotuner that determines a near-optimal *system configuration* — number
//! of threads, thread affinity and workload fraction for the host CPUs and the
//! accelerator — such that the overall execution time of a data-parallel application is
//! minimised.
//!
//! The library combines:
//!
//! * a discrete [`ConfigurationSpace`] (the paper's Table I),
//! * performance evaluation by **measurement** (the [`hetero_platform`] simulator
//!   standing in for the paper's Xeon E5 + Xeon Phi machine) or by **machine-learning
//!   prediction** (boosted decision-tree regression from [`wd_ml`] trained on a
//!   7 200-experiment campaign),
//! * space exploration by **enumeration** or **simulated annealing** from [`wd_opt`],
//!
//! yielding the paper's four methods (Table II): EM, EML, SAM and SAML.
//!
//! ## The unified evaluation layer
//!
//! Both evaluators ([`MeasurementEvaluator`], [`PredictionEvaluator`]) implement the
//! single [`wd_opt::Objective`] trait — there is no separate evaluator hierarchy.  All
//! four methods run behind a [`wd_opt::CachedObjective`] (hit/miss counters surfaced
//! on [`methods::MethodOutcome::cache`]); the enumeration-based methods score the grid
//! through the batched [`wd_opt::ParallelEnumeration`] path, which reaches the
//! simulator's rayon-parallel `execute_many`.  The training campaign likewise runs as
//! parallel batches.  All parallel paths are bit-identical to their sequential
//! counterparts.
//!
//! ## Quick start
//!
//! ```
//! use hetero_autotune::{Autotuner, MethodKind};
//!
//! // Simulated "Emil" platform + human-genome DNA workload, reduced training campaign.
//! let mut tuner = Autotuner::quick_setup(42);
//! let outcome = tuner.run(MethodKind::Saml, 200).unwrap();
//! assert!(outcome.measured_energy.is_finite());
//! // the suggested configuration splits work between host and device
//! println!("best configuration: {}", outcome.best_config);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod autotuner;
pub mod config;
pub mod dist;
pub mod evaluator;
pub mod experiments;
pub mod features;
pub mod methods;
pub mod model_selection;
pub mod report;
pub mod speedup;
pub mod training;

pub use adaptive::{AdaptiveRefinement, RefinementOutcome};
pub use autotuner::Autotuner;
pub use config::{ConfigurationSpace, DeviceAxis, DeviceSetting, SystemConfiguration};
pub use dist::{campaign_context, run_enumeration_sharded};
pub use evaluator::{
    LazyTabulatedPredictionEvaluator, MeasurementEvaluator, PredictedTimes, PredictionEvaluator,
    TabulatedPredictionEvaluator,
};
pub use experiments::{workload_mix, CaseConvergence, ConvergenceStudy};
pub use methods::{MethodKind, MethodOutcome, MethodProperties, MethodRunner};
pub use model_selection::{ModelComparison, ModelFamily};
pub use speedup::SpeedupReport;
pub use training::{AccuracyReport, PredictionRow, TrainedModels, TrainingCampaign};

// Re-export the companion crates so downstream users need only one dependency.
pub use dna_analysis;
pub use hetero_platform;
pub use wd_dist;
pub use wd_ml;
pub use wd_opt;
