//! The four optimization methods of the paper (Table II): EM, EML, SAM and SAML.

use std::fmt;
use std::time::Instant;

use hetero_platform::{ExecutionStats, HeterogeneousPlatform, WorkloadProfile};
use wd_obs::{FieldValue, NoopRecorder, Recorder};
use wd_opt::{
    CacheStats, CachedObjective, GeneticAlgorithm, Objective, Outcome, ParallelEnumeration,
    SimulatedAnnealing,
};

use crate::config::{ConfigurationSpace, SystemConfiguration};
use crate::evaluator::MeasurementEvaluator;
use crate::training::TrainedModels;

/// One of the paper's optimization methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Enumeration + Measurements: exhaustive, optimal, very expensive.
    Em,
    /// Enumeration + Machine Learning: exhaustive over predicted times.
    Eml,
    /// Simulated Annealing + Measurements.
    Sam,
    /// Simulated Annealing + Machine Learning: the paper's proposal.
    Saml,
    /// Genetic Algorithm + Machine Learning: an extension beyond the paper's Table II,
    /// running the GA's incremental (delta) recombination path over the same lazy
    /// per-device prediction tables as SAML.
    Gaml,
}

impl MethodKind {
    /// All four methods in the paper's order.  [`MethodKind::Gaml`] is deliberately
    /// not listed: it is this crate's extension, not part of Table II.
    pub const ALL: [MethodKind; 4] = [
        MethodKind::Em,
        MethodKind::Eml,
        MethodKind::Sam,
        MethodKind::Saml,
    ];

    /// Short name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::Em => "EM",
            MethodKind::Eml => "EML",
            MethodKind::Sam => "SAM",
            MethodKind::Saml => "SAML",
            MethodKind::Gaml => "GAML",
        }
    }

    /// Does this method explore the space exhaustively?
    pub fn uses_enumeration(&self) -> bool {
        matches!(self, MethodKind::Em | MethodKind::Eml)
    }

    /// Does this method evaluate configurations with the ML models?
    pub fn uses_prediction(&self) -> bool {
        matches!(self, MethodKind::Eml | MethodKind::Saml | MethodKind::Gaml)
    }

    /// The qualitative properties listed in the paper's Table II.
    pub fn properties(&self) -> MethodProperties {
        match self {
            MethodKind::Em => MethodProperties {
                space_exploration: "Enumeration",
                evaluation: "Measurements",
                effort: "high",
                accuracy: "optimal",
                prediction: false,
            },
            MethodKind::Eml => MethodProperties {
                space_exploration: "Enumeration",
                evaluation: "Machine Learning",
                effort: "high",
                accuracy: "near-optimal",
                prediction: true,
            },
            MethodKind::Sam => MethodProperties {
                space_exploration: "Simulated Annealing",
                evaluation: "Measurements",
                effort: "medium",
                accuracy: "near-optimal",
                prediction: false,
            },
            MethodKind::Saml => MethodProperties {
                space_exploration: "Simulated Annealing",
                evaluation: "Machine Learning",
                effort: "medium",
                accuracy: "near-optimal",
                prediction: true,
            },
            MethodKind::Gaml => MethodProperties {
                space_exploration: "Genetic Algorithm",
                evaluation: "Machine Learning",
                effort: "medium",
                accuracy: "near-optimal",
                prediction: true,
            },
        }
    }
}

impl fmt::Display for MethodKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Qualitative properties of a method (the paper's Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodProperties {
    /// How the configuration space is explored.
    pub space_exploration: &'static str,
    /// How proposed configurations are evaluated.
    pub evaluation: &'static str,
    /// Qualitative optimization effort.
    pub effort: &'static str,
    /// Qualitative solution accuracy.
    pub accuracy: &'static str,
    /// Whether the method can predict the performance of unseen configurations.
    pub prediction: bool,
}

/// Result of running one method on one workload.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// The method that produced this outcome.
    pub method: MethodKind,
    /// The best configuration the method suggests.
    pub best_config: SystemConfiguration,
    /// Energy of the suggested configuration according to the evaluator used during the
    /// search (predicted times for EML/SAML, measured times for EM/SAM).
    pub search_energy: f64,
    /// Energy of the suggested configuration re-measured on the platform — the paper
    /// compares methods on measured values "for fair comparison".
    pub measured_energy: f64,
    /// Number of configuration evaluations *requested* during the search.
    pub evaluations: usize,
    /// Hit/miss counters of the evaluation cache the method ran behind.  `misses` is
    /// the real evaluation cost (not `evaluations`, the request count); the
    /// granularity depends on the method's fast path:
    ///
    /// * EM/EML/SAM memoize whole configurations ([`wd_opt::CachedObjective`]):
    ///   `misses` is the number of distinct configurations evaluated — the paper's
    ///   "number of experiments";
    /// * SAML memoizes per-device table entries
    ///   ([`crate::LazyTabulatedPredictionEvaluator::stats`]): `misses` is the number
    ///   of boosted-tree model walks, `hits` every per-device probe answered without
    ///   one.
    pub cache: CacheStats,
    /// Execution breakdown of the final re-measurement behind
    /// [`MethodOutcome::measured_energy`] — bytes, threads, rates and the
    /// transfer/launch/compute split of running the suggested configuration on the
    /// platform.
    pub stats: ExecutionStats,
    /// Per-iteration trace (empty for enumeration).
    pub trace: wd_opt::OptimizationTrace,
}

impl MethodOutcome {
    /// The method's real evaluation cost (cache misses): distinct configurations
    /// scored for EM/EML/SAM, boosted-tree model walks for SAML (see
    /// [`MethodOutcome::cache`]).
    pub fn experiments(&self) -> usize {
        self.cache.misses
    }
}

/// Runs the paper's methods on one workload.
pub struct MethodRunner<'a> {
    platform: &'a HeterogeneousPlatform,
    workload: &'a WorkloadProfile,
    space: ConfigurationSpace,
    grid: ConfigurationSpace,
    models: Option<&'a TrainedModels>,
    seed: u64,
}

impl<'a> MethodRunner<'a> {
    /// Create a runner with the paper's search space and enumeration grid.
    ///
    /// `models` may be `None` if only the measurement-based methods (EM, SAM) are used.
    pub fn new(
        platform: &'a HeterogeneousPlatform,
        workload: &'a WorkloadProfile,
        models: Option<&'a TrainedModels>,
        seed: u64,
    ) -> Self {
        MethodRunner {
            platform,
            workload,
            space: ConfigurationSpace::paper(),
            grid: ConfigurationSpace::enumeration_grid(),
            models,
            seed,
        }
    }

    /// Replace the simulated-annealing search space.
    pub fn with_space(mut self, space: ConfigurationSpace) -> Self {
        self.space = space;
        self
    }

    /// Replace the enumeration grid.
    pub fn with_grid(mut self, grid: ConfigurationSpace) -> Self {
        self.grid = grid;
        self
    }

    /// The enumeration grid used by EM/EML.
    pub fn grid(&self) -> &ConfigurationSpace {
        &self.grid
    }

    /// Run `method`.  `iterations` is the simulated-annealing budget and is ignored by
    /// the enumeration-based methods.
    ///
    /// Every method evaluates through the unified layer, each on its fast path:
    ///
    /// * EM/SAM (measurement) run behind a [`CachedObjective`]; enumeration goes
    ///   through the batched [`ParallelEnumeration`] path;
    /// * EML scores the grid from *eagerly* precomputed per-device time tables
    ///   ([`crate::TabulatedPredictionEvaluator`]), behind the same cache;
    /// * SAML runs the annealer's incremental path
    ///   ([`wd_opt::SimulatedAnnealing::run_delta`]) over *lazily* filled tables
    ///   ([`crate::LazyTabulatedPredictionEvaluator`]): each move re-scores only the
    ///   device it touched, and each distinct `(threads, affinity, share)` triple
    ///   queries the boosted-tree model exactly once — bit-identical to annealing over
    ///   the direct prediction evaluator.
    ///
    /// The resulting hit/miss counters are surfaced on the [`MethodOutcome`]; note
    /// their granularity differs per path (see [`MethodOutcome::cache`]).
    ///
    /// Returns an error message if a prediction-based method is requested without
    /// trained models.
    pub fn run(&self, method: MethodKind, iterations: usize) -> Result<MethodOutcome, String> {
        self.run_observed(method, iterations, &NoopRecorder)
    }

    /// [`MethodRunner::run`] with the run's telemetry published to `recorder`: per
    /// iteration events from the annealing/genetic walks (scoped by the lowercase
    /// method name), the cache/table counters of the evaluation fast path, the
    /// [`ExecutionStats`] of the final re-measurement, and one `{method}.run` span
    /// carrying wall-clock seconds, iterations, evaluations and energies.
    ///
    /// The recorder only observes: counters are read post-hoc from the same atomics
    /// the unobserved path maintains, and iteration events are emitted strictly after
    /// each trace record, so outcomes are bit-identical to [`MethodRunner::run`].
    pub fn run_observed(
        &self,
        method: MethodKind,
        iterations: usize,
        recorder: &dyn Recorder,
    ) -> Result<MethodOutcome, String> {
        let started = Instant::now();
        let scope = method.name().to_ascii_lowercase();
        let measurement = MeasurementEvaluator::new(self.platform.clone(), self.workload.clone());
        let (outcome, cache) = if method.uses_prediction() {
            let models = self.require_models(method)?;
            let prediction = models.prediction_evaluator(self.workload.clone());
            if method.uses_enumeration() {
                // EML fast path: the energy is separable per device, so the whole
                // grid is scored from precomputed per-device time tables
                // (Σ axis sizes model queries instead of |grid| × (N + 1)) —
                // bit-identical to enumerating through `prediction` directly.
                self.search(
                    method,
                    iterations,
                    &prediction.tabulated(&self.grid),
                    recorder,
                    &scope,
                )
            } else {
                // SAML/GAML fast path: lazy per-device tables + incremental (delta)
                // re-scoring of each neighbour move (SAML) or each recombination's
                // two-parent merge footprint (GAML).  Bit-identical to the classic
                // direct walk: same RNG stream, same accepted moves, same energies —
                // only the model cost drops.
                let lazy = prediction.lazy_tabulated();
                let outcome = if method == MethodKind::Gaml {
                    self.genetic(iterations).run_delta_observed(
                        &self.space,
                        &lazy,
                        recorder,
                        &scope,
                    )
                } else {
                    self.annealer(iterations).run_delta_observed(
                        &self.space,
                        &lazy,
                        recorder,
                        &scope,
                    )
                };
                lazy.publish_stats(recorder, &scope);
                (outcome, lazy.stats())
            }
        } else {
            self.search(method, iterations, &measurement, recorder, &scope)
        };
        Ok(self.finish(
            method,
            outcome,
            cache,
            &measurement,
            recorder,
            &scope,
            started,
        ))
    }

    /// Drive one space-exploration strategy over `objective` through the cached layer.
    fn search<O>(
        &self,
        method: MethodKind,
        iterations: usize,
        objective: &O,
        recorder: &dyn Recorder,
        scope: &str,
    ) -> (Outcome<SystemConfiguration>, CacheStats)
    where
        O: Objective<SystemConfiguration> + Sync,
    {
        let cached = CachedObjective::new(objective);
        let outcome = if method.uses_enumeration() {
            ParallelEnumeration::new().run(&self.grid, &cached)
        } else {
            self.annealer(iterations)
                .run_observed(&self.space, &cached, recorder, scope)
        };
        cached.publish_stats(recorder, scope);
        (outcome, cached.stats())
    }

    fn genetic(&self, iterations: usize) -> GeneticAlgorithm {
        // same per-budget seed mixing as `annealer`: each budget is an independent run
        let seed = self.seed ^ (iterations as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        GeneticAlgorithm::with_budget(iterations.max(8), seed)
    }

    fn annealer(&self, iterations: usize) -> SimulatedAnnealing {
        // Mixing the iteration budget into the seed mirrors the paper's procedure of
        // "adjusting the cooling function" per budget: each budget is an independent
        // annealing run, not a prefix of one long run.  The temperature range is scaled
        // to the energy differences of this domain (execution times in seconds differ by
        // hundredths of a second between neighbouring configurations).
        let seed = self.seed ^ (iterations as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SimulatedAnnealing::with_budget_and_range(iterations.max(8), 2.0, 0.02, seed)
    }

    fn require_models(&self, method: MethodKind) -> Result<&TrainedModels, String> {
        self.models.ok_or_else(|| {
            format!("{method} requires trained prediction models; run the training campaign first")
        })
    }

    #[allow(clippy::too_many_arguments)] // internal plumbing shared by run/run_observed
    fn finish(
        &self,
        method: MethodKind,
        outcome: Outcome<SystemConfiguration>,
        cache: CacheStats,
        measurement: &MeasurementEvaluator,
        recorder: &dyn Recorder,
        scope: &str,
        started: Instant,
    ) -> MethodOutcome {
        let measured = measurement.measure(&outcome.best_config);
        let measured_energy = measured.t_host.max(measured.t_device);
        if recorder.enabled() {
            measured.stats.publish(recorder, scope);
            recorder.span(
                &format!("{scope}.run"),
                started.elapsed().as_secs_f64(),
                &[
                    ("iterations", FieldValue::U64(outcome.trace.len() as u64)),
                    ("evaluations", FieldValue::U64(outcome.evaluations as u64)),
                    ("cache_hits", FieldValue::U64(cache.hits as u64)),
                    ("cache_misses", FieldValue::U64(cache.misses as u64)),
                    ("search_energy", FieldValue::F64(outcome.best_energy)),
                    ("measured_energy", FieldValue::F64(measured_energy)),
                ],
            );
        }
        MethodOutcome {
            method,
            best_config: outcome.best_config,
            search_energy: outcome.best_energy,
            measured_energy,
            evaluations: outcome.evaluations,
            cache,
            stats: measured.stats,
            trace: outcome.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_analysis::Genome;
    use wd_ml::BoostingParams;

    use crate::training::TrainingCampaign;

    fn platform() -> HeterogeneousPlatform {
        HeterogeneousPlatform::emil()
    }

    #[test]
    fn table_ii_properties() {
        assert_eq!(MethodKind::ALL.len(), 4);
        assert_eq!(MethodKind::Em.properties().accuracy, "optimal");
        assert!(!MethodKind::Em.properties().prediction);
        assert!(MethodKind::Eml.properties().prediction);
        assert_eq!(MethodKind::Sam.properties().effort, "medium");
        assert_eq!(
            MethodKind::Saml.properties().space_exploration,
            "Simulated Annealing"
        );
        assert!(MethodKind::Saml.uses_prediction() && !MethodKind::Saml.uses_enumeration());
        assert!(MethodKind::Em.uses_enumeration() && !MethodKind::Em.uses_prediction());
        assert_eq!(MethodKind::Saml.to_string(), "SAML");
        // GAML is this crate's extension: prediction-backed, non-enumerating, and
        // deliberately absent from the paper's Table II listing
        assert!(!MethodKind::ALL.contains(&MethodKind::Gaml));
        assert!(MethodKind::Gaml.uses_prediction() && !MethodKind::Gaml.uses_enumeration());
        assert_eq!(
            MethodKind::Gaml.properties().space_exploration,
            "Genetic Algorithm"
        );
        assert_eq!(MethodKind::Gaml.to_string(), "GAML");
    }

    #[test]
    fn prediction_methods_require_models() {
        let platform = platform();
        let workload = Genome::Cat.workload();
        let runner = MethodRunner::new(&platform, &workload, None, 1);
        assert!(runner.run(MethodKind::Saml, 50).is_err());
        assert!(runner.run(MethodKind::Eml, 50).is_err());
        assert!(runner.run(MethodKind::Sam, 50).is_ok());
    }

    #[test]
    fn sam_with_a_small_grid_finds_a_good_configuration() {
        let platform = platform();
        let workload = Genome::Human.workload();
        let runner = MethodRunner::new(&platform, &workload, None, 7)
            .with_grid(ConfigurationSpace::tiny())
            .with_space(ConfigurationSpace::tiny());

        let em = runner.run(MethodKind::Em, 0).unwrap();
        let sam = runner.run(MethodKind::Sam, 300).unwrap();

        assert_eq!(
            em.evaluations as u128,
            ConfigurationSpace::tiny().total_configurations()
        );
        // enumeration never revisits a configuration, so the cache records pure misses
        assert_eq!(em.cache.hits, 0);
        assert_eq!(em.experiments(), em.evaluations);
        assert!(sam.evaluations < em.evaluations);
        // annealing on a tiny space revisits configurations; the cache absorbs those
        assert!(
            sam.cache.hits > 0,
            "SAM should hit the cache on a tiny space"
        );
        assert_eq!(sam.cache.requests(), sam.evaluations);
        assert!(sam.experiments() <= sam.evaluations);
        // SAM should land within 25 % of the optimum on this tiny space
        assert!(
            sam.measured_energy <= em.measured_energy * 1.25,
            "SAM {} vs EM {}",
            sam.measured_energy,
            em.measured_energy
        );
        // EM's search energy is also its measured energy (same evaluator)
        assert!((em.search_energy - em.measured_energy).abs() < 1e-9);
    }

    #[test]
    fn saml_fast_path_is_bit_identical_to_direct_annealing() {
        use wd_opt::SimulatedAnnealing;

        let platform = platform();
        let workload = Genome::Human.workload();
        let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
        let space = ConfigurationSpace::tiny();
        let runner = MethodRunner::new(&platform, &workload, Some(&models), 13)
            .with_grid(ConfigurationSpace::tiny())
            .with_space(space.clone());
        let iterations = 200;
        let saml = runner.run(MethodKind::Saml, iterations).unwrap();

        // hand-rolled classic walk: same annealer parameters, full re-evaluation of
        // the direct prediction evaluator on every proposal
        let seed = 13u64 ^ (iterations as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let sa = SimulatedAnnealing::with_budget_and_range(iterations, 2.0, 0.02, seed);
        let prediction = models.prediction_evaluator(workload.clone());
        let reference = sa.run(&space, &prediction);

        assert_eq!(saml.best_config, reference.best_config);
        assert_eq!(
            saml.search_energy.to_bits(),
            reference.best_energy.to_bits()
        );
        assert_eq!(saml.evaluations, reference.evaluations);
        assert_eq!(saml.trace.records(), reference.trace.records());
        // the lazy tables bound the model cost by the distinct axis triples visited
        // (≤ 66 host + 66 device on the tiny space), well below the 2 × evaluations
        // walks of the direct path
        assert!(
            saml.cache.misses < reference.evaluations,
            "lazy SAML walked the models {} times over {} evaluations",
            saml.cache.misses,
            reference.evaluations
        );
    }

    #[test]
    fn gaml_fast_path_is_bit_identical_to_direct_genetic_search() {
        use wd_opt::GeneticAlgorithm;

        let platform = platform();
        let workload = Genome::Human.workload();
        let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
        let space = ConfigurationSpace::tiny();
        let runner = MethodRunner::new(&platform, &workload, Some(&models), 13)
            .with_grid(ConfigurationSpace::tiny())
            .with_space(space.clone());
        let iterations = 200;
        let gaml = runner.run(MethodKind::Gaml, iterations).unwrap();

        // hand-rolled classic GA: same parameters, full re-evaluation of the direct
        // prediction evaluator on every child
        let seed = 13u64 ^ (iterations as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let ga = GeneticAlgorithm::with_budget(iterations, seed);
        let prediction = models.prediction_evaluator(workload.clone());
        let reference = ga.run(&space, &prediction);

        assert_eq!(gaml.best_config, reference.best_config);
        assert_eq!(
            gaml.search_energy.to_bits(),
            reference.best_energy.to_bits()
        );
        assert_eq!(gaml.evaluations, reference.evaluations);
        assert_eq!(gaml.trace.records(), reference.trace.records());
        // every child re-scored against its first parent's retained per-device times
        // plus lazy-table memoization keeps the model cost well below the
        // (N + 1) × evaluations walks of the direct path
        assert!(
            gaml.cache.misses < reference.evaluations,
            "lazy GAML walked the models {} times over {} evaluations",
            gaml.cache.misses,
            reference.evaluations
        );
    }

    #[test]
    fn saml_uses_far_fewer_evaluations_than_em() {
        let platform = platform();
        let workload = Genome::Human.workload();
        let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
        let runner = MethodRunner::new(&platform, &workload, Some(&models), 11)
            .with_grid(ConfigurationSpace::tiny());

        let em = runner.run(MethodKind::Em, 0).unwrap();
        let saml = runner.run(MethodKind::Saml, 150).unwrap();

        assert!(saml.evaluations <= 200);
        assert!(em.evaluations >= 100);
        assert!(saml.measured_energy.is_finite() && saml.measured_energy > 0.0);
        // the SAML search energy is a prediction, so it differs from the measured energy,
        // but it should be in the same ballpark (the models are trained on this platform)
        let ratio = saml.search_energy / saml.measured_energy;
        assert!(
            ratio > 0.4 && ratio < 2.5,
            "prediction/measurement ratio {ratio}"
        );
    }
}
