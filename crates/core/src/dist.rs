//! Sharded, store-backed drivers for the enumeration-based reference methods.
//!
//! This module bridges the autotuner to the [`wd_dist`] campaign coordinator:
//!
//! * [`SystemConfiguration`] gets a stable [`wd_dist::ConfigKey`] encoding, so
//!   campaigns over the paper's grids persist to a [`wd_dist::JsonlStore`] and resume
//!   across processes;
//! * [`run_enumeration_sharded`] runs EM or EML as a [`ShardedCampaign`] — one
//!   simulated node per shard — and returns the usual [`MethodOutcome`], bit-identical
//!   to the single-node [`MethodRunner`] result;
//! * [`ConvergenceStudy::run_sharded`] is the convergence study with its enumeration
//!   references driven through sharded campaigns.

use dna_analysis::Genome;
use hetero_platform::{Affinity, HeterogeneousPlatform, WorkloadProfile};
use wd_dist::{ConfigKey, MemoryStore, ResultStore, ShardedCampaign};
use wd_opt::OptimizationTrace;

use crate::config::{ConfigurationSpace, DeviceSetting, SystemConfiguration};
use crate::evaluator::MeasurementEvaluator;
use crate::experiments::ConvergenceStudy;
use crate::methods::{MethodKind, MethodOutcome};
use crate::training::TrainedModels;

/// Single-accelerator `SystemConfiguration`s encode as `ht|ha|dt|da|hp` (threads,
/// affinity name, threads, affinity name, host permille) — e.g.
/// `48|scatter|240|balanced|600` — exactly the schema earlier releases persisted, so
/// existing single-device stores stay warm.  N-accelerator configurations extend the
/// schema to `ht|ha|hp|dt1|da1|dp1|...|dtN|daN|dpN` (3 + 3N fields, one
/// threads/affinity/permille triple per device).  The two formats are distinguished
/// by field count (5 vs. ≥ 6); both are part of the on-disk store schema: changing
/// them would orphan persisted campaigns.
///
/// Decoding validates the share invariant: keys whose permilles exceed 1000 or do not
/// sum to 1000 (e.g. a hand-edited `...|1200`) return `None` instead of materialising
/// a configuration that evaluates like another one but occupies a distinct record.
impl ConfigKey for SystemConfiguration {
    fn encode_key(&self) -> String {
        if self.accelerator_count() == 1 {
            format!(
                "{}|{}|{}|{}|{}",
                self.host_threads,
                self.host_affinity.name(),
                self.device_threads(),
                self.device_affinity().name(),
                self.host_permille()
            )
        } else {
            use std::fmt::Write as _;
            let mut key = format!(
                "{}|{}|{}",
                self.host_threads,
                self.host_affinity.name(),
                self.host_permille()
            );
            for device in self.devices() {
                write!(
                    key,
                    "|{}|{}|{}",
                    device.threads,
                    device.affinity.name(),
                    device.permille
                )
                .expect("writing to a String cannot fail");
            }
            key
        }
    }

    fn decode_key(key: &str) -> Option<Self> {
        let parts: Vec<&str> = key.split('|').collect();
        if parts.len() == 5 {
            // legacy single-accelerator schema: the device share is implied
            let host_permille: u32 = parts[4].parse().ok()?;
            if host_permille > 1000 {
                return None;
            }
            return SystemConfiguration::new(
                parts[0].parse().ok()?,
                Affinity::parse(parts[1])?,
                host_permille,
                vec![DeviceSetting::new(
                    parts[2].parse().ok()?,
                    Affinity::parse(parts[3])?,
                    1000 - host_permille,
                )],
            )
            .ok();
        }
        if parts.len() < 6 || !(parts.len() - 3).is_multiple_of(3) {
            return None;
        }
        let devices = parts[3..]
            .chunks(3)
            .map(|chunk| {
                Some(DeviceSetting::new(
                    chunk[0].parse().ok()?,
                    Affinity::parse(chunk[1])?,
                    chunk[2].parse().ok()?,
                ))
            })
            .collect::<Option<Vec<DeviceSetting>>>()?;
        SystemConfiguration::new(
            parts[0].parse().ok()?,
            Affinity::parse(parts[1])?,
            parts[2].parse().ok()?,
            devices,
        )
        .ok()
    }
}

/// Run one of the exhaustive methods (EM or EML) as a sharded campaign over `grid`,
/// recording every evaluation into `store`.
///
/// The returned outcome is bit-identical to `MethodRunner::run` with the same grid:
/// the campaign merges per-shard bests with the same lowest-energy/earliest-index rule
/// the batched enumeration uses internally.  `cache` carries the campaign's store
/// hit/miss counters — against a warm store `cache.misses` is 0 and the method costs
/// nothing.
///
/// **The store must be dedicated to this `(method, workload, platform)` combination**:
/// records carry no energy provenance, so a store populated under a different
/// objective would be consumed as legitimate warm results.  For persistent stores,
/// open them with [`wd_dist::JsonlStore::open_with_context`] and
/// [`campaign_context`] so cross-objective reuse fails loudly instead.
///
/// Returns an error for the annealing methods (they are sequential walks; sharding
/// does not apply) and for EML without trained models.
pub fn run_enumeration_sharded<R>(
    platform: &HeterogeneousPlatform,
    workload: &WorkloadProfile,
    models: Option<&TrainedModels>,
    method: MethodKind,
    grid: &ConfigurationSpace,
    shard_count: usize,
    store: &R,
) -> Result<MethodOutcome, String>
where
    R: ResultStore<SystemConfiguration> + Sync,
{
    if !method.uses_enumeration() {
        return Err(format!(
            "{method} is an annealing method; sharded campaigns drive the exhaustive methods (EM, EML)"
        ));
    }
    let measurement = MeasurementEvaluator::new(platform.clone(), workload.clone());
    let campaign = ShardedCampaign::new(shard_count);
    let outcome = if method.uses_prediction() {
        let models = models.ok_or_else(|| {
            format!("{method} requires trained prediction models; run the training campaign first")
        })?;
        // EML campaigns score shards from the factorized per-device time tables
        // (bit-identical to the direct prediction path, a fraction of the model
        // queries); the grid itself streams lazily through the shard views.  A store
        // that already covers the whole grid answers everything itself — skip the
        // table construction so fully-warm resumes keep costing zero model queries
        // (stores are dedicated to one campaign, see above, so `len` is a faithful
        // coverage bound).
        use wd_opt::SearchSpace as _;
        let prediction = models.prediction_evaluator(workload.clone());
        let fully_warm = grid.space_len().is_some_and(|len| store.len() >= len);
        if fully_warm {
            campaign.run(grid, &prediction, store)
        } else {
            campaign.run(grid, &prediction.tabulated(grid), store)
        }
    } else {
        campaign.run(grid, &measurement, store)
    }
    .map_err(|error| format!("sharded campaign failed: {error}"))?;
    let measured = measurement.measure(&outcome.best_config);
    Ok(MethodOutcome {
        method,
        best_config: outcome.best_config,
        search_energy: outcome.best_energy,
        measured_energy: measured.t_host.max(measured.t_device),
        evaluations: outcome.evaluations,
        cache: outcome.stats,
        stats: measured.stats,
        trace: OptimizationTrace::new(),
    })
}

/// The store-context string of a sharded campaign: identifies what the recorded
/// energies depend on — the method's evaluation mode, the workload and the input size
/// — so a persistent store opened with
/// [`wd_dist::JsonlStore::open_with_context`] refuses to serve a different campaign.
/// (The platform is assumed fixed per deployment; include your own platform tag in
/// the context when that does not hold.)
pub fn campaign_context(method: MethodKind, workload: &WorkloadProfile) -> String {
    format!(
        "{}|{}|{}",
        method.name().to_ascii_lowercase(),
        workload.name,
        workload.bytes
    )
}

impl ConvergenceStudy {
    /// [`ConvergenceStudy::run_with_repeats`] with the EM/EML references computed by
    /// sharded campaigns (`shard_count` simulated nodes per reference, each method
    /// against its own in-memory store — measured and predicted energies must not
    /// share a store).  The annealing methods are sequential walks and run locally,
    /// unchanged.
    pub fn run_sharded(
        platform: &HeterogeneousPlatform,
        models: &TrainedModels,
        genomes: &[Genome],
        budgets: &[usize],
        seed: u64,
        repeats: usize,
        shard_count: usize,
    ) -> Self {
        Self::run_sharded_scaled(
            platform,
            models,
            genomes,
            budgets,
            seed,
            repeats,
            shard_count,
            &ConfigurationSpace::enumeration_grid(),
            &ConfigurationSpace::paper(),
        )
    }

    /// [`ConvergenceStudy::run_sharded`] with explicit enumeration grid and annealing
    /// space (the knob tests use to shrink the study).
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded_scaled(
        platform: &HeterogeneousPlatform,
        models: &TrainedModels,
        genomes: &[Genome],
        budgets: &[usize],
        seed: u64,
        repeats: usize,
        shard_count: usize,
        grid: &ConfigurationSpace,
        space: &ConfigurationSpace,
    ) -> Self {
        let cases: Vec<(String, Option<Genome>, WorkloadProfile)> = genomes
            .iter()
            .map(|&genome| (genome.name().to_string(), Some(genome), genome.workload()))
            .collect();
        let reference = |workload: &WorkloadProfile, _case_seed: u64, method: MethodKind| {
            let store = MemoryStore::new();
            run_enumeration_sharded(
                platform,
                workload,
                Some(models),
                method,
                grid,
                shard_count,
                &store,
            )
            .expect("enumeration methods cannot fail with models present")
        };
        Self::run_cases(
            platform, models, &cases, budgets, seed, repeats, grid, space, &reference,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodRunner;
    use crate::training::TrainingCampaign;
    use wd_dist::JsonlStore;
    use wd_ml::BoostingParams;
    use wd_opt::CacheStats;

    fn platform() -> HeterogeneousPlatform {
        HeterogeneousPlatform::emil()
    }

    #[test]
    fn system_configuration_keys_round_trip() {
        use wd_opt::SearchSpace as _;
        for space in [ConfigurationSpace::tiny(), ConfigurationSpace::tiny_multi()] {
            for config in space.enumerate().unwrap() {
                let key = config.encode_key();
                assert!(!key.contains(['"', '\\', '\n', '\r']));
                assert_eq!(SystemConfiguration::decode_key(&key), Some(config));
            }
        }
        // single-accelerator configurations keep the legacy 5-field schema, so stores
        // persisted before the N-way generalisation stay warm
        let legacy = SystemConfiguration::with_host_percent(
            48,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            60,
        );
        assert_eq!(legacy.encode_key(), "48|scatter|240|balanced|600");

        assert_eq!(SystemConfiguration::decode_key("48|scatter|240"), None);
        assert_eq!(
            SystemConfiguration::decode_key("48|sideways|240|balanced|600"),
            None
        );
        assert_eq!(
            SystemConfiguration::decode_key("48|scatter|240|balanced|600|extra"),
            None
        );
    }

    #[test]
    fn out_of_range_shares_decode_to_none() {
        // Regression: `host_permille` used to be an unvalidated public field, so the
        // key `...|1200` decoded into a configuration that evaluates identically to
        // `...|1000` yet occupies a distinct store record.  Decoding now enforces the
        // share invariant.
        assert_eq!(
            SystemConfiguration::decode_key("48|scatter|240|balanced|1200"),
            None
        );
        assert_eq!(
            // extended schema whose shares do not sum to 1000
            SystemConfiguration::decode_key("48|scatter|500|240|balanced|300|448|balanced|300"),
            None
        );
        assert_eq!(
            SystemConfiguration::decode_key("48|scatter|500|240|balanced|1200|448|balanced|0"),
            None
        );
    }

    #[test]
    fn multi_accelerator_keys_use_the_extended_schema() {
        let config = SystemConfiguration::new(
            48,
            Affinity::Scatter,
            500,
            vec![
                DeviceSetting::new(240, Affinity::Balanced, 300),
                DeviceSetting::new(448, Affinity::Balanced, 200),
            ],
        )
        .unwrap();
        let key = config.encode_key();
        assert_eq!(key, "48|scatter|500|240|balanced|300|448|balanced|200");
        assert_eq!(SystemConfiguration::decode_key(&key), Some(config));
    }

    #[test]
    fn sharded_em_matches_the_method_runner_bit_for_bit() {
        let platform = platform();
        let workload = Genome::Cat.workload();
        let grid = ConfigurationSpace::tiny();
        let single = MethodRunner::new(&platform, &workload, None, 3)
            .with_grid(grid.clone())
            .run(MethodKind::Em, 0)
            .unwrap();

        for shards in [1usize, 2, 4, 9] {
            let store = MemoryStore::new();
            let sharded = run_enumeration_sharded(
                &platform,
                &workload,
                None,
                MethodKind::Em,
                &grid,
                shards,
                &store,
            )
            .unwrap();
            assert_eq!(sharded.best_config, single.best_config, "{shards} shards");
            assert_eq!(
                sharded.search_energy.to_bits(),
                single.search_energy.to_bits()
            );
            assert_eq!(sharded.evaluations, single.evaluations);
            assert_eq!(sharded.cache.misses, single.evaluations);
        }
    }

    #[test]
    fn sharded_eml_requires_models_and_annealers_are_rejected() {
        let platform = platform();
        let workload = Genome::Dog.workload();
        let grid = ConfigurationSpace::tiny();
        let store = MemoryStore::new();
        assert!(run_enumeration_sharded(
            &platform,
            &workload,
            None,
            MethodKind::Eml,
            &grid,
            2,
            &store
        )
        .is_err());
        assert!(run_enumeration_sharded(
            &platform,
            &workload,
            None,
            MethodKind::Sam,
            &grid,
            2,
            &store
        )
        .is_err());
    }

    #[test]
    fn sharded_em_resumes_from_a_persistent_store_for_free() {
        let platform = platform();
        let workload = Genome::Mouse.workload();
        let grid = ConfigurationSpace::tiny();
        let path =
            std::env::temp_dir().join(format!("hetero_autotune-dist-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let context = campaign_context(MethodKind::Em, &workload);
        let cold = {
            let store: JsonlStore<SystemConfiguration> =
                JsonlStore::open_with_context(&path, &context).unwrap();
            run_enumeration_sharded(&platform, &workload, None, MethodKind::Em, &grid, 4, &store)
                .unwrap()
        };
        assert_eq!(cold.cache.hits, 0);
        assert_eq!(cold.cache.misses as u128, grid.total_configurations());

        // the context stamp refuses a different campaign against this store
        assert!(JsonlStore::<SystemConfiguration>::open_with_context(
            &path,
            &campaign_context(MethodKind::Eml, &workload)
        )
        .is_err());

        // a fresh store instance reloads the file: zero new evaluations
        let store: JsonlStore<SystemConfiguration> =
            JsonlStore::open_with_context(&path, &context).unwrap();
        assert_eq!(store.len() as u128, grid.total_configurations());
        let warm =
            run_enumeration_sharded(&platform, &workload, None, MethodKind::Em, &grid, 4, &store)
                .unwrap();
        assert_eq!(warm.cache.misses, 0);
        assert_eq!(warm.best_config, cold.best_config);
        assert_eq!(warm.search_energy.to_bits(), cold.search_energy.to_bits());
        assert_eq!(
            store.recorded_stats(),
            CacheStats {
                hits: grid.total_configurations() as usize,
                misses: grid.total_configurations() as usize,
            }
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sharded_convergence_study_matches_the_local_study() {
        let platform = platform();
        let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());
        let genomes = [Genome::Cat];
        let budgets = [100usize];
        let tiny = ConfigurationSpace::tiny();

        let local = ConvergenceStudy::run_cases_scaled(
            &platform,
            &models,
            &[("cat".to_string(), Some(Genome::Cat), Genome::Cat.workload())],
            &budgets,
            11,
            1,
            &tiny,
            &tiny,
        );
        let sharded = ConvergenceStudy::run_sharded_scaled(
            &platform, &models, &genomes, &budgets, 11, 1, 3, &tiny, &tiny,
        );
        assert_eq!(sharded.cases.len(), 1);
        let (a, b) = (&local.cases[0], &sharded.cases[0]);
        // the sharded enumeration references are bit-identical to the local ones
        assert_eq!(a.em.best_config, b.em.best_config);
        assert_eq!(a.em.search_energy.to_bits(), b.em.search_energy.to_bits());
        assert_eq!(a.eml.best_config, b.eml.best_config);
        // and the annealing runs (same seeds, untouched by sharding) agree too
        assert_eq!(a.saml[0].1.best_config, b.saml[0].1.best_config);
        assert_eq!(b.em.cache.misses as u128, tiny.total_configurations());
    }
}
