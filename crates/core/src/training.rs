//! The training campaign and the performance-prediction models.
//!
//! Section III-B / IV-B of the paper: 7 200 experiments (2 880 on the host, 4 320 on
//! the device) are executed over the four genomes, all thread counts, affinities and
//! input fractions; half of the experiments train a Boosted Decision Tree Regression
//! model per device, the other half evaluate prediction accuracy (absolute error,
//! percent error, error histograms — Figs. 5–8 and Tables IV–V).
//!
//! The campaign executes as rayon-parallel batches (see
//! [`TrainingCampaign::host_dataset`] and friends): the 7 200 simulated experiments
//! spread over all cores while remaining bit-identical to a sequential run.

use dna_analysis::Genome;
use hetero_platform::{Affinity, ExecutionConfig, HeterogeneousPlatform, WorkloadProfile};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use wd_ml::{BoostedTreesRegressor, BoostingParams, Dataset, ErrorHistogram, Regressor};
use wd_opt::ShardPlan;

use crate::config::DeviceAxis;
use crate::evaluator::PredictionEvaluator;
use crate::features::{device_feature_names, device_features, host_feature_names, host_features};

/// Which side of the platform an experiment ran on (for accelerators: which one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Host,
    Device(usize),
}

/// One experiment of the training campaign, with its metadata retained so accuracy can
/// be reported per thread count / affinity / input size.
#[derive(Debug, Clone)]
struct ExperimentRecord {
    features: Vec<f64>,
    threads: u32,
    affinity: Affinity,
    genome: Genome,
    input_bytes: u64,
    measured: f64,
}

/// A measured-vs-predicted pair on the evaluation half of the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionRow {
    /// Thread count of the experiment.
    pub threads: u32,
    /// Thread affinity of the experiment.
    pub affinity: Affinity,
    /// Genome the input fraction was taken from.
    pub genome: Genome,
    /// Size of the scanned input in megabytes.
    pub input_megabytes: f64,
    /// Measured (simulated) execution time in seconds.
    pub measured: f64,
    /// Model-predicted execution time in seconds.
    pub predicted: f64,
}

impl PredictionRow {
    /// Absolute prediction error `|measured − predicted|` (the paper's Eq. 5).
    pub fn absolute_error(&self) -> f64 {
        (self.measured - self.predicted).abs()
    }

    /// Percent prediction error (the paper's Eq. 6).
    pub fn percent_error(&self) -> f64 {
        if self.measured.abs() < f64::EPSILON {
            0.0
        } else {
            100.0 * self.absolute_error() / self.measured
        }
    }
}

/// Prediction accuracy on the evaluation half of a campaign.
#[derive(Debug, Clone, Default)]
pub struct AccuracyReport {
    /// One row per evaluation experiment.
    pub rows: Vec<PredictionRow>,
}

impl AccuracyReport {
    /// Mean absolute error over all evaluation experiments, in seconds.
    pub fn mean_absolute_error(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(PredictionRow::absolute_error)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Mean percent error over all evaluation experiments.
    pub fn mean_percent_error(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(PredictionRow::percent_error)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Per-thread-count accuracy: `(threads, mean absolute error, mean percent error)`,
    /// sorted by thread count — the rows of the paper's Tables IV and V.
    pub fn by_threads(&self) -> Vec<(u32, f64, f64)> {
        let mut thread_counts: Vec<u32> = self.rows.iter().map(|r| r.threads).collect();
        thread_counts.sort_unstable();
        thread_counts.dedup();
        thread_counts
            .into_iter()
            .map(|threads| {
                let rows: Vec<&PredictionRow> =
                    self.rows.iter().filter(|r| r.threads == threads).collect();
                let absolute =
                    rows.iter().map(|r| r.absolute_error()).sum::<f64>() / rows.len() as f64;
                let percent =
                    rows.iter().map(|r| r.percent_error()).sum::<f64>() / rows.len() as f64;
                (threads, absolute, percent)
            })
            .collect()
    }

    /// Histogram of absolute errors (the paper's Figs. 7–8).
    pub fn histogram(&self, upper_bounds: Vec<f64>) -> ErrorHistogram {
        let errors: Vec<f64> = self
            .rows
            .iter()
            .map(PredictionRow::absolute_error)
            .collect();
        ErrorHistogram::new(upper_bounds, &errors)
    }

    /// Measured/predicted series for one (threads, affinity) pair, sorted by input size
    /// — one pair of curves in the paper's Figs. 5–6.  Returns
    /// `(input MB, measured, predicted)` triples.
    pub fn series(&self, threads: u32, affinity: Affinity) -> Vec<(f64, f64, f64)> {
        let mut points: Vec<(f64, f64, f64)> = self
            .rows
            .iter()
            .filter(|r| r.threads == threads && r.affinity == affinity)
            .map(|r| (r.input_megabytes, r.measured, r.predicted))
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        points
    }
}

/// The host and per-accelerator prediction models plus their accuracy reports.
#[derive(Debug, Clone)]
pub struct TrainedModels {
    /// Model predicting host execution times.
    pub host_model: BoostedTreesRegressor,
    /// One model per accelerator predicting that device's execution times (including
    /// offload overheads, since the device-side training measurements include them).
    pub device_models: Vec<BoostedTreesRegressor>,
    /// Accuracy of the host model on its evaluation half.
    pub host_accuracy: AccuracyReport,
    /// Accuracy of each device model on its evaluation half.
    pub device_accuracies: Vec<AccuracyReport>,
    /// Number of host experiments performed for training + evaluation.
    pub host_experiments: usize,
    /// Number of device experiments performed for training + evaluation (all
    /// accelerators combined).
    pub device_experiments: usize,
}

impl TrainedModels {
    /// Total number of experiments performed by the campaign.
    pub fn total_experiments(&self) -> usize {
        self.host_experiments + self.device_experiments
    }

    /// Number of accelerators the campaign trained models for.
    pub fn device_model_count(&self) -> usize {
        self.device_models.len()
    }

    /// The first accelerator's model (the paper's single-device view).
    pub fn device_model(&self) -> &BoostedTreesRegressor {
        &self.device_models[0]
    }

    /// The first accelerator's accuracy report (the paper's single-device view).
    pub fn device_accuracy(&self) -> &AccuracyReport {
        &self.device_accuracies[0]
    }

    /// Build a [`PredictionEvaluator`] for `workload`, backed by clones of the trained
    /// models (one per accelerator).
    pub fn prediction_evaluator(&self, workload: WorkloadProfile) -> PredictionEvaluator {
        PredictionEvaluator::new(
            Box::new(self.host_model.clone()),
            self.device_models
                .iter()
                .map(|model| Box::new(model.clone()) as Box<dyn wd_ml::Regressor + Send + Sync>)
                .collect(),
            workload,
        )
    }
}

/// The experiment campaign that generates training/evaluation data.
///
/// One [`DeviceAxis`] per accelerator: the campaign characterises each accelerator of
/// the platform separately (`device_axes.len()` must match the platform's accelerator
/// count when the campaign runs), and fits one model per device.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingCampaign {
    /// Host thread counts exercised.
    pub host_threads: Vec<u32>,
    /// Host affinities exercised.
    pub host_affinities: Vec<Affinity>,
    /// Thread counts and affinities exercised per accelerator.
    pub device_axes: Vec<DeviceAxis>,
    /// Input fractions of each genome (0..=1).
    pub fractions: Vec<f64>,
    /// Genomes sampled.
    pub genomes: Vec<Genome>,
    /// Fraction of experiments held out for evaluation (the paper uses 0.5).
    pub evaluation_fraction: f64,
    /// Seed of the deterministic train/evaluation split.
    pub split_seed: u64,
}

impl TrainingCampaign {
    /// The paper's campaign: 2 880 host experiments (6 thread counts × 3 affinities ×
    /// 4 genomes × 40 fractions) and 4 320 device experiments (9 × 3 × 4 × 40), with a
    /// 50/50 train/evaluation split.
    pub fn paper() -> Self {
        TrainingCampaign {
            host_threads: vec![2, 6, 12, 24, 36, 48],
            host_affinities: Affinity::HOST.to_vec(),
            device_axes: vec![DeviceAxis::paper_phi()],
            fractions: (1..=40).map(|s| s as f64 * 0.025).collect(),
            genomes: Genome::ALL.to_vec(),
            evaluation_fraction: 0.5,
            split_seed: 0x7261_1e55,
        }
    }

    /// A much smaller campaign for unit tests, examples and quick starts (a few hundred
    /// experiments instead of 7 200).
    pub fn reduced() -> Self {
        TrainingCampaign {
            host_threads: vec![2, 6, 12, 24, 48],
            host_affinities: vec![Affinity::Scatter],
            device_axes: vec![DeviceAxis::new(
                vec![8, 30, 60, 120, 240],
                vec![Affinity::Balanced],
            )],
            fractions: (1..=16).map(|s| s as f64 / 16.0).collect(),
            genomes: vec![Genome::Human, Genome::Cat],
            evaluation_fraction: 0.5,
            split_seed: 0x7261_1e55,
        }
    }

    /// The paper's campaign adapted to an arbitrary platform: one axis per
    /// accelerator, thread ladders clipped to each device's capacity
    /// ([`DeviceAxis::for_max_threads`]).
    pub fn for_platform(platform: &HeterogeneousPlatform) -> Self {
        Self::paper().with_device_axes(
            platform
                .accelerators
                .iter()
                .map(|accel| DeviceAxis::for_max_threads(accel.max_threads()))
                .collect(),
        )
    }

    /// The reduced campaign adapted to an arbitrary platform (a coarse thread ladder
    /// per accelerator), for examples and tests of multi-accelerator nodes.
    pub fn reduced_for(platform: &HeterogeneousPlatform) -> Self {
        Self::reduced().with_device_axes(
            platform
                .accelerators
                .iter()
                .map(|accel| {
                    DeviceAxis::with_ladder(
                        &[8, 30, 60, 120, 240],
                        accel.max_threads(),
                        vec![Affinity::Balanced],
                    )
                })
                .collect(),
        )
    }

    /// Replace the per-accelerator axes.
    pub fn with_device_axes(mut self, device_axes: Vec<DeviceAxis>) -> Self {
        assert!(
            !device_axes.is_empty(),
            "at least one device axis is required"
        );
        self.device_axes = device_axes;
        self
    }

    /// Number of host-side experiments this campaign performs.
    pub fn host_experiment_count(&self) -> usize {
        self.host_threads.len()
            * self.host_affinities.len()
            * self.fractions.len()
            * self.genomes.len()
    }

    /// Number of device-side experiments this campaign performs (all accelerators).
    pub fn device_experiment_count(&self) -> usize {
        self.device_axes
            .iter()
            .map(|axis| axis.threads.len() * axis.affinities.len())
            .sum::<usize>()
            * self.fractions.len()
            * self.genomes.len()
    }

    /// Total number of experiments (host + device).
    pub fn total_experiment_count(&self) -> usize {
        self.host_experiment_count() + self.device_experiment_count()
    }

    /// Execute the host half of the campaign and return it as a dataset
    /// (features per [`crate::features::host_feature_names`], targets in seconds).
    pub fn host_dataset(&self, platform: &HeterogeneousPlatform) -> wd_ml::Dataset {
        Self::records_to_dataset(self.generate(platform, Side::Host, 1), host_feature_names())
    }

    /// Execute the campaign half of accelerator `device_index` and return it as a
    /// dataset.
    pub fn device_dataset(
        &self,
        platform: &HeterogeneousPlatform,
        device_index: usize,
    ) -> wd_ml::Dataset {
        Self::records_to_dataset(
            self.generate(platform, Side::Device(device_index), 1),
            device_feature_names(),
        )
    }

    fn records_to_dataset(records: Vec<ExperimentRecord>, names: Vec<String>) -> wd_ml::Dataset {
        let mut data = wd_ml::Dataset::new(names);
        for record in records {
            data.push(record.features, record.measured)
                .expect("campaign rows match the feature schema");
        }
        data
    }

    /// Execute the campaign on `platform` and fit the two prediction models.
    pub fn run(&self, platform: &HeterogeneousPlatform, boosting: BoostingParams) -> TrainedModels {
        self.run_sharded(platform, boosting, 1)
    }

    /// Execute the campaign as `shard_count` contiguous shards per side — each shard
    /// standing in for one node of a measurement cluster — and fit one prediction
    /// model per device from the concatenated records.
    ///
    /// Sharding is invisible in the result: shards are contiguous slices of the
    /// deterministic experiment order (a [`wd_opt::ShardPlan`] partition) concatenated
    /// back in shard order, and the simulator's noise is a pure hash of the experiment
    /// context, so the datasets — and therefore the trained models and accuracy
    /// reports — are identical to a single-node campaign for every shard count.
    ///
    /// # Panics
    ///
    /// Panics when the number of device axes does not match the platform's
    /// accelerator count (the campaign would otherwise silently train models for
    /// devices that do not exist, or skip devices that do).
    pub fn run_sharded(
        &self,
        platform: &HeterogeneousPlatform,
        boosting: BoostingParams,
        shard_count: usize,
    ) -> TrainedModels {
        assert_eq!(
            self.device_axes.len(),
            platform.accelerator_count(),
            "campaign describes {} device axes but the platform has {} accelerator(s)",
            self.device_axes.len(),
            platform.accelerator_count()
        );
        let host_records = self.generate(platform, Side::Host, shard_count);
        let (host_model, host_accuracy) =
            self.fit_side(&host_records, host_feature_names(), boosting);

        let mut device_models = Vec::with_capacity(self.device_axes.len());
        let mut device_accuracies = Vec::with_capacity(self.device_axes.len());
        let mut device_experiments = 0usize;
        for index in 0..self.device_axes.len() {
            let records = self.generate(platform, Side::Device(index), shard_count);
            let (model, accuracy) = self.fit_side(&records, device_feature_names(), boosting);
            device_experiments += records.len();
            device_models.push(model);
            device_accuracies.push(accuracy);
        }

        TrainedModels {
            host_model,
            device_models,
            host_accuracy,
            device_accuracies,
            host_experiments: host_records.len(),
            device_experiments,
        }
    }

    /// The deterministic experiment order of one side of the campaign.
    fn experiment_list(&self, side: Side) -> Vec<(Genome, WorkloadProfile, u32, Affinity)> {
        let (threads_list, affinity_list) = match side {
            Side::Host => (&self.host_threads, &self.host_affinities),
            Side::Device(index) => {
                let axis = &self.device_axes[index];
                (&axis.threads, &axis.affinities)
            }
        };
        let mut experiments: Vec<(Genome, WorkloadProfile, u32, Affinity)> = Vec::with_capacity(
            threads_list.len() * affinity_list.len() * self.fractions.len() * self.genomes.len(),
        );
        for &genome in &self.genomes {
            for &fraction in &self.fractions {
                let share = genome.workload_fraction(fraction);
                if share.is_empty() {
                    continue;
                }
                for &threads in threads_list {
                    for &affinity in affinity_list {
                        experiments.push((genome, share.clone(), threads, affinity));
                    }
                }
            }
        }
        experiments
    }

    /// Run all experiments for one side of the platform, as `shard_count` concurrent
    /// shards.
    ///
    /// The full cross-product of experiments is enumerated first, partitioned into
    /// contiguous shards, and each shard executed as one rayon-parallel batch — the
    /// simulator is stateless and its noise model is a pure hash of the experiment
    /// context, so the concatenated records are identical to a sequential campaign,
    /// in the same deterministic order.
    fn generate(
        &self,
        platform: &HeterogeneousPlatform,
        side: Side,
        shard_count: usize,
    ) -> Vec<ExperimentRecord> {
        let experiments = self.experiment_list(side);
        let run_one =
            |(genome, share, threads, affinity): (Genome, WorkloadProfile, u32, Affinity)| {
                let cfg = ExecutionConfig::new(threads, affinity);
                let measured = match side {
                    Side::Host => {
                        platform
                            .execute_host_only(&share, &cfg)
                            .expect("valid host experiment")
                            .t_total
                    }
                    Side::Device(index) => {
                        platform
                            .execute_device_only_on(index, &share, &cfg)
                            .expect("valid device experiment")
                            .t_total
                    }
                };
                let features = match side {
                    Side::Host => host_features(threads, affinity, share.bytes),
                    Side::Device(_) => device_features(threads, affinity, share.bytes),
                };
                ExperimentRecord {
                    features,
                    threads,
                    affinity,
                    genome,
                    input_bytes: share.bytes,
                    measured,
                }
            };

        if shard_count <= 1 {
            return experiments.into_par_iter().map(run_one).collect();
        }

        // one rayon task per shard; inside a shard the slice runs sequentially, as it
        // would on a remote node of a measurement cluster
        let plan = ShardPlan::new(experiments.len(), shard_count);
        let mut shards: Vec<Vec<(Genome, WorkloadProfile, u32, Affinity)>> =
            Vec::with_capacity(plan.shard_count());
        let mut rest = experiments;
        for range in plan.ranges().into_iter().rev() {
            shards.push(rest.split_off(range.start));
        }
        shards.reverse();

        shards
            .into_par_iter()
            .map(|shard| shard.into_iter().map(run_one).collect::<Vec<_>>())
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect()
    }

    /// Split the records, train the model on the training half and evaluate it on the
    /// held-out half.
    fn fit_side(
        &self,
        records: &[ExperimentRecord],
        feature_names: Vec<String>,
        boosting: BoostingParams,
    ) -> (BoostedTreesRegressor, AccuracyReport) {
        assert!(!records.is_empty(), "the campaign produced no experiments");
        let mut order: Vec<usize> = (0..records.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.split_seed);
        order.shuffle(&mut rng);
        let eval_len =
            ((records.len() as f64) * self.evaluation_fraction.clamp(0.0, 0.9)).round() as usize;
        let (eval_indices, train_indices) = order.split_at(eval_len.min(records.len() - 1));

        let mut train = Dataset::new(feature_names);
        for &i in train_indices {
            train
                .push(records[i].features.clone(), records[i].measured)
                .expect("training row matches the schema");
        }
        let mut model = BoostedTreesRegressor::new(boosting);
        model.fit(&train).expect("training set is non-empty");

        let rows = eval_indices
            .iter()
            .map(|&i| {
                let record = &records[i];
                PredictionRow {
                    threads: record.threads,
                    affinity: record.affinity,
                    genome: record.genome,
                    input_megabytes: record.input_bytes as f64 / 1e6,
                    measured: record.measured,
                    predicted: model.predict_one(&record.features).max(0.0),
                }
            })
            .collect();

        (model, AccuracyReport { rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_matches_the_reported_experiment_counts() {
        let campaign = TrainingCampaign::paper();
        assert_eq!(campaign.host_experiment_count(), 2880);
        assert_eq!(campaign.device_experiment_count(), 4320);
        assert_eq!(campaign.total_experiment_count(), 7200);
    }

    #[test]
    fn reduced_campaign_trains_accurate_models() {
        let platform = HeterogeneousPlatform::emil();
        let models = TrainingCampaign::reduced().run(&platform, BoostingParams::fast());

        assert!(models.host_model.is_fitted());
        assert!(models.device_model().is_fitted());
        assert_eq!(models.device_model_count(), 1);
        assert_eq!(
            models.host_experiments,
            TrainingCampaign::reduced().host_experiment_count()
        );
        assert!(!models.host_accuracy.rows.is_empty());
        assert!(!models.device_accuracy().rows.is_empty());

        // The paper reports ~5.2 % host and ~3.1 % device error; the reduced campaign is
        // coarser, so accept anything clearly better than a naive predictor.
        assert!(
            models.host_accuracy.mean_percent_error() < 20.0,
            "host percent error {}",
            models.host_accuracy.mean_percent_error()
        );
        assert!(
            models.device_accuracy().mean_percent_error() < 20.0,
            "device percent error {}",
            models.device_accuracy().mean_percent_error()
        );
    }

    #[test]
    fn sharded_campaign_is_identical_to_single_node_training() {
        let platform = HeterogeneousPlatform::emil();
        let campaign = TrainingCampaign::reduced();
        let single = campaign.run(&platform, BoostingParams::fast());
        for shards in [2usize, 3, 7] {
            let sharded = campaign.run_sharded(&platform, BoostingParams::fast(), shards);
            assert_eq!(sharded.host_experiments, single.host_experiments);
            assert_eq!(sharded.device_experiments, single.device_experiments);
            // identical records → identical split → identical evaluation rows
            assert_eq!(
                sharded.host_accuracy.rows, single.host_accuracy.rows,
                "{shards} shards"
            );
            assert_eq!(
                sharded.device_accuracy().rows,
                single.device_accuracy().rows
            );
        }
    }

    #[test]
    fn multi_accelerator_campaign_trains_one_model_per_device() {
        let platform = HeterogeneousPlatform::emil_with_gpu();
        let campaign = TrainingCampaign::reduced_for(&platform);
        assert_eq!(campaign.device_axes.len(), 2);
        // the GPU axis is clipped/extended to the device capacity
        assert_eq!(campaign.device_axes[1].threads.last(), Some(&448));

        let models = campaign.run(&platform, BoostingParams::fast());
        assert_eq!(models.device_model_count(), 2);
        for (index, (model, accuracy)) in models
            .device_models
            .iter()
            .zip(&models.device_accuracies)
            .enumerate()
        {
            assert!(model.is_fitted(), "device {index}");
            assert!(!accuracy.rows.is_empty(), "device {index}");
            assert!(
                accuracy.mean_percent_error() < 25.0,
                "device {index} percent error {}",
                accuracy.mean_percent_error()
            );
        }
        assert_eq!(
            models.device_experiments,
            campaign.device_experiment_count()
        );

        // the two devices are genuinely different: their models disagree on the same
        // share
        let features = device_features(60, Affinity::Balanced, 1_000_000_000);
        let phi = models.device_models[0].predict_one(&features);
        let gpu = models.device_models[1].predict_one(&features);
        assert!(phi > 0.0 && gpu > 0.0);
        assert!(
            (phi - gpu).abs() / phi.max(gpu) > 0.05,
            "Phi ({phi}) and GPU ({gpu}) models should disagree"
        );
    }

    #[test]
    fn campaign_rejects_mismatched_device_axes() {
        let platform = HeterogeneousPlatform::emil_with_gpu();
        let campaign = TrainingCampaign::reduced(); // one axis, two accelerators
        let result = std::panic::catch_unwind(|| campaign.run(&platform, BoostingParams::fast()));
        assert!(result.is_err());
    }

    #[test]
    fn accuracy_report_groups_by_threads() {
        let report = AccuracyReport {
            rows: vec![
                PredictionRow {
                    threads: 2,
                    affinity: Affinity::Scatter,
                    genome: Genome::Human,
                    input_megabytes: 100.0,
                    measured: 1.0,
                    predicted: 1.1,
                },
                PredictionRow {
                    threads: 2,
                    affinity: Affinity::Scatter,
                    genome: Genome::Human,
                    input_megabytes: 200.0,
                    measured: 2.0,
                    predicted: 1.8,
                },
                PredictionRow {
                    threads: 48,
                    affinity: Affinity::Scatter,
                    genome: Genome::Human,
                    input_megabytes: 100.0,
                    measured: 0.5,
                    predicted: 0.5,
                },
            ],
        };
        let by_threads = report.by_threads();
        assert_eq!(by_threads.len(), 2);
        assert_eq!(by_threads[0].0, 2);
        assert!((by_threads[0].1 - 0.15).abs() < 1e-12);
        assert!((by_threads[0].2 - 10.0).abs() < 1e-12);
        assert_eq!(by_threads[1], (48, 0.0, 0.0));

        // error histogram and series
        let histogram = report.histogram(vec![0.05, 0.15, 0.5]);
        assert_eq!(histogram.total(), 3);
        let series = report.series(2, Affinity::Scatter);
        assert_eq!(series.len(), 2);
        assert!(series[0].0 < series[1].0);
    }

    #[test]
    fn prediction_row_errors_match_the_paper_formulas() {
        let row = PredictionRow {
            threads: 12,
            affinity: Affinity::Compact,
            genome: Genome::Dog,
            input_megabytes: 50.0,
            measured: 2.0,
            predicted: 1.5,
        };
        assert!((row.absolute_error() - 0.5).abs() < 1e-12);
        assert!((row.percent_error() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accuracy_report_is_safe() {
        let report = AccuracyReport::default();
        assert_eq!(report.mean_absolute_error(), 0.0);
        assert_eq!(report.mean_percent_error(), 0.0);
        assert!(report.by_threads().is_empty());
        assert!(report.series(48, Affinity::Scatter).is_empty());
    }
}
