//! Performance evaluation of system configurations.
//!
//! A [`ConfigEvaluator`] maps a [`SystemConfiguration`] plus a workload to the pair
//! `(T_host, T_device)`; the optimization energy is their maximum (the paper's Eq. 2).
//! Two evaluators are provided, matching the paper's two evaluation modes:
//!
//! * [`MeasurementEvaluator`] — "runs" the configuration on the simulated platform
//!   (stands in for executing the real application on the Emil machine);
//! * [`PredictionEvaluator`] — queries the trained host/device regression models, the
//!   fast evaluation mode that makes EML and SAML possible.

use hetero_platform::{HeterogeneousPlatform, WorkloadProfile};
use wd_ml::Regressor;
use wd_opt::Objective;

use crate::config::SystemConfiguration;
use crate::features::{device_features, host_features};

/// Maps configurations to host/device execution times.
pub trait ConfigEvaluator {
    /// Predicted or measured `(T_host, T_device)` for running `workload` under `config`.
    /// A device that receives no work reports 0.
    fn evaluate_times(&self, config: &SystemConfiguration, workload: &WorkloadProfile)
        -> (f64, f64);

    /// The optimization energy `E = max(T_host, T_device)` (Eq. 2).
    fn energy(&self, config: &SystemConfiguration, workload: &WorkloadProfile) -> f64 {
        let (host, device) = self.evaluate_times(config, workload);
        host.max(device)
    }
}

/// Evaluation by "measurement": one simulated execution per query.
#[derive(Debug, Clone)]
pub struct MeasurementEvaluator {
    platform: HeterogeneousPlatform,
}

impl MeasurementEvaluator {
    /// Evaluate on the given platform.
    pub fn new(platform: HeterogeneousPlatform) -> Self {
        MeasurementEvaluator { platform }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &HeterogeneousPlatform {
        &self.platform
    }
}

impl ConfigEvaluator for MeasurementEvaluator {
    fn evaluate_times(
        &self,
        config: &SystemConfiguration,
        workload: &WorkloadProfile,
    ) -> (f64, f64) {
        let measurement = self
            .platform
            .execute(
                workload,
                &config.partition(),
                &config.host_execution(),
                &[config.device_execution()],
            )
            .unwrap_or_else(|err|

                panic!("invalid configuration {config}: {err}"));
        (measurement.t_host, measurement.t_device)
    }
}

/// Evaluation by machine-learning prediction: one model query per device.
pub struct PredictionEvaluator {
    host_model: Box<dyn Regressor + Send + Sync>,
    device_model: Box<dyn Regressor + Send + Sync>,
    /// Fixed overhead added to the device prediction for the offload launch + transfer
    /// of the device share.  The paper's device-side training measurements include the
    /// offload cost, so after training this is zero; it is exposed for experimentation
    /// with models trained on compute-only data.
    device_fixed_overhead: f64,
}

impl PredictionEvaluator {
    /// Build an evaluator from trained host and device models.
    pub fn new(
        host_model: Box<dyn Regressor + Send + Sync>,
        device_model: Box<dyn Regressor + Send + Sync>,
    ) -> Self {
        PredictionEvaluator {
            host_model,
            device_model,
            device_fixed_overhead: 0.0,
        }
    }

    /// Add a fixed overhead to every device prediction.
    pub fn with_device_overhead(mut self, overhead: f64) -> Self {
        self.device_fixed_overhead = overhead.max(0.0);
        self
    }

    /// Predict the host time for a host share of `bytes` bytes.
    pub fn predict_host(&self, threads: u32, affinity: hetero_platform::Affinity, bytes: u64) -> f64 {
        self.host_model
            .predict_one(&host_features(threads, affinity, bytes))
            .max(0.0)
    }

    /// Predict the device time for a device share of `bytes` bytes.
    pub fn predict_device(
        &self,
        threads: u32,
        affinity: hetero_platform::Affinity,
        bytes: u64,
    ) -> f64 {
        (self
            .device_model
            .predict_one(&device_features(threads, affinity, bytes))
            + self.device_fixed_overhead)
            .max(0.0)
    }
}

impl ConfigEvaluator for PredictionEvaluator {
    fn evaluate_times(
        &self,
        config: &SystemConfiguration,
        workload: &WorkloadProfile,
    ) -> (f64, f64) {
        let host_bytes = (workload.bytes as f64 * config.host_fraction()).round() as u64;
        let device_bytes = workload.bytes - host_bytes.min(workload.bytes);
        let host = if host_bytes == 0 {
            0.0
        } else {
            self.predict_host(config.host_threads, config.host_affinity, host_bytes)
        };
        let device = if device_bytes == 0 {
            0.0
        } else {
            self.predict_device(config.device_threads, config.device_affinity, device_bytes)
        };
        (host, device)
    }
}

/// Adapter exposing a [`ConfigEvaluator`] + workload pair as a [`wd_opt::Objective`],
/// so the generic optimizers can minimise the total execution time.
pub struct EnergyObjective<'a, E: ConfigEvaluator + ?Sized> {
    evaluator: &'a E,
    workload: &'a WorkloadProfile,
}

impl<'a, E: ConfigEvaluator + ?Sized> EnergyObjective<'a, E> {
    /// Bundle an evaluator with the workload being tuned.
    pub fn new(evaluator: &'a E, workload: &'a WorkloadProfile) -> Self {
        EnergyObjective { evaluator, workload }
    }
}

impl<E: ConfigEvaluator + ?Sized> Objective<SystemConfiguration> for EnergyObjective<'_, E> {
    fn evaluate(&self, config: &SystemConfiguration) -> f64 {
        self.evaluator.energy(config, self.workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_analysis::Genome;
    use hetero_platform::Affinity;

    fn human() -> WorkloadProfile {
        Genome::Human.workload()
    }

    fn evaluator() -> MeasurementEvaluator {
        MeasurementEvaluator::new(HeterogeneousPlatform::emil().without_noise())
    }

    #[test]
    fn energy_is_the_maximum_of_both_times() {
        let evaluator = evaluator();
        let cfg = SystemConfiguration::with_host_percent(48, Affinity::Scatter, 240, Affinity::Balanced, 60);
        let (host, device) = evaluator.evaluate_times(&cfg, &human());
        assert!(host > 0.0 && device > 0.0);
        assert_eq!(evaluator.energy(&cfg, &human()), host.max(device));
    }

    #[test]
    fn host_only_and_device_only_have_one_sided_times() {
        let evaluator = evaluator();
        let host_only = SystemConfiguration::host_only_baseline();
        let (host, device) = evaluator.evaluate_times(&host_only, &human());
        assert!(host > 0.0);
        assert_eq!(device, 0.0);

        let device_only = SystemConfiguration::device_only_baseline();
        let (host, device) = evaluator.evaluate_times(&device_only, &human());
        assert_eq!(host, 0.0);
        assert!(device > 0.0);
    }

    #[test]
    fn measurement_energy_prefers_balanced_splits_for_large_inputs() {
        let evaluator = evaluator();
        let all_host = evaluator.energy(&SystemConfiguration::host_only_baseline(), &human());
        let all_device = evaluator.energy(&SystemConfiguration::device_only_baseline(), &human());
        let split = evaluator.energy(
            &SystemConfiguration::with_host_percent(48, Affinity::Scatter, 240, Affinity::Balanced, 65),
            &human(),
        );
        assert!(split < all_host);
        assert!(split < all_device);
    }

    #[test]
    fn prediction_evaluator_uses_the_models() {
        // dummy models: host predicts 2 s/GB of its share, device predicts 1 s/GB + 0.3 s
        struct PerGb(f64);
        impl Regressor for PerGb {
            fn fit(&mut self, _data: &wd_ml::Dataset) -> Result<(), wd_ml::MlError> {
                Ok(())
            }
            fn predict_one(&self, features: &[f64]) -> f64 {
                self.0 * features[4]
            }
            fn is_fitted(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "per-gb"
            }
        }
        let evaluator = PredictionEvaluator::new(Box::new(PerGb(2.0)), Box::new(PerGb(1.0)))
            .with_device_overhead(0.3);
        let workload = WorkloadProfile::dna_scan("x", 1_000_000_000);
        let cfg = SystemConfiguration::with_host_percent(48, Affinity::Scatter, 240, Affinity::Balanced, 50);
        let (host, device) = evaluator.evaluate_times(&cfg, &workload);
        assert!((host - 1.0).abs() < 1e-9, "host {host}");
        assert!((device - 0.8).abs() < 1e-9, "device {device}");
        assert!((evaluator.energy(&cfg, &workload) - 1.0).abs() < 1e-9);

        // zero shares produce zero predictions
        let host_only = SystemConfiguration::with_host_percent(48, Affinity::Scatter, 240, Affinity::Balanced, 100);
        let (_, device) = evaluator.evaluate_times(&host_only, &workload);
        assert_eq!(device, 0.0);
    }

    #[test]
    fn energy_objective_bridges_to_wd_opt() {
        let evaluator = evaluator();
        let workload = human();
        let objective = EnergyObjective::new(&evaluator, &workload);
        let cfg = SystemConfiguration::with_host_percent(24, Affinity::Scatter, 120, Affinity::Balanced, 70);
        assert!((objective.evaluate(&cfg) - evaluator.energy(&cfg, &workload)).abs() < 1e-12);
    }
}
