//! Performance evaluation of system configurations — implementations of the unified
//! [`wd_opt::Objective`] evaluation layer.
//!
//! An evaluator binds a platform (or trained models) to one workload and scores
//! [`SystemConfiguration`]s; the optimization energy is `max(T_host, T_device)` (the
//! paper's Eq. 2).  Two evaluators are provided, matching the paper's two evaluation
//! modes:
//!
//! * [`MeasurementEvaluator`] — "runs" the configuration on the simulated platform
//!   (stands in for executing the real application on the Emil machine);
//! * [`PredictionEvaluator`] — queries the trained host/device regression models, the
//!   fast evaluation mode that makes EML and SAML possible.
//!
//! Both implement [`Objective<SystemConfiguration>`] directly, so any optimizer in
//! [`wd_opt`] — enumeration, simulated annealing, the ablation heuristics — consumes
//! them without adapters, and both override [`Objective::evaluate_batch`]:
//! measurement batches go through the platform's parallel
//! [`HeterogeneousPlatform::execute_many`], prediction batches fan out over rayon
//! workers.  Wrap an evaluator in [`wd_opt::CachedObjective`] to memoize repeated
//! configurations (the paper's methods re-visit configurations constantly under
//! simulated annealing).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

use hetero_platform::{
    Affinity, ExecutionRequest, HeterogeneousPlatform, Measurement, WorkloadProfile,
};
use rayon::prelude::*;
use wd_ml::Regressor;
use wd_opt::{CacheStats, DeltaObjective, Objective, Touched};

use crate::config::{ConfigurationSpace, DeviceSetting, SystemConfiguration};
use crate::features::{device_features, host_features, share_bytes};

/// Per-configuration evaluation state of the delta-evaluable prediction evaluators:
/// the predicted host time plus one predicted time per accelerator — exactly what
/// [`PredictionEvaluator::evaluate_all_times`] returns, retained between neighbour
/// moves so untouched devices are never re-scored.
pub type PredictedTimes = (f64, Vec<f64>);

/// Re-score `config` against `base`'s retained per-device times: recompute the
/// components `touched` may cover (component 0 is the host, component `i + 1` is
/// accelerator `i`; [`Touched::Unknown`] falls back to diffing the two
/// configurations), copy every other component's time from `state`, and re-compose
/// the energy with the same max-fold, in the same order, as the full evaluation path
/// — so the result is bit-identical to evaluating `config` from scratch.
fn recompose_move(
    base: &SystemConfiguration,
    state: &PredictedTimes,
    config: &SystemConfiguration,
    touched: &Touched,
    host_time: impl FnOnce() -> f64,
    device_time: impl Fn(usize, DeviceSetting) -> f64,
) -> (f64, PredictedTimes) {
    // a state from a differently-shaped configuration cannot be reused
    let comparable = base.accelerator_count() == config.accelerator_count()
        && state.1.len() == config.accelerator_count();
    let host_changed = !comparable
        || (touched.may_touch(0)
            && (config.host_threads != base.host_threads
                || config.host_affinity != base.host_affinity
                || config.host_permille() != base.host_permille()));
    let host = if host_changed { host_time() } else { state.0 };
    let devices: Vec<f64> = config
        .devices()
        .iter()
        .enumerate()
        .map(|(index, &device)| {
            if comparable && !(touched.may_touch(index + 1) && device != base.devices()[index]) {
                state.1[index]
            } else {
                device_time(index, device)
            }
        })
        .collect();
    let device = devices.iter().copied().fold(0.0, f64::max);
    (host.max(device), (host, devices))
}

/// Evaluation by "measurement": one simulated execution per query, bound to one
/// workload.
#[derive(Debug, Clone)]
pub struct MeasurementEvaluator {
    platform: HeterogeneousPlatform,
    workload: WorkloadProfile,
}

impl MeasurementEvaluator {
    /// Evaluate `workload` on the given platform.
    pub fn new(platform: HeterogeneousPlatform, workload: WorkloadProfile) -> Self {
        MeasurementEvaluator { platform, workload }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &HeterogeneousPlatform {
        &self.platform
    }

    /// The workload being evaluated.
    pub fn workload(&self) -> &WorkloadProfile {
        &self.workload
    }

    /// Rebind the evaluator to a different workload.
    pub fn with_workload(mut self, workload: WorkloadProfile) -> Self {
        self.workload = workload;
        self
    }

    fn request(config: &SystemConfiguration) -> ExecutionRequest {
        ExecutionRequest {
            partition: config.partition(),
            host: config.host_execution(),
            devices: config.device_executions(),
        }
    }

    /// The full simulated [`Measurement`] of running the workload under `config` —
    /// the exact execution behind [`MeasurementEvaluator::energy`], with the
    /// [`hetero_platform::ExecutionStats`] breakdown kept instead of discarded.
    pub fn measure(&self, config: &SystemConfiguration) -> Measurement {
        self.platform
            .execute(
                &self.workload,
                &config.partition(),
                &config.host_execution(),
                &config.device_executions(),
            )
            .unwrap_or_else(|err| panic!("invalid configuration {config}: {err}"))
    }

    /// Measured `(T_host, T_device)` for running the workload under `config`.
    /// A device that receives no work reports 0.
    pub fn evaluate_times(&self, config: &SystemConfiguration) -> (f64, f64) {
        let measurement = self.measure(config);
        (measurement.t_host, measurement.t_device)
    }

    /// The optimization energy `E = max(T_host, T_device)` (Eq. 2).
    pub fn energy(&self, config: &SystemConfiguration) -> f64 {
        let (host, device) = self.evaluate_times(config);
        host.max(device)
    }
}

impl Objective<SystemConfiguration> for MeasurementEvaluator {
    fn evaluate(&self, config: &SystemConfiguration) -> f64 {
        self.energy(config)
    }

    /// Batched measurement: all configurations are executed in one
    /// [`HeterogeneousPlatform::execute_many`] pass (rayon-parallel, bit-identical to
    /// one-at-a-time execution).
    fn evaluate_batch(&self, configs: &[SystemConfiguration]) -> Vec<f64> {
        let requests: Vec<ExecutionRequest> = configs.iter().map(Self::request).collect();
        self.platform
            .execute_many(&self.workload, &requests)
            .into_iter()
            .zip(configs)
            .map(|(result, config)| {
                let measurement =
                    result.unwrap_or_else(|err| panic!("invalid configuration {config}: {err}"));
                measurement.t_host.max(measurement.t_device)
            })
            .collect()
    }
}

/// Evaluation by machine-learning prediction: one model query per device (one trained
/// model *per accelerator*), bound to one workload.
pub struct PredictionEvaluator {
    host_model: Box<dyn Regressor + Send + Sync>,
    device_models: Vec<Box<dyn Regressor + Send + Sync>>,
    workload: WorkloadProfile,
    /// Fixed overhead added to the device prediction for the offload launch + transfer
    /// of the device share.  The paper's device-side training measurements include the
    /// offload cost, so after training this is zero; it is exposed for experimentation
    /// with models trained on compute-only data.
    device_fixed_overhead: f64,
}

impl PredictionEvaluator {
    /// Build an evaluator for `workload` from a trained host model and one trained
    /// model per accelerator (device order matches the platform's accelerator order).
    pub fn new(
        host_model: Box<dyn Regressor + Send + Sync>,
        device_models: Vec<Box<dyn Regressor + Send + Sync>>,
        workload: WorkloadProfile,
    ) -> Self {
        assert!(
            !device_models.is_empty(),
            "at least one device model is required"
        );
        PredictionEvaluator {
            host_model,
            device_models,
            workload,
            device_fixed_overhead: 0.0,
        }
    }

    /// Number of accelerators this evaluator has models for.
    pub fn device_model_count(&self) -> usize {
        self.device_models.len()
    }

    /// Add a fixed overhead to every device prediction.
    pub fn with_device_overhead(mut self, overhead: f64) -> Self {
        self.device_fixed_overhead = overhead.max(0.0);
        self
    }

    /// The workload being evaluated.
    pub fn workload(&self) -> &WorkloadProfile {
        &self.workload
    }

    /// Rebind the evaluator to a different workload (the models depend only on the
    /// platform, not on the particular workload).
    pub fn with_workload(mut self, workload: WorkloadProfile) -> Self {
        self.workload = workload;
        self
    }

    /// Predict the host time for a host share of `bytes` bytes.
    pub fn predict_host(
        &self,
        threads: u32,
        affinity: hetero_platform::Affinity,
        bytes: u64,
    ) -> f64 {
        self.host_model
            .predict_one(&host_features(threads, affinity, bytes))
            .max(0.0)
    }

    /// Predict the time of accelerator `device_index` for a share of `bytes` bytes.
    pub fn predict_device_on(
        &self,
        device_index: usize,
        threads: u32,
        affinity: hetero_platform::Affinity,
        bytes: u64,
    ) -> f64 {
        (self.device_models[device_index].predict_one(&device_features(threads, affinity, bytes))
            + self.device_fixed_overhead)
            .max(0.0)
    }

    /// Predict the time of the first accelerator for a device share of `bytes` bytes.
    pub fn predict_device(
        &self,
        threads: u32,
        affinity: hetero_platform::Affinity,
        bytes: u64,
    ) -> f64 {
        self.predict_device_on(0, threads, affinity, bytes)
    }

    /// Predicted host time plus one predicted time per accelerator for running the
    /// workload under `config`.  A device that receives no work reports 0.
    pub fn evaluate_all_times(&self, config: &SystemConfiguration) -> (f64, Vec<f64>) {
        assert!(
            config.accelerator_count() <= self.device_models.len(),
            "configuration describes {} accelerators but only {} device models are trained",
            config.accelerator_count(),
            self.device_models.len()
        );
        let host = self.config_host_time(config);
        let devices = config
            .devices()
            .iter()
            .enumerate()
            .map(|(index, &device)| self.config_device_time(index, device))
            .collect();
        (host, devices)
    }

    /// Predicted `(T_host, T_device)` for running the workload under `config`, where
    /// `T_device` is the time of the slowest accelerator (matching
    /// [`hetero_platform::Measurement::t_device`]).
    pub fn evaluate_times(&self, config: &SystemConfiguration) -> (f64, f64) {
        let (host, devices) = self.evaluate_all_times(config);
        (host, devices.into_iter().fold(0.0, f64::max))
    }

    /// The optimization energy `E = max(T_host, T_device)` (Eq. 2) under the models.
    pub fn energy(&self, config: &SystemConfiguration) -> f64 {
        let (host, device) = self.evaluate_times(config);
        host.max(device)
    }

    /// Build the factorized fast path for exhaustive searches over `space`: a
    /// [`TabulatedPredictionEvaluator`] whose per-device time tables are precomputed
    /// with batched, rayon-parallel model queries.  See the type docs for when this
    /// pays off.
    pub fn tabulated(&self, space: &ConfigurationSpace) -> TabulatedPredictionEvaluator<'_> {
        TabulatedPredictionEvaluator::new(self, space)
    }

    /// Build the factorized fast path for *local-search* walks: a
    /// [`LazyTabulatedPredictionEvaluator`] whose per-device time tables start empty
    /// and are filled on first touch, so a SAM/SAML walk (or the adaptive refinement
    /// controller) pays one model query per *distinct* `(threads, affinity, share)`
    /// triple it ever visits instead of one per device per move.
    pub fn lazy_tabulated(&self) -> LazyTabulatedPredictionEvaluator<'_> {
        LazyTabulatedPredictionEvaluator::new(self)
    }

    /// The host time of `config` exactly as [`PredictionEvaluator::evaluate_all_times`]
    /// computes it (zero share short-circuits to 0 without a model query).
    fn config_host_time(&self, config: &SystemConfiguration) -> f64 {
        let bytes = share_bytes(self.workload.bytes, config.host_permille());
        if bytes == 0 {
            0.0
        } else {
            self.predict_host(config.host_threads, config.host_affinity, bytes)
        }
    }

    /// The time of accelerator `index` under setting `device`, exactly as
    /// [`PredictionEvaluator::evaluate_all_times`] computes it.
    fn config_device_time(&self, index: usize, device: DeviceSetting) -> f64 {
        let bytes = share_bytes(self.workload.bytes, device.permille);
        if bytes == 0 {
            0.0
        } else {
            self.predict_device_on(index, device.threads, device.affinity, bytes)
        }
    }
}

impl Objective<SystemConfiguration> for PredictionEvaluator {
    fn evaluate(&self, config: &SystemConfiguration) -> f64 {
        self.energy(config)
    }

    /// Batched prediction: the model queries fan out over rayon workers.
    fn evaluate_batch(&self, configs: &[SystemConfiguration]) -> Vec<f64> {
        configs
            .par_iter()
            .map(|config| self.energy(config))
            .collect()
    }
}

/// Direct-model incremental evaluation: a neighbour move that touched only one
/// device re-queries only that device's model — O(1) model walks per move instead of
/// N + 1 — and re-composes the energy from the retained [`PredictedTimes`],
/// bit-identically to [`PredictionEvaluator::energy`].
impl DeltaObjective<SystemConfiguration> for PredictionEvaluator {
    type State = PredictedTimes;

    fn evaluate_with_state(&self, config: &SystemConfiguration) -> (f64, PredictedTimes) {
        let (host, devices) = self.evaluate_all_times(config);
        let device = devices.iter().copied().fold(0.0, f64::max);
        (host.max(device), (host, devices))
    }

    fn evaluate_move(
        &self,
        base: &SystemConfiguration,
        state: &PredictedTimes,
        config: &SystemConfiguration,
        touched: &Touched,
    ) -> (f64, PredictedTimes) {
        assert!(
            config.accelerator_count() <= self.device_models.len(),
            "configuration describes {} accelerators but only {} device models are trained",
            config.accelerator_count(),
            self.device_models.len()
        );
        recompose_move(
            base,
            state,
            config,
            touched,
            || self.config_host_time(config),
            |index, device| self.config_device_time(index, device),
        )
    }
}

/// One per-device time table of the factorized fast path, keyed by that device's own
/// `(threads, affinity, share permille)` axis.
type TimeTable = HashMap<(u32, Affinity, u32), f64>;

/// Number of table entries scored per batched model call during construction.
const TABLE_BATCH: usize = 256;

/// The factorized prediction fast path for exhaustive (enumeration) searches.
///
/// The energy `E = max(T_host, max_d T_d)` is *separable*: each device's predicted
/// time depends only on that device's own `(threads, affinity, share)` triple, never
/// on the other devices.  An N-way grid of `|host axis| × Π_d |axis_d| × |splits|`
/// configurations therefore needs only `Σ_d |threads_d| × |affinities_d| × |shares_d|`
/// *distinct* model queries — the per-device tables this evaluator precomputes — after
/// which scoring any configuration is a handful of table lookups and a max-fold,
/// with **zero** boosted-tree walks.
///
/// Construction queries the models once per table entry through the batched,
/// rayon-parallel [`wd_ml::Regressor::predict_batch`] path; results are **bit-identical**
/// to [`PredictionEvaluator`] (the tables store exactly what `predict_host` /
/// `predict_device_on` would return, and the max-composition replicates
/// [`PredictionEvaluator::energy`] operation for operation).
///
/// Tabulation pays off when many configurations share axis values — enumeration (EM's
/// grid visits every table entry thousands of times) and sharded campaigns.  It does
/// *not* pay off for short annealing walks, which visit too few configurations to
/// amortise building the tables; those keep querying the models directly.
///
/// Configurations outside the tabulated space (an axis value or share the space does
/// not contain) fall back to the wrapped evaluator's direct model path, so the
/// evaluator remains total; [`TabulatedPredictionEvaluator::fallback_queries`] counts
/// how often that happened.
pub struct TabulatedPredictionEvaluator<'a> {
    inner: &'a PredictionEvaluator,
    host: TimeTable,
    devices: Vec<TimeTable>,
    table_model_queries: usize,
    fallback_queries: AtomicUsize,
}

impl<'a> TabulatedPredictionEvaluator<'a> {
    /// Precompute the host table and one table per accelerator of `space`.
    ///
    /// # Panics
    ///
    /// Panics if `space` describes more accelerators than `inner` has models for.
    pub fn new(inner: &'a PredictionEvaluator, space: &ConfigurationSpace) -> Self {
        assert!(
            space.accelerator_count() <= inner.device_models.len(),
            "space describes {} accelerators but only {} device models are trained",
            space.accelerator_count(),
            inner.device_models.len()
        );
        let bytes = inner.workload.bytes;

        // distinct share values per simplex position (column 0 is the host)
        let shares_of = |position: usize| {
            let mut shares: Vec<u32> = space.splits.iter().map(|split| split[position]).collect();
            shares.sort_unstable();
            shares.dedup();
            shares
        };

        let host = Self::build_table(
            inner.host_model.as_ref(),
            &space.host_threads,
            &space.host_affinities,
            &shares_of(0),
            bytes,
            host_features,
            // exactly `predict_host`: clamp the raw prediction at zero
            &|prediction| prediction.max(0.0),
        );
        let overhead = inner.device_fixed_overhead;
        let devices: Vec<(TimeTable, usize)> = space
            .device_axes
            .iter()
            .enumerate()
            .map(|(index, axis)| {
                Self::build_table(
                    inner.device_models[index].as_ref(),
                    &axis.threads,
                    &axis.affinities,
                    &shares_of(index + 1),
                    bytes,
                    device_features,
                    // exactly `predict_device_on`: add the offload overhead, clamp
                    &|prediction| (prediction + overhead).max(0.0),
                )
            })
            .collect();

        let table_model_queries =
            host.1 + devices.iter().map(|(_, queries)| queries).sum::<usize>();
        TabulatedPredictionEvaluator {
            inner,
            host: host.0,
            devices: devices.into_iter().map(|(table, _)| table).collect(),
            table_model_queries,
            fallback_queries: AtomicUsize::new(0),
        }
    }

    /// Tabulate one device axis: zero shares short-circuit to 0 (as the direct path
    /// does), everything else is scored through batched, rayon-parallel model calls.
    /// Returns the table and the number of model queries it cost.
    fn build_table(
        model: &(dyn Regressor + Send + Sync),
        threads: &[u32],
        affinities: &[Affinity],
        shares: &[u32],
        total_bytes: u64,
        featurize: fn(u32, Affinity, u64) -> Vec<f64>,
        finish: &(dyn Fn(f64) -> f64 + Sync),
    ) -> (TimeTable, usize) {
        let mut table = TimeTable::with_capacity(threads.len() * affinities.len() * shares.len());
        let mut queried: Vec<(u32, Affinity, u32)> = Vec::new();
        for &t in threads {
            for &a in affinities {
                for &share in shares {
                    if share_bytes(total_bytes, share) == 0 {
                        // a side that receives no work reports 0, without a model query
                        table.insert((t, a, share), 0.0);
                    } else {
                        queried.push((t, a, share));
                    }
                }
            }
        }

        let predictions: Vec<Vec<f64>> = queried
            .chunks(TABLE_BATCH)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|chunk| {
                let mut width = 0;
                let mut matrix: Vec<f64> = Vec::new();
                for &(t, a, share) in chunk {
                    let row = featurize(t, a, share_bytes(total_bytes, share));
                    width = row.len();
                    matrix.extend(row);
                }
                model
                    .predict_batch(&matrix, width)
                    .into_iter()
                    .map(finish)
                    .collect()
            })
            .collect();
        for (chunk, chunk_predictions) in queried.chunks(TABLE_BATCH).zip(predictions) {
            for (&key, &time) in chunk.iter().zip(&chunk_predictions) {
                table.insert(key, time);
            }
        }
        (table, queried.len())
    }

    /// Number of model queries spent building the tables — the *entire* model cost of
    /// any number of subsequent evaluations.
    pub fn table_model_queries(&self) -> usize {
        self.table_model_queries
    }

    /// Total number of table entries across the host and all devices.
    pub fn table_len(&self) -> usize {
        self.host.len() + self.devices.iter().map(TimeTable::len).sum::<usize>()
    }

    /// How many evaluations had to fall back to the direct model path because the
    /// configuration lay outside the tabulated space (0 for enumeration over the
    /// space the tables were built from).
    pub fn fallback_queries(&self) -> usize {
        self.fallback_queries.load(Ordering::Relaxed)
    }

    /// The wrapped direct evaluator.
    pub fn inner(&self) -> &PredictionEvaluator {
        self.inner
    }

    fn host_time(&self, config: &SystemConfiguration) -> f64 {
        match self.host.get(&(
            config.host_threads,
            config.host_affinity,
            config.host_permille(),
        )) {
            Some(&time) => time,
            None => {
                self.fallback_queries.fetch_add(1, Ordering::Relaxed);
                let bytes = share_bytes(self.inner.workload.bytes, config.host_permille());
                if bytes == 0 {
                    0.0
                } else {
                    self.inner
                        .predict_host(config.host_threads, config.host_affinity, bytes)
                }
            }
        }
    }

    fn device_time(&self, index: usize, device: crate::config::DeviceSetting) -> f64 {
        match self
            .devices
            .get(index)
            .and_then(|table| table.get(&(device.threads, device.affinity, device.permille)))
        {
            Some(&time) => time,
            None => {
                self.fallback_queries.fetch_add(1, Ordering::Relaxed);
                let bytes = share_bytes(self.inner.workload.bytes, device.permille);
                if bytes == 0 {
                    0.0
                } else {
                    self.inner
                        .predict_device_on(index, device.threads, device.affinity, bytes)
                }
            }
        }
    }

    /// The optimization energy `E = max(T_host, max_d T_d)` by table lookup +
    /// max-composition — the same fold, in the same order, as
    /// [`PredictionEvaluator::energy`].
    pub fn energy(&self, config: &SystemConfiguration) -> f64 {
        assert!(
            config.accelerator_count() <= self.inner.device_models.len(),
            "configuration describes {} accelerators but only {} device models are trained",
            config.accelerator_count(),
            self.inner.device_models.len()
        );
        let host = self.host_time(config);
        let device = config
            .devices()
            .iter()
            .enumerate()
            .map(|(index, &device)| self.device_time(index, device))
            .fold(0.0, f64::max);
        host.max(device)
    }
}

impl Objective<SystemConfiguration> for TabulatedPredictionEvaluator<'_> {
    fn evaluate(&self, config: &SystemConfiguration) -> f64 {
        self.energy(config)
    }

    /// Batched scoring: pure table lookups.  Deliberately sequential — the lookups
    /// are ~ns each and the enumeration drivers already spread batches over rayon
    /// workers, so fanning out *inside* the batch would only add thread overhead.
    fn evaluate_batch(&self, configs: &[SystemConfiguration]) -> Vec<f64> {
        configs.iter().map(|config| self.energy(config)).collect()
    }
}

/// Incremental evaluation over the precomputed tables: a move re-probes only the
/// touched devices' tables (out-of-space values still fall back to the direct model
/// path, counted by [`TabulatedPredictionEvaluator::fallback_queries`]).
impl DeltaObjective<SystemConfiguration> for TabulatedPredictionEvaluator<'_> {
    type State = PredictedTimes;

    fn evaluate_with_state(&self, config: &SystemConfiguration) -> (f64, PredictedTimes) {
        assert!(
            config.accelerator_count() <= self.inner.device_models.len(),
            "configuration describes {} accelerators but only {} device models are trained",
            config.accelerator_count(),
            self.inner.device_models.len()
        );
        let host = self.host_time(config);
        let devices: Vec<f64> = config
            .devices()
            .iter()
            .enumerate()
            .map(|(index, &device)| self.device_time(index, device))
            .collect();
        let device = devices.iter().copied().fold(0.0, f64::max);
        (host.max(device), (host, devices))
    }

    fn evaluate_move(
        &self,
        base: &SystemConfiguration,
        state: &PredictedTimes,
        config: &SystemConfiguration,
        touched: &Touched,
    ) -> (f64, PredictedTimes) {
        assert!(
            config.accelerator_count() <= self.inner.device_models.len(),
            "configuration describes {} accelerators but only {} device models are trained",
            config.accelerator_count(),
            self.inner.device_models.len()
        );
        recompose_move(
            base,
            state,
            config,
            touched,
            || self.host_time(config),
            |index, device| self.device_time(index, device),
        )
    }
}

/// The factorized prediction fast path for **local-search** walks (SAM/SAML, tabu,
/// hill climbing, the adaptive refinement controller).
///
/// Like [`TabulatedPredictionEvaluator`] it exploits the separability of the energy
/// `E = max(T_host, max_d T_d)` — each device's predicted time depends only on that
/// device's own `(threads, affinity, share)` triple — but where the eager variant
/// pays `Σ_d |axis_d|` model queries *up front* (which only enumeration amortises),
/// the lazy variant starts with **empty** tables and fills each entry the first time
/// a walk touches it.  A 2 000-iteration SAML walk revisits the same few dozen axis
/// values constantly, so after a short warm-up every move is answered from the tables
/// and the total model cost is bounded by the number of *distinct* triples visited —
/// not by the walk length, and not by the space size.
///
/// Memoization is keyed by value, so the evaluator is total: a configuration outside
/// any particular space simply fills its own entries through the same direct model
/// path, making every energy **bit-identical** to [`PredictionEvaluator`] on every
/// configuration (the tables store exactly what `predict_host` / `predict_device_on`
/// would return, zero shares short-circuit to 0 without a model query, and the
/// max-composition replicates [`PredictionEvaluator::energy`] operation for
/// operation).
///
/// The tables live behind [`RwLock`]s, so one evaluator can be shared across rayon
/// workers (e.g. the convergence study's parallel annealing repeats); under a race
/// two workers may redundantly query the model for the same fresh entry — the values
/// are identical, one wins the insert, and [`LazyTabulatedPredictionEvaluator::model_queries`]
/// counts both walks (it reports real model cost, not distinct entries).
///
/// Implements [`DeltaObjective`], so the incremental drivers
/// ([`wd_opt::SimulatedAnnealing::run_delta`] and friends) re-probe only the devices
/// a neighbour move touched: an accepted move costs O(1) table probes and — once the
/// tables are warm — zero model queries.
pub struct LazyTabulatedPredictionEvaluator<'a> {
    inner: &'a PredictionEvaluator,
    host: RwLock<TimeTable>,
    devices: Vec<RwLock<TimeTable>>,
    probes: AtomicUsize,
    model_queries: AtomicUsize,
}

impl<'a> LazyTabulatedPredictionEvaluator<'a> {
    /// Wrap `inner` with empty tables (one per trained device model).
    pub fn new(inner: &'a PredictionEvaluator) -> Self {
        LazyTabulatedPredictionEvaluator {
            inner,
            host: RwLock::new(TimeTable::new()),
            devices: (0..inner.device_models.len())
                .map(|_| RwLock::new(TimeTable::new()))
                .collect(),
            probes: AtomicUsize::new(0),
            model_queries: AtomicUsize::new(0),
        }
    }

    /// The wrapped direct evaluator.
    pub fn inner(&self) -> &PredictionEvaluator {
        self.inner
    }

    /// Total number of per-device table probes served so far (every energy evaluation
    /// performs one probe for the host plus one per accelerator; a delta re-evaluation
    /// probes only the touched components).
    pub fn probes(&self) -> usize {
        self.probes.load(Ordering::Relaxed)
    }

    /// Number of boosted-tree model walks performed so far — the *entire* model cost
    /// of the walk, bounded by the number of distinct `(threads, affinity, share)`
    /// triples visited (plus any racing duplicate fills under concurrent use).
    pub fn model_queries(&self) -> usize {
        self.model_queries.load(Ordering::Relaxed)
    }

    /// Total number of table entries memoized so far across the host and all devices.
    pub fn table_len(&self) -> usize {
        self.host.read().expect("table lock poisoned").len()
            + self
                .devices
                .iter()
                .map(|table| table.read().expect("table lock poisoned").len())
                .sum::<usize>()
    }

    /// Hit/miss counters at the *per-device probe* granularity: `misses` is the number
    /// of model walks performed (the real evaluation cost), `hits` every probe
    /// answered without one (warm table entries and zero-share short-circuits).
    pub fn stats(&self) -> CacheStats {
        let misses = self.model_queries();
        CacheStats {
            hits: self.probes().saturating_sub(misses),
            misses,
        }
    }

    /// Publish the table counters to `recorder` as `{scope}.lazy.*`: probes served,
    /// boosted-tree model walks, and entries memoized.  Called post-hoc (counters are
    /// read once at the end of a run, never on the evaluation path), so observed runs
    /// stay bit-identical.
    pub fn publish_stats(&self, recorder: &dyn wd_obs::Recorder, scope: &str) {
        if !recorder.enabled() {
            return;
        }
        recorder.counter(&format!("{scope}.lazy.probes"), self.probes() as u64);
        recorder.counter(
            &format!("{scope}.lazy.model_walks"),
            self.model_queries() as u64,
        );
        recorder.counter(
            &format!("{scope}.lazy.table_entries"),
            self.table_len() as u64,
        );
    }

    /// Probe one table, filling the entry through `compute` on first touch.
    /// `compute` returns the time plus whether it walked a model (zero-share entries
    /// are filled for free).
    fn probe(
        &self,
        table: &RwLock<TimeTable>,
        key: (u32, Affinity, u32),
        compute: impl FnOnce() -> (f64, bool),
    ) -> f64 {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if let Some(&time) = table.read().expect("table lock poisoned").get(&key) {
            return time;
        }
        let (time, walked_model) = compute();
        if walked_model {
            self.model_queries.fetch_add(1, Ordering::Relaxed);
        }
        // a racing worker may have filled the entry while we computed; the values are
        // identical (models are deterministic), so first insert wins
        table
            .write()
            .expect("table lock poisoned")
            .entry(key)
            .or_insert(time);
        time
    }

    fn host_time(&self, config: &SystemConfiguration) -> f64 {
        let key = (
            config.host_threads,
            config.host_affinity,
            config.host_permille(),
        );
        self.probe(&self.host, key, || {
            let bytes = share_bytes(self.inner.workload.bytes, key.2);
            if bytes == 0 {
                (0.0, false)
            } else {
                (self.inner.predict_host(key.0, key.1, bytes), true)
            }
        })
    }

    fn device_time(&self, index: usize, device: DeviceSetting) -> f64 {
        let key = (device.threads, device.affinity, device.permille);
        self.probe(&self.devices[index], key, || {
            let bytes = share_bytes(self.inner.workload.bytes, device.permille);
            if bytes == 0 {
                (0.0, false)
            } else {
                (
                    self.inner
                        .predict_device_on(index, device.threads, device.affinity, bytes),
                    true,
                )
            }
        })
    }

    fn assert_arity(&self, config: &SystemConfiguration) {
        assert!(
            config.accelerator_count() <= self.inner.device_models.len(),
            "configuration describes {} accelerators but only {} device models are trained",
            config.accelerator_count(),
            self.inner.device_models.len()
        );
    }

    /// Predicted host time plus one predicted time per accelerator, served from (and
    /// memoized into) the tables — bit-identical to
    /// [`PredictionEvaluator::evaluate_all_times`].
    pub fn evaluate_all_times(&self, config: &SystemConfiguration) -> (f64, Vec<f64>) {
        self.assert_arity(config);
        let host = self.host_time(config);
        let devices = config
            .devices()
            .iter()
            .enumerate()
            .map(|(index, &device)| self.device_time(index, device))
            .collect();
        (host, devices)
    }

    /// Predicted `(T_host, T_device)` where `T_device` is the slowest accelerator —
    /// the oracle shape [`crate::AdaptiveRefinement::refine_with`] consumes.
    pub fn evaluate_times(&self, config: &SystemConfiguration) -> (f64, f64) {
        let (host, devices) = self.evaluate_all_times(config);
        (host, devices.into_iter().fold(0.0, f64::max))
    }

    /// The optimization energy `E = max(T_host, max_d T_d)` by memoized table probe +
    /// max-composition — the same fold, in the same order, as
    /// [`PredictionEvaluator::energy`].
    pub fn energy(&self, config: &SystemConfiguration) -> f64 {
        let (host, devices) = self.evaluate_all_times(config);
        let device = devices.into_iter().fold(0.0, f64::max);
        host.max(device)
    }
}

impl Objective<SystemConfiguration> for LazyTabulatedPredictionEvaluator<'_> {
    fn evaluate(&self, config: &SystemConfiguration) -> f64 {
        self.energy(config)
    }
}

/// Incremental evaluation over the memoized tables: an accepted move re-probes only
/// the touched components, so long walks cost O(1) probes per move and amortized
/// zero model queries.
impl DeltaObjective<SystemConfiguration> for LazyTabulatedPredictionEvaluator<'_> {
    type State = PredictedTimes;

    fn evaluate_with_state(&self, config: &SystemConfiguration) -> (f64, PredictedTimes) {
        let (host, devices) = self.evaluate_all_times(config);
        let device = devices.iter().copied().fold(0.0, f64::max);
        (host.max(device), (host, devices))
    }

    fn evaluate_move(
        &self,
        base: &SystemConfiguration,
        state: &PredictedTimes,
        config: &SystemConfiguration,
        touched: &Touched,
    ) -> (f64, PredictedTimes) {
        self.assert_arity(config);
        recompose_move(
            base,
            state,
            config,
            touched,
            || self.host_time(config),
            |index, device| self.device_time(index, device),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_analysis::Genome;
    use hetero_platform::Affinity;

    fn human() -> WorkloadProfile {
        Genome::Human.workload()
    }

    fn evaluator() -> MeasurementEvaluator {
        MeasurementEvaluator::new(HeterogeneousPlatform::emil().without_noise(), human())
    }

    #[test]
    fn energy_is_the_maximum_of_both_times() {
        let evaluator = evaluator();
        let cfg = SystemConfiguration::with_host_percent(
            48,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            60,
        );
        let (host, device) = evaluator.evaluate_times(&cfg);
        assert!(host > 0.0 && device > 0.0);
        assert_eq!(evaluator.energy(&cfg), host.max(device));
    }

    #[test]
    fn host_only_and_device_only_have_one_sided_times() {
        let evaluator = evaluator();
        let host_only = SystemConfiguration::host_only_baseline();
        let (host, device) = evaluator.evaluate_times(&host_only);
        assert!(host > 0.0);
        assert_eq!(device, 0.0);

        let device_only = SystemConfiguration::device_only_baseline();
        let (host, device) = evaluator.evaluate_times(&device_only);
        assert_eq!(host, 0.0);
        assert!(device > 0.0);
    }

    #[test]
    fn measurement_energy_prefers_balanced_splits_for_large_inputs() {
        let evaluator = evaluator();
        let all_host = evaluator.energy(&SystemConfiguration::host_only_baseline());
        let all_device = evaluator.energy(&SystemConfiguration::device_only_baseline());
        let split = evaluator.energy(&SystemConfiguration::with_host_percent(
            48,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            65,
        ));
        assert!(split < all_host);
        assert!(split < all_device);
    }

    #[test]
    fn measurement_batches_match_single_evaluations() {
        let evaluator = evaluator();
        let configs: Vec<SystemConfiguration> = (0..=10u32)
            .map(|p| {
                SystemConfiguration::with_host_percent(
                    48,
                    Affinity::Scatter,
                    240,
                    Affinity::Balanced,
                    p * 10,
                )
            })
            .collect();
        let batched = evaluator.evaluate_batch(&configs);
        for (config, energy) in configs.iter().zip(batched) {
            assert_eq!(energy, evaluator.evaluate(config), "config {config}");
        }
    }

    #[test]
    fn prediction_evaluator_uses_the_models() {
        // dummy models: host predicts 2 s/GB of its share, device predicts 1 s/GB + 0.3 s
        struct PerGb(f64);
        impl Regressor for PerGb {
            fn fit(&mut self, _data: &wd_ml::Dataset) -> Result<(), wd_ml::MlError> {
                Ok(())
            }
            fn predict_one(&self, features: &[f64]) -> f64 {
                self.0 * features[4]
            }
            fn is_fitted(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "per-gb"
            }
        }
        let workload = WorkloadProfile::dna_scan("x", 1_000_000_000);
        let evaluator =
            PredictionEvaluator::new(Box::new(PerGb(2.0)), vec![Box::new(PerGb(1.0))], workload)
                .with_device_overhead(0.3);
        let cfg = SystemConfiguration::with_host_percent(
            48,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            50,
        );
        let (host, device) = evaluator.evaluate_times(&cfg);
        assert!((host - 1.0).abs() < 1e-9, "host {host}");
        assert!((device - 0.8).abs() < 1e-9, "device {device}");
        assert!((evaluator.energy(&cfg) - 1.0).abs() < 1e-9);

        // zero shares produce zero predictions
        let host_only = SystemConfiguration::with_host_percent(
            48,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            100,
        );
        let (_, device) = evaluator.evaluate_times(&host_only);
        assert_eq!(device, 0.0);

        // batch evaluation matches single evaluation
        let configs = vec![cfg, host_only];
        assert_eq!(
            evaluator.evaluate_batch(&configs),
            configs
                .iter()
                .map(|c| evaluator.evaluate(c))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn tabulated_evaluator_is_bit_identical_and_factorizes_the_queries() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use wd_opt::SearchSpace as _;

        // a deterministic nonlinear dummy model that counts its invocations
        struct Wavy(&'static AtomicUsize);
        impl Regressor for Wavy {
            fn fit(&mut self, _data: &wd_ml::Dataset) -> Result<(), wd_ml::MlError> {
                Ok(())
            }
            fn predict_one(&self, features: &[f64]) -> f64 {
                self.0.fetch_add(1, Ordering::Relaxed);
                (features[0] * 0.37).sin().abs() + features[4] * (1.0 + features[1] * 0.25)
            }
            fn is_fitted(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "wavy"
            }
        }
        static HOST_CALLS: AtomicUsize = AtomicUsize::new(0);
        static DEVICE_CALLS: AtomicUsize = AtomicUsize::new(0);

        let space = crate::config::ConfigurationSpace::tiny();
        let workload = WorkloadProfile::dna_scan("x", 3_000_000_000);
        let evaluator = PredictionEvaluator::new(
            Box::new(Wavy(&HOST_CALLS)),
            vec![Box::new(Wavy(&DEVICE_CALLS))],
            workload,
        )
        .with_device_overhead(0.125);

        let configs = space.enumerate().unwrap();
        let direct: Vec<f64> = configs.iter().map(|c| evaluator.energy(c)).collect();
        let direct_queries =
            HOST_CALLS.load(Ordering::Relaxed) + DEVICE_CALLS.load(Ordering::Relaxed);

        HOST_CALLS.store(0, Ordering::Relaxed);
        DEVICE_CALLS.store(0, Ordering::Relaxed);
        let tabulated = evaluator.tabulated(&space);
        let table_queries =
            HOST_CALLS.load(Ordering::Relaxed) + DEVICE_CALLS.load(Ordering::Relaxed);
        assert_eq!(tabulated.table_model_queries(), table_queries);
        // the factorization collapses |grid| × 2 queries to Σ axis sizes
        assert!(
            table_queries * 5 <= direct_queries,
            "tabulation used {table_queries} queries, direct used {direct_queries}"
        );

        for (config, &reference) in configs.iter().zip(&direct) {
            assert_eq!(
                tabulated.energy(config).to_bits(),
                reference.to_bits(),
                "config {config}"
            );
        }
        // scoring the whole grid consumed zero additional model queries
        assert_eq!(
            HOST_CALLS.load(Ordering::Relaxed) + DEVICE_CALLS.load(Ordering::Relaxed),
            table_queries
        );
        assert_eq!(tabulated.fallback_queries(), 0);

        // a configuration outside the space falls back to the direct path, identically
        let outside =
            SystemConfiguration::with_host_percent(48, Affinity::None, 240, Affinity::Balanced, 55);
        assert_eq!(
            tabulated.energy(&outside).to_bits(),
            evaluator.energy(&outside).to_bits()
        );
        assert!(tabulated.fallback_queries() > 0);

        // the batched path matches too
        let batched = tabulated.evaluate_batch(&configs);
        assert_eq!(batched.len(), direct.len());
        for (a, b) in batched.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// A deterministic nonlinear dummy model counting invocations (shared by the lazy
    /// tests below).
    struct CountingWavy(&'static AtomicUsize);
    impl Regressor for CountingWavy {
        fn fit(&mut self, _data: &wd_ml::Dataset) -> Result<(), wd_ml::MlError> {
            Ok(())
        }
        fn predict_one(&self, features: &[f64]) -> f64 {
            self.0.fetch_add(1, Ordering::Relaxed);
            (features[0] * 0.29).sin().abs() * 0.75 + features[4] * (1.0 + features[1] * 0.125)
        }
        fn is_fitted(&self) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "counting-wavy"
        }
    }

    fn counting_wavy_evaluator(
        host_calls: &'static AtomicUsize,
        device_calls: &'static AtomicUsize,
    ) -> PredictionEvaluator {
        PredictionEvaluator::new(
            Box::new(CountingWavy(host_calls)),
            vec![Box::new(CountingWavy(device_calls))],
            WorkloadProfile::dna_scan("x", 2_500_000_000),
        )
        .with_device_overhead(0.0625)
    }

    #[test]
    fn lazy_tabulation_is_bit_identical_and_memoizes_model_queries() {
        use wd_opt::SearchSpace as _;
        static HOST_CALLS: AtomicUsize = AtomicUsize::new(0);
        static DEVICE_CALLS: AtomicUsize = AtomicUsize::new(0);

        let space = crate::config::ConfigurationSpace::tiny();
        let evaluator = counting_wavy_evaluator(&HOST_CALLS, &DEVICE_CALLS);
        let configs = space.enumerate().unwrap();
        let direct: Vec<f64> = configs.iter().map(|c| evaluator.energy(c)).collect();
        let direct_queries =
            HOST_CALLS.load(Ordering::Relaxed) + DEVICE_CALLS.load(Ordering::Relaxed);

        HOST_CALLS.store(0, Ordering::Relaxed);
        DEVICE_CALLS.store(0, Ordering::Relaxed);
        let lazy = evaluator.lazy_tabulated();
        assert_eq!(lazy.table_len(), 0, "lazy tables start empty");

        // first pass fills the tables, bit-identically to the direct path
        for (config, &reference) in configs.iter().zip(&direct) {
            assert_eq!(lazy.energy(config).to_bits(), reference.to_bits());
        }
        let fill_queries =
            HOST_CALLS.load(Ordering::Relaxed) + DEVICE_CALLS.load(Ordering::Relaxed);
        assert_eq!(lazy.model_queries(), fill_queries);
        // the factorization collapses |grid| × 2 queries to the distinct axis triples
        assert!(
            fill_queries * 5 <= direct_queries,
            "lazy filled {fill_queries} entries, direct used {direct_queries} queries"
        );

        // second pass is answered entirely from the tables
        for (config, &reference) in configs.iter().zip(&direct) {
            assert_eq!(lazy.energy(config).to_bits(), reference.to_bits());
        }
        assert_eq!(
            HOST_CALLS.load(Ordering::Relaxed) + DEVICE_CALLS.load(Ordering::Relaxed),
            fill_queries,
            "a warm table must not walk the models again"
        );

        // probe-level stats: every evaluation probes host + 1 device
        assert_eq!(lazy.probes(), configs.len() * 4);
        assert_eq!(lazy.stats().misses, fill_queries);
        assert_eq!(lazy.stats().hits, lazy.probes() - fill_queries);

        // a configuration outside the tiny space is memoized by value, identically
        let outside =
            SystemConfiguration::with_host_percent(48, Affinity::None, 240, Affinity::Balanced, 55);
        assert_eq!(
            lazy.energy(&outside).to_bits(),
            evaluator.energy(&outside).to_bits()
        );
    }

    #[test]
    fn delta_moves_recompute_only_touched_devices() {
        use wd_opt::Touched;
        static HOST_CALLS: AtomicUsize = AtomicUsize::new(0);
        static DEVICE_CALLS: AtomicUsize = AtomicUsize::new(0);
        let evaluator = counting_wavy_evaluator(&HOST_CALLS, &DEVICE_CALLS);

        let base = SystemConfiguration::with_host_percent(
            24,
            Affinity::Scatter,
            120,
            Affinity::Balanced,
            60,
        );
        let device_move = SystemConfiguration::with_host_percent(
            24,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            60,
        );
        let host_move = SystemConfiguration::with_host_percent(
            48,
            Affinity::Scatter,
            240,
            Affinity::Balanced,
            60,
        );
        // reference energies first, so the counters below see only the delta path
        let expected_base = evaluator.energy(&base);
        let expected_device_move = evaluator.energy(&device_move);
        let expected_host_move = evaluator.energy(&host_move);

        let (energy, state) = evaluator.evaluate_with_state(&base);
        assert_eq!(energy.to_bits(), expected_base.to_bits());

        // a device-only move re-queries only the device model...
        HOST_CALLS.store(0, Ordering::Relaxed);
        DEVICE_CALLS.store(0, Ordering::Relaxed);
        let (moved, moved_state) =
            evaluator.evaluate_move(&base, &state, &device_move, &Touched::Components(vec![1]));
        assert_eq!(HOST_CALLS.load(Ordering::Relaxed), 0);
        assert_eq!(DEVICE_CALLS.load(Ordering::Relaxed), 1);
        assert_eq!(moved.to_bits(), expected_device_move.to_bits());

        // ...and Unknown footprints diff the configurations, same result & cost
        let (diffed, _) = evaluator.evaluate_move(&base, &state, &device_move, &Touched::Unknown);
        assert_eq!(diffed.to_bits(), moved.to_bits());
        assert_eq!(HOST_CALLS.load(Ordering::Relaxed), 0);

        // chaining from the moved state works too (host-only move)
        DEVICE_CALLS.store(0, Ordering::Relaxed);
        let (chained, _) = evaluator.evaluate_move(
            &device_move,
            &moved_state,
            &host_move,
            &Touched::Components(vec![0]),
        );
        assert_eq!(DEVICE_CALLS.load(Ordering::Relaxed), 0);
        assert_eq!(chained.to_bits(), expected_host_move.to_bits());
    }

    #[test]
    fn crossover_footprints_rescore_children_from_the_first_parents_state() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use wd_opt::SearchSpace as _;

        static HOST_CALLS: AtomicUsize = AtomicUsize::new(0);
        static DEVICE_CALLS: AtomicUsize = AtomicUsize::new(0);
        let evaluator = counting_wavy_evaluator(&HOST_CALLS, &DEVICE_CALLS);
        let space = crate::config::ConfigurationSpace::paper();
        let mut rng = StdRng::seed_from_u64(0x6a11);

        // the GA's recombination contract: a child scored against its FIRST parent's
        // retained state via the crossover footprint must be bit-identical to scoring
        // it from scratch, for arbitrary parent pairs
        for _ in 0..120 {
            let parent_a = space.random(&mut rng);
            let parent_b = space.random(&mut rng);
            let (child, touched) = space.crossover_move(&parent_a, &parent_b, &mut rng);
            let (_, state) = evaluator.evaluate_with_state(&parent_a);
            let (expected, _) = evaluator.evaluate_with_state(&child);
            let (delta, delta_state) = evaluator.evaluate_move(&parent_a, &state, &child, &touched);
            assert_eq!(delta.to_bits(), expected.to_bits());
            // the re-scored state is itself reusable: a follow-up identity move
            // (empty footprint) reproduces the energy without any model walk
            HOST_CALLS.store(0, Ordering::Relaxed);
            DEVICE_CALLS.store(0, Ordering::Relaxed);
            let (again, _) = evaluator.evaluate_move(
                &child,
                &delta_state,
                &child,
                &wd_opt::Touched::Components(vec![]),
            );
            assert_eq!(again.to_bits(), expected.to_bits());
            assert_eq!(HOST_CALLS.load(Ordering::Relaxed), 0);
            assert_eq!(DEVICE_CALLS.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn eager_tabulated_delta_matches_the_direct_delta() {
        use wd_opt::SearchSpace as _;
        use wd_opt::Touched;
        static HOST_CALLS: AtomicUsize = AtomicUsize::new(0);
        static DEVICE_CALLS: AtomicUsize = AtomicUsize::new(0);
        let evaluator = counting_wavy_evaluator(&HOST_CALLS, &DEVICE_CALLS);
        let space = crate::config::ConfigurationSpace::tiny();
        let tabulated = evaluator.tabulated(&space);

        let configs = space.enumerate().unwrap();
        let (_, mut state) = tabulated.evaluate_with_state(&configs[0]);
        let mut previous = configs[0].clone();
        for config in configs.iter().skip(1).take(40) {
            let (energy, next) =
                tabulated.evaluate_move(&previous, &state, config, &Touched::Unknown);
            assert_eq!(energy.to_bits(), evaluator.energy(config).to_bits());
            state = next;
            previous = config.clone();
        }
        assert_eq!(tabulated.fallback_queries(), 0);
    }

    #[test]
    fn evaluators_are_objectives() {
        let evaluator = evaluator();
        let cfg = SystemConfiguration::with_host_percent(
            24,
            Affinity::Scatter,
            120,
            Affinity::Balanced,
            70,
        );
        assert!((Objective::evaluate(&evaluator, &cfg) - evaluator.energy(&cfg)).abs() < 1e-12);

        // and therefore compose with the generic wrappers of the evaluation layer
        let cached = wd_opt::CachedObjective::new(&evaluator);
        assert_eq!(cached.evaluate(&cfg), cached.evaluate(&cfg));
        assert_eq!(cached.stats(), wd_opt::CacheStats { hits: 1, misses: 1 });
    }
}
