//! Speedup accounting against the CPU-only and accelerator-only baselines
//! (the paper's Tables VIII and IX).

use hetero_platform::{ExecutionStats, HeterogeneousPlatform, WorkloadProfile};

use crate::config::SystemConfiguration;
use crate::evaluator::MeasurementEvaluator;

/// Execution-time baselines and the speedups of a combined (host + device)
/// configuration against them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupReport {
    /// Time when all work runs on the host with all 48 threads.
    pub host_only_seconds: f64,
    /// Time when all work runs on the accelerator with all 240 usable threads.
    pub device_only_seconds: f64,
    /// Time of the combined configuration being reported.
    pub combined_seconds: f64,
    /// Execution breakdown of the host-only baseline measurement (`None` for reports
    /// assembled from times obtained elsewhere).
    pub host_stats: Option<ExecutionStats>,
    /// Execution breakdown of the device-only baseline measurement (`None` for
    /// reports assembled from times obtained elsewhere).
    pub device_stats: Option<ExecutionStats>,
}

impl SpeedupReport {
    /// Measure the baselines for `workload` on `platform` and compare them with a
    /// combined execution time obtained elsewhere.  The baselines' full
    /// [`ExecutionStats`] breakdowns are kept on the report.
    pub fn for_combined_time(
        platform: &HeterogeneousPlatform,
        workload: &WorkloadProfile,
        combined_seconds: f64,
    ) -> Self {
        let accelerators = platform.accelerator_count();
        let evaluator = MeasurementEvaluator::new(platform.clone(), workload.clone());
        let host_only =
            evaluator.measure(&SystemConfiguration::host_only_baseline_for(accelerators));
        let device_only =
            evaluator.measure(&SystemConfiguration::device_only_baseline_for(accelerators));
        SpeedupReport {
            host_only_seconds: host_only.t_host.max(host_only.t_device),
            device_only_seconds: device_only.t_host.max(device_only.t_device),
            combined_seconds,
            host_stats: Some(host_only.stats),
            device_stats: Some(device_only.stats),
        }
    }

    /// Speedup of the combined execution over the host-only baseline (Table VIII).
    ///
    /// A degenerate (zero or negative) combined time reports `f64::INFINITY`:
    /// returning 0 — "infinitely slow" — would understate the result.
    pub fn speedup_vs_host(&self) -> f64 {
        if self.combined_seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.host_only_seconds / self.combined_seconds
    }

    /// Speedup of the combined execution over the device-only baseline (Table IX).
    ///
    /// A degenerate (zero or negative) combined time reports `f64::INFINITY`, see
    /// [`SpeedupReport::speedup_vs_host`].
    pub fn speedup_vs_device(&self) -> f64 {
        if self.combined_seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.device_only_seconds / self.combined_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_analysis::Genome;

    #[test]
    fn speedups_match_paper_regime_for_a_good_split() {
        let platform = HeterogeneousPlatform::emil().without_noise();
        let workload = Genome::Human.workload();
        // a known-good split found by enumeration elsewhere: ~65 % on the host
        let evaluator = MeasurementEvaluator::new(platform.clone(), workload.clone());
        let combined = evaluator.energy(&SystemConfiguration::with_host_percent(
            48,
            hetero_platform::Affinity::Scatter,
            240,
            hetero_platform::Affinity::Balanced,
            65,
        ));
        let report = SpeedupReport::for_combined_time(&platform, &workload, combined);
        // Paper: 1.37–1.95× over host-only and 1.64–2.36× over device-only.
        assert!(
            report.speedup_vs_host() > 1.15 && report.speedup_vs_host() < 2.3,
            "speedup vs host {}",
            report.speedup_vs_host()
        );
        assert!(
            report.speedup_vs_device() > 1.4 && report.speedup_vs_device() < 3.0,
            "speedup vs device {}",
            report.speedup_vs_device()
        );
        // the device-only baseline is slower than the host-only baseline, as in the paper
        assert!(report.device_only_seconds > report.host_only_seconds);
    }

    #[test]
    fn zero_combined_time_reports_infinite_speedup() {
        // Regression: a degenerate combined time used to report a speedup of 0.0 —
        // "infinitely slow" — silently understating the result.
        let report = SpeedupReport {
            host_only_seconds: 1.0,
            device_only_seconds: 2.0,
            combined_seconds: 0.0,
            host_stats: None,
            device_stats: None,
        };
        assert_eq!(report.speedup_vs_host(), f64::INFINITY);
        assert_eq!(report.speedup_vs_device(), f64::INFINITY);
        let negative = SpeedupReport {
            host_only_seconds: 1.0,
            device_only_seconds: 2.0,
            combined_seconds: -1.0,
            host_stats: None,
            device_stats: None,
        };
        assert_eq!(negative.speedup_vs_host(), f64::INFINITY);
        // a healthy report is unaffected
        let healthy = SpeedupReport {
            host_only_seconds: 1.0,
            device_only_seconds: 2.0,
            combined_seconds: 0.5,
            host_stats: None,
            device_stats: None,
        };
        assert_eq!(healthy.speedup_vs_host(), 2.0);
        assert_eq!(healthy.speedup_vs_device(), 4.0);
    }

    #[test]
    fn baselines_follow_the_platform_accelerator_count() {
        let platform = HeterogeneousPlatform::emil_with_gpu().without_noise();
        let workload = Genome::Human.workload();
        let report = SpeedupReport::for_combined_time(&platform, &workload, 0.4);
        assert!(report.host_only_seconds > 0.0);
        assert!(report.device_only_seconds > 0.0);
        assert!(report.speedup_vs_host().is_finite());
    }
}
