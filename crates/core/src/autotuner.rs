//! High-level autotuning façade.
//!
//! [`Autotuner`] ties the pieces together for the common use case: describe the
//! platform and the workload once, let the tuner train its prediction models (lazily,
//! only when a prediction-based method is requested) and ask for a near-optimal system
//! configuration with the method and iteration budget of your choice.

use dna_analysis::Genome;
use hetero_platform::{HeterogeneousPlatform, WorkloadProfile};
use wd_ml::BoostingParams;

use crate::config::ConfigurationSpace;
use crate::methods::{MethodKind, MethodOutcome, MethodRunner};
use crate::speedup::SpeedupReport;
use crate::training::{TrainedModels, TrainingCampaign};

/// End-to-end autotuner for work distribution on a heterogeneous platform.
pub struct Autotuner {
    platform: HeterogeneousPlatform,
    workload: WorkloadProfile,
    space: ConfigurationSpace,
    grid: ConfigurationSpace,
    campaign: TrainingCampaign,
    boosting: BoostingParams,
    models: Option<TrainedModels>,
    seed: u64,
}

impl Autotuner {
    /// Create an autotuner for an arbitrary platform and workload with the paper's
    /// search space, enumeration grid and training campaign.
    pub fn new(platform: HeterogeneousPlatform, workload: WorkloadProfile, seed: u64) -> Self {
        Autotuner {
            platform,
            workload,
            space: ConfigurationSpace::paper(),
            grid: ConfigurationSpace::enumeration_grid(),
            campaign: TrainingCampaign::paper(),
            boosting: BoostingParams::default(),
            models: None,
            seed,
        }
    }

    /// The paper's full setup: the simulated "Emil" machine, the human-genome DNA
    /// workload, the Table I search space and the 7 200-experiment training campaign.
    pub fn paper_setup(seed: u64) -> Self {
        Self::new(
            HeterogeneousPlatform::emil_with_seed(seed),
            Genome::Human.workload(),
            seed,
        )
    }

    /// A scaled-down setup (reduced training campaign, fast boosting parameters) that
    /// finishes in well under a second — intended for examples, tests and doc tests.
    pub fn quick_setup(seed: u64) -> Self {
        Self::new(
            HeterogeneousPlatform::emil_with_seed(seed),
            Genome::Human.workload(),
            seed,
        )
        .with_campaign(TrainingCampaign::reduced())
        .with_boosting(BoostingParams::fast())
    }

    /// Replace the workload being tuned (invalidates nothing: the prediction models
    /// depend only on the platform, not on the particular genome).
    pub fn with_workload(mut self, workload: WorkloadProfile) -> Self {
        self.workload = workload;
        self
    }

    /// Replace the training campaign (drops any already-trained models).
    pub fn with_campaign(mut self, campaign: TrainingCampaign) -> Self {
        self.campaign = campaign;
        self.models = None;
        self
    }

    /// Replace the boosting hyper-parameters (drops any already-trained models).
    pub fn with_boosting(mut self, boosting: BoostingParams) -> Self {
        self.boosting = boosting;
        self.models = None;
        self
    }

    /// Replace the simulated-annealing search space.
    pub fn with_space(mut self, space: ConfigurationSpace) -> Self {
        self.space = space;
        self
    }

    /// Replace the enumeration grid used by EM/EML.
    pub fn with_grid(mut self, grid: ConfigurationSpace) -> Self {
        self.grid = grid;
        self
    }

    /// The platform being tuned.
    pub fn platform(&self) -> &HeterogeneousPlatform {
        &self.platform
    }

    /// The workload being tuned.
    pub fn workload(&self) -> &WorkloadProfile {
        &self.workload
    }

    /// Whether the prediction models have been trained yet.
    pub fn is_trained(&self) -> bool {
        self.models.is_some()
    }

    /// Train (or return the already-trained) prediction models.
    pub fn models(&mut self) -> &TrainedModels {
        if self.models.is_none() {
            self.models = Some(self.campaign.run(&self.platform, self.boosting));
        }
        self.models.as_ref().expect("models were just trained")
    }

    /// Run one of the paper's methods with the given simulated-annealing iteration
    /// budget (ignored by EM/EML).  Prediction-based methods trigger lazy training.
    pub fn run(&mut self, method: MethodKind, iterations: usize) -> Result<MethodOutcome, String> {
        if method.uses_prediction() {
            self.models();
        }
        let runner = MethodRunner::new(
            &self.platform,
            &self.workload,
            self.models.as_ref(),
            self.seed,
        )
        .with_space(self.space.clone())
        .with_grid(self.grid.clone());
        runner.run(method, iterations)
    }

    /// Speedup of an outcome against the host-only and device-only baselines.
    pub fn speedup(&self, outcome: &MethodOutcome) -> SpeedupReport {
        SpeedupReport::for_combined_time(&self.platform, &self.workload, outcome.measured_energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_setup_runs_every_method() {
        let mut tuner = Autotuner::quick_setup(3)
            .with_grid(ConfigurationSpace::tiny())
            .with_space(ConfigurationSpace::tiny());
        assert!(!tuner.is_trained());

        let sam = tuner.run(MethodKind::Sam, 100).unwrap();
        assert!(!tuner.is_trained(), "SAM must not trigger training");

        let saml = tuner.run(MethodKind::Saml, 100).unwrap();
        assert!(tuner.is_trained(), "SAML triggers lazy training");

        let em = tuner.run(MethodKind::Em, 0).unwrap();
        let eml = tuner.run(MethodKind::Eml, 0).unwrap();

        for outcome in [&sam, &saml, &em, &eml] {
            assert!(outcome.measured_energy > 0.0 && outcome.measured_energy.is_finite());
        }
        // EM is the optimum of the (tiny) grid
        assert!(em.measured_energy <= sam.measured_energy + 1e-9);
    }

    #[test]
    fn speedup_report_uses_the_tuned_workload() {
        let mut tuner = Autotuner::quick_setup(5)
            .with_grid(ConfigurationSpace::tiny())
            .with_space(ConfigurationSpace::tiny());
        let em = tuner.run(MethodKind::Em, 0).unwrap();
        let speedup = tuner.speedup(&em);
        assert!(speedup.host_only_seconds > 0.0);
        assert!(speedup.device_only_seconds > 0.0);
        assert!(
            speedup.speedup_vs_host() > 1.0,
            "the optimum beats host-only execution"
        );
        assert!(speedup.speedup_vs_device() > 1.0);
    }

    #[test]
    fn changing_the_campaign_invalidates_models() {
        let mut tuner = Autotuner::quick_setup(7)
            .with_grid(ConfigurationSpace::tiny())
            .with_space(ConfigurationSpace::tiny());
        let _ = tuner.models();
        assert!(tuner.is_trained());
        let tuner = tuner.with_campaign(TrainingCampaign::reduced());
        assert!(!tuner.is_trained());
    }

    #[test]
    fn workload_can_be_swapped_without_retraining() {
        let mut tuner = Autotuner::quick_setup(9)
            .with_grid(ConfigurationSpace::tiny())
            .with_space(ConfigurationSpace::tiny());
        let _ = tuner.models();
        let mut tuner = tuner.with_workload(Genome::Dog.workload());
        assert!(tuner.is_trained());
        assert_eq!(tuner.workload().name, "dog");
        let outcome = tuner.run(MethodKind::Saml, 60).unwrap();
        assert!(outcome.measured_energy > 0.0);
    }
}
