//! Collection strategies (`proptest::collection`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Length specification for [`vec`]: a range of admissible lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max_inclusive: len,
        }
    }
}

/// Strategy producing vectors whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
