//! Vendored, dependency-free stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) property-testing framework so the
//! workspace builds without network access.
//!
//! Supported surface (what this repository's property tests use):
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]` header and
//!   `#[test] fn name(arg in strategy, ...) { ... }` items;
//! * [`Strategy`] with `prop_map`, implemented for integer/float ranges, tuples (up to
//!   six elements), [`Just`], [`collection::vec`] and [`sample::select`];
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: inputs are drawn from a deterministic per-test stream
//! (derived from the test's module path and case index), there is no shrinking, and a
//! failing case panics immediately with the case number so it can be replayed by
//! rerunning the test.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod sample;

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// How a property-test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The inputs did not satisfy a `prop_assume!` precondition; skip the case.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Build a rejection from a message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(message) => write!(f, "assertion failed: {message}"),
            TestCaseError::Reject(message) => write!(f, "input rejected: {message}"),
        }
    }
}

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the simulations under test here are heavier than
        // typical proptest targets, so the shim uses a smaller but still meaningful
        // default.  Tests that need a specific count set it via `proptest_config`.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for one test case, derived from a test identifier and the case
/// index.
pub fn test_rng(test_id: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_id.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.as_ref().generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $index:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Uniform choice between boxed strategies — the engine behind [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

/// Uniform choice among the listed strategies (equal weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("condition failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{} != {} failed: both {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests.  See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                let mut rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)), case + rejected);
                $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => case += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.cases * 16 {
                            panic!(
                                "{} rejected too many inputs ({rejected}) for {} cases",
                                stringify!($name),
                                config.cases
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "property {} failed at case {case}: {message}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u32..17, y in 0.5f64..=2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..=2.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..10, 10u32..20).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((10..30).contains(&pair));
        }

        #[test]
        fn oneof_selects_only_listed_values(v in prop_oneof![Just(1u8), Just(3u8), Just(7u8)]) {
            prop_assert!(v == 1 || v == 3 || v == 7);
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn collections_and_select_work(
            values in crate::collection::vec(crate::sample::select(vec![2u32, 4, 8]), 1..6),
        ) {
            prop_assert!(!values.is_empty() && values.len() < 6);
            prop_assert!(values.iter().all(|v| [2, 4, 8].contains(v)));
        }
    }
}
