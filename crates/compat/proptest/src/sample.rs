//! Sampling strategies (`proptest::sample`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Strategy choosing uniformly among the given values.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select requires at least one value");
    Select { values }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let index = rng.gen_range(0..self.values.len());
        self.values[index].clone()
    }
}
