//! Vendored, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate so the workspace builds without network access.
//!
//! Only the API surface this repository actually uses is provided:
//!
//! * [`rngs::StdRng`] — a small, fast, seedable generator (xoshiro256++ core seeded
//!   via SplitMix64, the textbook construction);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer ranges, [`Rng::gen_bool`] and [`Rng::gen`];
//! * [`seq::SliceRandom::shuffle`].
//!
//! The generator is deterministic per seed, which is all the reproduction needs: every
//! stochastic component of the pipeline (annealing, train/test splits, synthetic
//! genomes) is seeded explicitly.  The streams differ from upstream `rand`, so absolute
//! values of seeded experiments differ from builds against the real crate, but all
//! determinism and distribution properties hold.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next `u32` (upper bits of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (the only constructor the workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = (rng.next_u64() as u128) % span;
                (start as i128 + value as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Values that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution of the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped into `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Draw a value from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| {
                // compare two independent streams drawn in lock-step
                StdRng::seed_from_u64(9).gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX)
            })
            .count();
        assert!(same < 5);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(-10i64..=10);
            assert!((-10..=10).contains(&v));
            let u = rng.gen_range(5usize..9);
            assert!((5..9).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2600..3400).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut values: Vec<u32> = (0..100).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            values, sorted,
            "a 100-element shuffle is a non-identity w.h.p."
        );
    }
}
