//! Vendored, dependency-free stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate so the workspace builds without network access.
//!
//! The subset provided is what the workspace uses: `into_par_iter()` /
//! `par_iter()` on vectors and slices, with `map`, `min_by`, `collect`, `for_each`,
//! `sum` and `count` combinators.  Work is split into contiguous chunks executed on
//! `std::thread::scope` threads (one per available core), which preserves item order
//! for `collect` and gives deterministic results for order-insensitive reductions.
//!
//! Nested parallelism is guarded with a thread-local flag: a parallel combinator
//! invoked from inside a worker thread runs sequentially instead of oversubscribing,
//! mirroring how rayon keeps one pool.

use std::cell::Cell;

pub mod iter;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads parallel combinators will use (the machine's available
/// parallelism; 1 when called from inside a worker thread).
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        1
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

/// Apply `f` to every item, in parallel, preserving order.
pub(crate) fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items.into_iter().map(f).collect();
    }

    // Split into `threads` contiguous chunks of near-equal size.
    let len = items.len();
    let chunk = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);

    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    chunk.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("rayon-shim worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let doubled: Vec<i64> = (0..10_000i64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        assert_eq!(doubled, (0..10_000i64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_min_by_matches_sequential() {
        let values: Vec<f64> = (0..5000).map(|i| ((i * 37 % 101) as f64).sin()).collect();
        let par = values.clone().into_par_iter().min_by(|a, b| a.total_cmp(b));
        let seq = values.into_iter().min_by(|a, b| a.total_cmp(b));
        assert_eq!(par, seq);
    }

    #[test]
    fn par_iter_over_slices_and_sum() {
        let values: Vec<u64> = (1..=100).collect();
        let total: u64 = values.par_iter().map(|&v| v).sum();
        assert_eq!(total, 5050);
        let count = values.par_iter().count();
        assert_eq!(count, 100);
    }

    #[test]
    fn nested_parallelism_degrades_gracefully() {
        let out: Vec<usize> = vec![vec![1usize; 50]; 8]
            .into_par_iter()
            .map(|inner| inner.into_par_iter().map(|v| v + 1).sum::<usize>())
            .collect();
        assert_eq!(out, vec![100usize; 8]);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        (0..257usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(counter.into_inner(), 257);
    }
}
