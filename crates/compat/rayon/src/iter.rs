//! The parallel-iterator traits and adapters.

use std::cmp::Ordering;
use std::iter::Sum;

use crate::parallel_map;

/// A data-parallel iterator.  Unlike rayon's lazy splitters this shim drives each
/// combinator stage as one parallel pass over a materialised vector, which is
/// semantically equivalent for the pure item-wise pipelines the workspace uses.
pub trait ParallelIterator: Sized {
    /// Item type produced by this iterator.
    type Item: Send;

    /// Materialise all items, running any pending stages in parallel.
    fn drive(self) -> Vec<Self::Item>;

    /// Item-wise transformation, applied in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Minimum by a comparator.  Like upstream rayon (and `Iterator::min_by`), ties
    /// resolve to the *last* minimal item in iteration order, independent of thread
    /// count.
    fn min_by<F>(self, compare: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> Ordering,
    {
        self.drive().into_iter().min_by(compare)
    }

    /// Collect into any `FromIterator` container, preserving item order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Run `f` on every item (in parallel for pending `map` stages).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _: Vec<()> = Map { base: self, f: &f }.drive();
    }

    /// Sum all items.
    fn sum<S: Sum<Self::Item>>(self) -> S {
        self.drive().into_iter().sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// Conversion into an owning parallel iterator (mirrors rayon's trait of the same name).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator (`par_iter()` on slices/vectors).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Iterate the container's elements by reference, in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over an owned vector.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecIter<&'a T>;

    fn par_iter(&'a self) -> VecIter<&'a T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecIter<&'a T>;

    fn par_iter(&'a self) -> VecIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// Adapter produced by [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map(self.base.drive(), &self.f)
    }
}
