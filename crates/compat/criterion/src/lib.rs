//! Vendored, dependency-free stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness so the
//! workspace builds (and `cargo bench` runs) without network access.
//!
//! The shim keeps criterion's macro/builder API shape — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], [`Bencher::iter`] — but replaces
//! the statistical machinery with a simple measured loop: a warm-up iteration followed
//! by `sample_size` timed samples, reporting mean and minimum per-iteration time.
//! That is enough for the comparative benches in this repository (sequential vs.
//! batched vs. cached evaluation), which care about orders of magnitude rather than
//! confidence intervals.
//!
//! When the binary is invoked with `--test` (as `cargo test --benches` does) each
//! benchmark body runs exactly once, so benches double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier consisting of the parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Throughput annotation (accepted and ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    mean: Duration,
    min: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record its timing.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // one warm-up iteration
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        self.mean = total / self.samples as u32;
        self.min = min;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one(None, id.into(), sample_size, test_mode, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: BenchmarkId,
    samples: usize,
    test_mode: bool,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        test_mode,
        mean: Duration::ZERO,
        min: Duration::ZERO,
    };
    f(&mut bencher);
    let label = match group {
        Some(group) => format!("{group}/{}", id.name),
        None => id.name,
    };
    if test_mode {
        println!("{label:<48} ok (test mode)");
    } else {
        println!(
            "{label:<48} mean {:>12}   min {:>12}   ({} samples)",
            format_duration(bencher.mean),
            format_duration(bencher.min),
            samples.max(1),
        );
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Throughput annotation (ignored by the shim).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a function within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            id.into(),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Benchmark a function parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Define a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_timings() {
        let mut bencher = Bencher {
            samples: 3,
            test_mode: false,
            mean: Duration::ZERO,
            min: Duration::ZERO,
        };
        bencher.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(bencher.mean >= bencher.min);
        assert!(bencher.min > Duration::ZERO);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("SAM", 250).name, "SAM/250");
        assert_eq!(BenchmarkId::from_parameter("human").name, "human");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(100)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(100)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(100)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
