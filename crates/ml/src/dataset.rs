//! Feature/target storage, shuffling and train/test splitting.
//!
//! Features are stored as one contiguous **row-major matrix** (`len × n_features`
//! values in one allocation), so batched inference ([`crate::Regressor::predict_batch`])
//! can walk the rows without chasing one heap allocation per row.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::MlError;

/// A supervised-learning dataset: rows of numeric features plus one numeric target per
/// row (execution time in seconds throughout the reproduction).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    feature_names: Vec<String>,
    /// Row-major feature matrix: `values[i * n_features .. (i + 1) * n_features]` is
    /// row `i`.
    values: Vec<f64>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Create an empty dataset with the given feature schema.
    pub fn new(feature_names: Vec<String>) -> Self {
        Dataset {
            feature_names,
            values: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Append one row.
    pub fn push(&mut self, features: Vec<f64>, target: f64) -> Result<(), MlError> {
        if features.len() != self.feature_names.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.feature_names.len(),
                actual: features.len(),
            });
        }
        if features.iter().any(|v| !v.is_finite()) {
            return Err(MlError::NonFiniteValue {
                context: format!("features of row {}", self.targets.len()),
            });
        }
        if !target.is_finite() {
            return Err(MlError::NonFiniteValue {
                context: format!("target of row {}", self.targets.len()),
            });
        }
        self.values.extend_from_slice(&features);
        self.targets.push(target);
        Ok(())
    }

    /// Names of the features, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// The whole feature matrix, row-major (`len() * n_features()` values) — the shape
    /// [`crate::Regressor::predict_batch`] consumes directly.
    pub fn feature_matrix(&self) -> &[f64] {
        &self.values
    }

    /// Features of row `i`.
    pub fn features(&self, i: usize) -> &[f64] {
        let width = self.n_features();
        &self.values[i * width..(i + 1) * width]
    }

    /// Target of row `i`.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Mean of the targets (0 for an empty dataset).
    pub fn target_mean(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }

    /// Append row `i` of `source` without revalidation (rows already passed `push`).
    fn push_row_from(&mut self, source: &Dataset, i: usize) {
        self.values.extend_from_slice(source.features(i));
        self.targets.push(source.targets[i]);
    }

    /// Deterministically shuffle the rows.
    pub fn shuffle(&mut self, seed: u64) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut shuffled = Dataset::new(self.feature_names.clone());
        shuffled.values.reserve(self.values.len());
        shuffled.targets.reserve(self.targets.len());
        for &i in &order {
            shuffled.push_row_from(self, i);
        }
        *self = shuffled;
    }

    /// Split into `(train, test)` with `test_fraction` of the rows (rounded down) going
    /// to the test set after a deterministic shuffle.
    ///
    /// The paper uses a 50/50 split of its 7 200 experiments ("half of the experiments
    /// were used to train the prediction model, and the other half for evaluation").
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let test_fraction = test_fraction.clamp(0.0, 1.0);
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let test_len = (self.len() as f64 * test_fraction).floor() as usize;

        let mut test = Dataset::new(self.feature_names.clone());
        let mut train = Dataset::new(self.feature_names.clone());
        for (rank, &i) in order.iter().enumerate() {
            let destination = if rank < test_len {
                &mut test
            } else {
                &mut train
            };
            destination.push_row_from(self, i);
        }
        (train, test)
    }

    /// Keep only the rows for which `predicate(features, target)` returns true.
    pub fn filtered<F: Fn(&[f64], f64) -> bool>(&self, predicate: F) -> Dataset {
        let mut out = Dataset::new(self.feature_names.clone());
        for i in 0..self.len() {
            if predicate(self.features(i), self.targets[i]) {
                out.push_row_from(self, i);
            }
        }
        out
    }

    /// Index of the feature column called `name`.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..n {
            d.push(vec![i as f64, (i * 2) as f64], i as f64 * 10.0)
                .unwrap();
        }
        d
    }

    #[test]
    fn push_validates_dimensions_and_finiteness() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        assert!(d.push(vec![1.0], 0.0).is_err());
        assert!(d.push(vec![1.0, f64::NAN], 0.0).is_err());
        assert!(d.push(vec![1.0, 2.0], f64::INFINITY).is_err());
        assert!(d.push(vec![1.0, 2.0], 3.0).is_ok());
        assert_eq!(d.len(), 1);
        assert_eq!(d.features(0), &[1.0, 2.0]);
        assert_eq!(d.target(0), 3.0);
    }

    #[test]
    fn feature_matrix_is_row_major() {
        let d = sample(3);
        assert_eq!(d.feature_matrix(), &[0.0, 0.0, 1.0, 2.0, 2.0, 4.0]);
        assert_eq!(d.feature_matrix().len(), d.len() * d.n_features());
        for i in 0..d.len() {
            assert_eq!(
                d.features(i),
                &d.feature_matrix()[i * d.n_features()..(i + 1) * d.n_features()]
            );
        }
    }

    #[test]
    fn split_partitions_all_rows() {
        let d = sample(101);
        let (train, test) = d.train_test_split(0.5, 7);
        assert_eq!(train.len() + test.len(), 101);
        assert_eq!(test.len(), 50);
        // same split for same seed
        let (train2, test2) = d.train_test_split(0.5, 7);
        assert_eq!(train, train2);
        assert_eq!(test, test2);
        // different seed shuffles differently
        let (train3, _) = d.train_test_split(0.5, 8);
        assert_ne!(train, train3);
    }

    #[test]
    fn split_edge_fractions() {
        let d = sample(10);
        let (train, test) = d.train_test_split(0.0, 1);
        assert_eq!(train.len(), 10);
        assert!(test.is_empty());
        let (train, test) = d.train_test_split(1.0, 1);
        assert!(train.is_empty());
        assert_eq!(test.len(), 10);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let d = sample(50);
        let mut shuffled = d.clone();
        shuffled.shuffle(3);
        assert_eq!(shuffled.len(), d.len());
        let mut original: Vec<f64> = d.targets().to_vec();
        let mut after: Vec<f64> = shuffled.targets().to_vec();
        assert_ne!(original, after, "shuffle should change the order");
        original.sort_by(f64::total_cmp);
        after.sort_by(f64::total_cmp);
        assert_eq!(original, after, "shuffle must preserve the multiset");
        // rows stay intact: features still travel with their target
        for i in 0..shuffled.len() {
            let target = shuffled.target(i);
            assert_eq!(shuffled.features(i), &[target / 10.0, target / 5.0]);
        }
    }

    #[test]
    fn target_mean_and_lookup() {
        let d = sample(4); // targets 0,10,20,30
        assert!((d.target_mean() - 15.0).abs() < 1e-12);
        assert_eq!(d.feature_index("b"), Some(1));
        assert_eq!(d.feature_index("z"), None);
        assert_eq!(Dataset::new(vec![]).target_mean(), 0.0);
    }

    #[test]
    fn filtered_keeps_matching_rows() {
        let d = sample(10);
        let big = d.filtered(|_, t| t >= 50.0);
        assert_eq!(big.len(), 5);
        assert!(big.targets().iter().all(|&t| t >= 50.0));
    }
}
