//! Ordinary least-squares linear regression (one of the paper's baseline models).
//!
//! The model solves the (ridge-stabilised) normal equations
//! `(XᵀX + λI) β = Xᵀy` with Gaussian elimination; λ is a tiny constant that keeps the
//! system solvable when features are collinear (e.g. one-hot encodings).

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::Regressor;

/// Linear regression with an intercept term.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegressor {
    /// Ridge regularisation strength.
    pub ridge_lambda: f64,
    /// Fitted coefficients; index 0 is the intercept.
    coefficients: Vec<f64>,
    fitted: bool,
}

impl Default for LinearRegressor {
    fn default() -> Self {
        LinearRegressor {
            ridge_lambda: 1e-8,
            coefficients: Vec::new(),
            fitted: false,
        }
    }
}

impl LinearRegressor {
    /// Create a model with the default (numerically negligible) ridge term.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a ridge-regularised model.
    pub fn with_ridge(lambda: f64) -> Self {
        LinearRegressor {
            ridge_lambda: lambda.max(0.0),
            ..Self::default()
        }
    }

    /// Fitted coefficients (`[intercept, beta_1, ..., beta_p]`), empty before fitting.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }
}

/// Solve `A x = b` for symmetric positive (semi-)definite `A` using Gaussian
/// elimination with partial pivoting.  Returns `None` when the system is singular.
pub(crate) fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let pivot_row = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // eliminate
        let (pivot_rows, lower_rows) = a.split_at_mut(col + 1);
        let pivot = &pivot_rows[col];
        for (offset, row) in lower_rows.iter_mut().enumerate() {
            let factor = row[col] / pivot[col];
            for (entry, &pivot_entry) in row[col..].iter_mut().zip(&pivot[col..]) {
                *entry -= factor * pivot_entry;
            }
            b[col + 1 + offset] -= factor * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in (col + 1)..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

impl Regressor for LinearRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let p = data.n_features() + 1; // +1 for the intercept
        let mut xtx = vec![vec![0.0; p]; p];
        let mut xty = vec![0.0; p];

        let mut row_buffer = vec![0.0; p];
        for i in 0..data.len() {
            row_buffer[0] = 1.0;
            row_buffer[1..].copy_from_slice(data.features(i));
            let y = data.target(i);
            for a in 0..p {
                xty[a] += row_buffer[a] * y;
                for b in 0..p {
                    xtx[a][b] += row_buffer[a] * row_buffer[b];
                }
            }
        }
        for (d, row) in xtx.iter_mut().enumerate() {
            row[d] += self.ridge_lambda;
        }

        let solution = solve_linear_system(xtx, xty).ok_or_else(|| MlError::FitFailed {
            reason: "normal equations are singular".to_string(),
        })?;
        self.coefficients = solution;
        self.fitted = true;
        Ok(())
    }

    fn predict_one(&self, features: &[f64]) -> f64 {
        if self.coefficients.is_empty() {
            return 0.0;
        }
        let mut prediction = self.coefficients[0];
        for (idx, beta) in self.coefficients.iter().skip(1).enumerate() {
            prediction += beta * features.get(idx).copied().unwrap_or(0.0);
        }
        prediction
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn name(&self) -> &'static str {
        "linear-regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_coefficients() {
        // y = 3 + 2 x0 - 0.5 x1
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()]);
        for i in 0..60 {
            let x0 = (i % 10) as f64;
            let x1 = (i / 10) as f64;
            d.push(vec![x0, x1], 3.0 + 2.0 * x0 - 0.5 * x1).unwrap();
        }
        let mut model = LinearRegressor::new();
        model.fit(&d).unwrap();
        let c = model.coefficients();
        assert!((c[0] - 3.0).abs() < 1e-6);
        assert!((c[1] - 2.0).abs() < 1e-6);
        assert!((c[2] + 0.5).abs() < 1e-6);
        assert!((model.predict_one(&[4.0, 2.0]) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn collinear_features_are_handled_by_ridge() {
        // x1 = 2 * x0 exactly
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()]);
        for i in 0..30 {
            let x0 = i as f64;
            d.push(vec![x0, 2.0 * x0], 5.0 * x0).unwrap();
        }
        let mut model = LinearRegressor::with_ridge(1e-6);
        model.fit(&d).unwrap();
        // predictions still correct even though individual coefficients are not unique
        assert!((model.predict_one(&[10.0, 20.0]) - 50.0).abs() < 1e-3);
    }

    #[test]
    fn unfitted_model_predicts_zero() {
        let model = LinearRegressor::new();
        assert!(!model.is_fitted());
        assert_eq!(model.predict_one(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let mut model = LinearRegressor::new();
        assert!(model.fit(&Dataset::new(vec!["x".into()])).is_err());
    }

    #[test]
    fn solver_detects_singular_systems() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert!(solve_linear_system(a, b).is_none());
        let a = vec![vec![2.0, 0.0], vec![0.0, 3.0]];
        let b = vec![4.0, 9.0];
        let x = solve_linear_system(a, b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }
}
