//! # wd-ml
//!
//! A small, dependency-light supervised-learning library providing the regression
//! models used by *Memeti & Pllana, Combinatorial Optimization of Work Distribution on
//! Heterogeneous Systems, ICPP Workshops 2016*:
//!
//! * [`BoostedTreesRegressor`] — gradient-boosted decision-tree regression, the model
//!   the paper selects for execution-time prediction,
//! * [`LinearRegressor`] and [`PoissonRegressor`] — the baselines the paper reports
//!   having considered,
//! * [`RegressionTree`] — the CART building block,
//! * dataset handling, normalisation, train/test splitting and the error metrics the
//!   paper reports (absolute error, percent error, error histograms).
//!
//! ## Example
//!
//! ```
//! use wd_ml::{Dataset, BoostedTreesRegressor, BoostingParams, Regressor, metrics};
//!
//! // y = 3 x0 + noiseless offset; the booster should learn it closely (the exact
//! // error depends on the seeded train/test split).
//! let mut data = Dataset::new(vec!["x0".into()]);
//! for i in 0..200 {
//!     let x = i as f64 / 10.0;
//!     data.push(vec![x], 3.0 * x + 1.0).unwrap();
//! }
//! let (train, test) = data.train_test_split(0.5, 42);
//! let mut model = BoostedTreesRegressor::new(BoostingParams::default());
//! model.fit(&train).unwrap();
//! let predictions = model.predict_batch(test.feature_matrix(), test.n_features());
//! let mape = metrics::mean_absolute_percent_error(test.targets(), &predictions);
//! assert!(mape < 15.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod boosting;
pub mod dataset;
pub mod error;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod normalize;
pub mod poisson;
pub mod tree;
pub mod validation;

pub use boosting::{BoostedTreesRegressor, BoostingParams};
pub use dataset::Dataset;
pub use error::MlError;
pub use linear::LinearRegressor;
pub use metrics::ErrorHistogram;
pub use model::Regressor;
pub use normalize::{Normalization, Normalizer};
pub use poisson::PoissonRegressor;
pub use tree::{FlatTree, RegressionTree, TreeParams};
pub use validation::{k_fold_cross_validation, permutation_importance, CrossValidation};
