//! Poisson regression (one of the paper's baseline models).
//!
//! A generalised linear model with a log link: `E[y | x] = exp(β₀ + βᵀx)`.  Fitted by
//! iteratively re-weighted least squares (IRLS).  Although execution times are not
//! counts, the paper lists Poisson regression among the candidate models it evaluated,
//! so it is provided for the model-comparison ablation.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::linear::solve_linear_system;
use crate::model::Regressor;

/// Poisson (log-link) regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonRegressor {
    /// Maximum number of IRLS iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the coefficient update norm.
    pub tolerance: f64,
    /// Ridge term stabilising the weighted normal equations.
    pub ridge_lambda: f64,
    coefficients: Vec<f64>,
    fitted: bool,
}

impl Default for PoissonRegressor {
    fn default() -> Self {
        PoissonRegressor {
            max_iterations: 50,
            tolerance: 1e-8,
            ridge_lambda: 1e-8,
            coefficients: Vec::new(),
            fitted: false,
        }
    }
}

impl PoissonRegressor {
    /// Create a model with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fitted coefficients (`[intercept, beta_1, ...]`), empty before fitting.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    fn linear_predictor(&self, features: &[f64]) -> f64 {
        let mut eta = self.coefficients[0];
        for (idx, beta) in self.coefficients.iter().skip(1).enumerate() {
            eta += beta * features.get(idx).copied().unwrap_or(0.0);
        }
        eta
    }
}

impl Regressor for PoissonRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if data.targets().iter().any(|&y| y < 0.0) {
            return Err(MlError::InvalidTarget {
                reason: "Poisson regression requires non-negative targets".to_string(),
            });
        }

        let p = data.n_features() + 1;
        // initialise with the log of the mean target
        let mean = data.target_mean().max(1e-9);
        self.coefficients = vec![0.0; p];
        self.coefficients[0] = mean.ln();

        let mut row = vec![0.0; p];
        for _ in 0..self.max_iterations {
            // IRLS: weights w_i = mu_i, working response z_i = eta_i + (y_i - mu_i)/mu_i
            let mut xtwx = vec![vec![0.0; p]; p];
            let mut xtwz = vec![0.0; p];
            for i in 0..data.len() {
                row[0] = 1.0;
                row[1..].copy_from_slice(data.features(i));
                let eta = {
                    let mut e = self.coefficients[0];
                    for (idx, beta) in self.coefficients.iter().skip(1).enumerate() {
                        e += beta * row[idx + 1];
                    }
                    e.clamp(-30.0, 30.0)
                };
                let mu = eta.exp().max(1e-12);
                let z = eta + (data.target(i) - mu) / mu;
                for a in 0..p {
                    xtwz[a] += mu * row[a] * z;
                    for b in 0..p {
                        xtwx[a][b] += mu * row[a] * row[b];
                    }
                }
            }
            for (d, r) in xtwx.iter_mut().enumerate() {
                r[d] += self.ridge_lambda;
            }
            let new_coefficients =
                solve_linear_system(xtwx, xtwz).ok_or_else(|| MlError::FitFailed {
                    reason: "IRLS system is singular".to_string(),
                })?;
            let delta: f64 = new_coefficients
                .iter()
                .zip(&self.coefficients)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            self.coefficients = new_coefficients;
            if delta < self.tolerance {
                break;
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_one(&self, features: &[f64]) -> f64 {
        if self.coefficients.is_empty() {
            return 0.0;
        }
        self.linear_predictor(features).clamp(-30.0, 30.0).exp()
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn name(&self) -> &'static str {
        "poisson-regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_log_linear_relationship() {
        // y = exp(0.5 + 0.3 x)
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..100 {
            let x = i as f64 / 10.0;
            d.push(vec![x], (0.5 + 0.3 * x).exp()).unwrap();
        }
        let mut model = PoissonRegressor::new();
        model.fit(&d).unwrap();
        let c = model.coefficients();
        assert!((c[0] - 0.5).abs() < 1e-3, "intercept {}", c[0]);
        assert!((c[1] - 0.3).abs() < 1e-3, "slope {}", c[1]);
        let prediction = model.predict_one(&[5.0]);
        assert!((prediction - (0.5f64 + 1.5).exp()).abs() / prediction < 1e-3);
    }

    #[test]
    fn predictions_are_always_positive() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..50 {
            d.push(vec![i as f64], (i % 7) as f64).unwrap();
        }
        let mut model = PoissonRegressor::new();
        model.fit(&d).unwrap();
        for x in [-100.0, 0.0, 3.0, 1e6] {
            assert!(model.predict_one(&[x]) > 0.0);
        }
    }

    #[test]
    fn negative_targets_are_rejected() {
        let mut d = Dataset::new(vec!["x".into()]);
        d.push(vec![1.0], -1.0).unwrap();
        let mut model = PoissonRegressor::new();
        assert!(matches!(model.fit(&d), Err(MlError::InvalidTarget { .. })));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let mut model = PoissonRegressor::new();
        assert!(model.fit(&Dataset::new(vec!["x".into()])).is_err());
    }

    #[test]
    fn unfitted_model_predicts_zero() {
        let model = PoissonRegressor::new();
        assert!(!model.is_fitted());
        assert_eq!(model.predict_one(&[1.0]), 0.0);
    }
}
