//! Error type for the ML crate.

use std::fmt;

/// Errors produced while building datasets or fitting models.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The dataset contains no rows.
    EmptyDataset,
    /// A row's feature count does not match the dataset schema.
    DimensionMismatch {
        /// Number of features the dataset expects.
        expected: usize,
        /// Number of features the row carries.
        actual: usize,
    },
    /// A feature or target value is NaN or infinite.
    NonFiniteValue {
        /// Description of where the value was found.
        context: String,
    },
    /// The model has not been fitted yet.
    NotFitted,
    /// Model-specific failure (e.g. a singular normal-equation system).
    FitFailed {
        /// Explanation of the failure.
        reason: String,
    },
    /// The targets are invalid for the model (e.g. negative counts for Poisson).
    InvalidTarget {
        /// Explanation of why the target is invalid.
        reason: String,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "dataset contains no rows"),
            MlError::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} features per row, got {actual}")
            }
            MlError::NonFiniteValue { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::FitFailed { reason } => write!(f, "model fitting failed: {reason}"),
            MlError::InvalidTarget { reason } => write!(f, "invalid target: {reason}"),
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = MlError::DimensionMismatch {
            expected: 7,
            actual: 3,
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains('3'));
        for e in [
            MlError::EmptyDataset,
            MlError::NotFitted,
            MlError::NonFiniteValue {
                context: "row 4".into(),
            },
            MlError::FitFailed {
                reason: "singular".into(),
            },
            MlError::InvalidTarget {
                reason: "negative".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
