//! Model validation utilities: k-fold cross-validation and permutation feature
//! importance.
//!
//! The paper uses a single 50/50 train/evaluation split; these utilities extend that
//! protocol so the model-selection ablation (boosted trees vs. linear vs. Poisson) can
//! be run with lower variance and so the relative weight of each configuration
//! parameter in the prediction can be quantified.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::metrics;
use crate::model::Regressor;

/// Result of a k-fold cross-validation.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidation {
    /// Mean absolute percent error of every fold.
    pub fold_mape: Vec<f64>,
    /// Root-mean-squared error of every fold.
    pub fold_rmse: Vec<f64>,
}

impl CrossValidation {
    /// Mean of the per-fold MAPE values.
    pub fn mean_mape(&self) -> f64 {
        mean(&self.fold_mape)
    }

    /// Mean of the per-fold RMSE values.
    pub fn mean_rmse(&self) -> f64 {
        mean(&self.fold_rmse)
    }

    /// Standard deviation of the per-fold MAPE values (spread across folds).
    pub fn mape_std(&self) -> f64 {
        std_dev(&self.fold_mape)
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Batch-predict every row of `data`, covering the degenerate zero-feature schema
/// (which the row-major matrix cannot represent: an empty matrix is ambiguous between
/// "no rows" and "n rows of no features", so it is looped through `predict_one`).
fn predict_dataset<M: Regressor>(model: &M, data: &Dataset) -> Vec<f64> {
    if data.n_features() == 0 {
        (0..data.len()).map(|_| model.predict_one(&[])).collect()
    } else {
        model.predict_batch(data.feature_matrix(), data.n_features())
    }
}

fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Run k-fold cross-validation of a model produced by `factory` on `data`.
///
/// The factory is called once per fold so every fold trains a fresh model.
pub fn k_fold_cross_validation<M, F>(
    data: &Dataset,
    folds: usize,
    seed: u64,
    factory: F,
) -> Result<CrossValidation, MlError>
where
    M: Regressor,
    F: Fn() -> M,
{
    if data.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    let folds = folds.clamp(2, data.len().max(2));
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut fold_mape = Vec::with_capacity(folds);
    let mut fold_rmse = Vec::with_capacity(folds);
    for fold in 0..folds {
        let mut train = Dataset::new(data.feature_names().to_vec());
        let mut test = Dataset::new(data.feature_names().to_vec());
        for (rank, &row) in order.iter().enumerate() {
            let destination = if rank % folds == fold {
                &mut test
            } else {
                &mut train
            };
            destination
                .push(data.features(row).to_vec(), data.target(row))
                .expect("row matches schema");
        }
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let mut model = factory();
        model.fit(&train)?;
        let predictions = predict_dataset(&model, &test);
        fold_mape.push(metrics::mean_absolute_percent_error(
            test.targets(),
            &predictions,
        ));
        fold_rmse.push(metrics::root_mean_squared_error(
            test.targets(),
            &predictions,
        ));
    }
    Ok(CrossValidation {
        fold_mape,
        fold_rmse,
    })
}

/// Permutation feature importance: how much the model's RMSE on `data` degrades when
/// one feature column is randomly shuffled.  Returns one (name, importance) pair per
/// feature, where importance is the *increase* in RMSE (≥ 0 up to shuffling noise);
/// larger values mean the model relies on that feature more.
pub fn permutation_importance<M: Regressor>(
    model: &M,
    data: &Dataset,
    seed: u64,
) -> Vec<(String, f64)> {
    if data.is_empty() {
        return Vec::new();
    }
    let baseline_predictions = predict_dataset(model, data);
    let baseline_rmse = metrics::root_mean_squared_error(data.targets(), &baseline_predictions);

    let mut rng = StdRng::seed_from_u64(seed);
    let width = data.n_features();
    let mut importances = Vec::with_capacity(width);
    for feature in 0..width {
        // shuffle one column while keeping the rest intact, directly in a copy of the
        // row-major matrix (no per-row buffers)
        let mut column: Vec<f64> = (0..data.len()).map(|i| data.features(i)[feature]).collect();
        column.shuffle(&mut rng);
        let mut shuffled = data.feature_matrix().to_vec();
        for (row, &value) in column.iter().enumerate() {
            shuffled[row * width + feature] = value;
        }
        let predictions = model.predict_batch(&shuffled, width);
        let rmse = metrics::root_mean_squared_error(data.targets(), &predictions);
        importances.push((
            data.feature_names()[feature].clone(),
            (rmse - baseline_rmse).max(0.0),
        ));
    }
    importances
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boosting::{BoostedTreesRegressor, BoostingParams};
    use crate::linear::LinearRegressor;

    /// y depends strongly on x0 and not at all on x1.
    fn dataset(n: usize) -> Dataset {
        let mut data = Dataset::new(vec!["signal".into(), "noise".into()]);
        for i in 0..n {
            let signal = (i % 37) as f64;
            let noise = ((i * 17) % 11) as f64;
            data.push(vec![signal, noise], 3.0 * signal + 5.0).unwrap();
        }
        data
    }

    #[test]
    fn cross_validation_reports_low_error_for_a_learnable_target() {
        let data = dataset(300);
        let cv = k_fold_cross_validation(&data, 5, 1, || {
            BoostedTreesRegressor::new(BoostingParams::fast())
        })
        .unwrap();
        assert_eq!(cv.fold_mape.len(), 5);
        assert!(cv.mean_mape() < 10.0, "MAPE {}", cv.mean_mape());
        assert!(cv.mean_rmse() < 10.0);
        assert!(cv.mape_std() >= 0.0);
    }

    #[test]
    fn cross_validation_rejects_empty_data_and_clamps_folds() {
        let empty = Dataset::new(vec!["x".into()]);
        assert!(k_fold_cross_validation(&empty, 5, 1, LinearRegressor::new).is_err());

        let data = dataset(10);
        // 100 folds get clamped to the number of rows
        let cv = k_fold_cross_validation(&data, 100, 1, LinearRegressor::new).unwrap();
        assert!(cv.fold_mape.len() <= 10);
    }

    #[test]
    fn permutation_importance_identifies_the_informative_feature() {
        let data = dataset(400);
        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&data).unwrap();
        let importance = permutation_importance(&model, &data, 7);
        assert_eq!(importance.len(), 2);
        let signal = importance.iter().find(|(n, _)| n == "signal").unwrap().1;
        let noise = importance.iter().find(|(n, _)| n == "noise").unwrap().1;
        assert!(
            signal > 10.0 * noise.max(1e-6),
            "signal importance {signal} should dwarf noise importance {noise}"
        );
    }

    #[test]
    fn zero_feature_datasets_still_produce_one_prediction_per_row() {
        // Regression test: the row-major predict_batch matrix cannot represent rows
        // of zero features, so the validation helpers must fall back to predict_one —
        // a zero-feature dataset yields the mean model, not empty/NaN metrics.
        let mut data = Dataset::new(vec![]);
        for i in 0..12 {
            data.push(vec![], 5.0 + (i % 3) as f64).unwrap();
        }
        let cv = k_fold_cross_validation(&data, 3, 1, || {
            BoostedTreesRegressor::new(BoostingParams::fast())
        })
        .unwrap();
        assert_eq!(cv.fold_mape.len(), 3);
        assert!(cv.mean_mape().is_finite());
        assert!(cv.mean_rmse().is_finite() && cv.mean_rmse() > 0.0);

        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&data).unwrap();
        assert!(permutation_importance(&model, &data, 1).is_empty());
    }

    #[test]
    fn permutation_importance_on_empty_data_is_empty() {
        let model = LinearRegressor::new();
        let empty = Dataset::new(vec!["x".into()]);
        assert!(permutation_importance(&model, &empty, 1).is_empty());
    }
}
