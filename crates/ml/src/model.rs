//! The common regressor interface.

use crate::dataset::Dataset;
use crate::error::MlError;

/// A supervised regression model mapping a feature vector to a real-valued prediction
/// (an execution time, in this project).
pub trait Regressor {
    /// Fit the model to a training dataset.
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError>;

    /// Predict the target for a single feature vector.
    ///
    /// Calling this before [`Regressor::fit`] returns an unspecified (but finite)
    /// value; use [`Regressor::is_fitted`] to check.
    fn predict_one(&self, features: &[f64]) -> f64;

    /// Whether the model has been fitted.
    fn is_fitted(&self) -> bool;

    /// Human readable name of the model (used in comparison reports).
    fn name(&self) -> &'static str;

    /// Predict targets for a batch of feature vectors stored as one **row-major
    /// matrix**: `rows.len() / width` rows of `width` features each, borrowed from the
    /// caller ([`crate::Dataset::feature_matrix`] has exactly this shape).
    ///
    /// The default implementation loops [`Regressor::predict_one`] over the rows;
    /// batch-capable models override it with a vectorised pass.  Overrides must be
    /// bit-identical to the default: same values, same order.
    ///
    /// An empty `rows` is treated as zero rows.  A zero-`width` matrix cannot
    /// represent rows at all (an empty slice is ambiguous between "no rows" and
    /// "n rows of no features"); callers with a degenerate zero-feature schema must
    /// loop [`Regressor::predict_one`] with an empty feature slice instead.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is non-empty and `width` is zero or does not divide
    /// `rows.len()`.
    fn predict_batch(&self, rows: &[f64], width: usize) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        assert!(
            width > 0 && rows.len().is_multiple_of(width),
            "row-major batch of {} values is not a whole number of width-{width} rows",
            rows.len()
        );
        rows.chunks_exact(width)
            .map(|row| self.predict_one(row))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial regressor predicting the training-target mean, used to exercise the
    /// trait's default method.
    struct MeanModel {
        mean: Option<f64>,
    }

    impl Regressor for MeanModel {
        fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
            if data.is_empty() {
                return Err(MlError::EmptyDataset);
            }
            self.mean = Some(data.target_mean());
            Ok(())
        }

        fn predict_one(&self, _features: &[f64]) -> f64 {
            self.mean.unwrap_or(0.0)
        }

        fn is_fitted(&self) -> bool {
            self.mean.is_some()
        }

        fn name(&self) -> &'static str {
            "mean"
        }
    }

    #[test]
    fn default_batch_prediction_maps_predict_one() {
        let mut data = Dataset::new(vec!["x".into()]);
        for i in 0..10 {
            data.push(vec![i as f64], i as f64).unwrap();
        }
        let mut model = MeanModel { mean: None };
        assert!(!model.is_fitted());
        model.fit(&data).unwrap();
        assert!(model.is_fitted());
        let preds = model.predict_batch(data.feature_matrix(), data.n_features());
        assert_eq!(preds.len(), 10);
        assert!(preds.iter().all(|&p| (p - 4.5).abs() < 1e-12));
        // empty batches are fine regardless of width
        assert!(model.predict_batch(&[], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "whole number of width-3 rows")]
    fn ragged_batches_are_rejected() {
        let model = MeanModel { mean: Some(1.0) };
        let _ = model.predict_batch(&[1.0, 2.0, 3.0, 4.0], 3);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let mut model = MeanModel { mean: None };
        assert_eq!(
            model.fit(&Dataset::new(vec!["x".into()])),
            Err(MlError::EmptyDataset)
        );
    }
}
