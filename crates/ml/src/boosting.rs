//! Gradient-boosted regression trees (least-squares boosting).
//!
//! This is the "Boosted Decision Tree Regression" the paper selects for execution-time
//! prediction: an additive ensemble of shallow CART trees, each fitted to the residuals
//! of the current ensemble, combined with a shrinkage (learning-rate) factor and
//! optional row subsampling (stochastic gradient boosting).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::Regressor;
use crate::tree::{select_child, RegressionTree, TreeParams, LEAF};

/// Hyper-parameters of the boosted ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoostingParams {
    /// Number of boosting rounds (trees).
    pub n_estimators: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Fraction of rows sampled (without replacement) for each tree; 1.0 disables
    /// subsampling.
    pub subsample: f64,
    /// Parameters of the individual trees.
    pub tree: TreeParams,
    /// Seed for the subsampling RNG.
    pub seed: u64,
}

impl Default for BoostingParams {
    fn default() -> Self {
        BoostingParams {
            n_estimators: 200,
            learning_rate: 0.08,
            subsample: 0.85,
            tree: TreeParams {
                max_depth: 6,
                min_samples_leaf: 3,
                max_split_candidates: 48,
            },
            seed: 0x0b00_57ed,
        }
    }
}

impl BoostingParams {
    /// A faster, lower-capacity configuration for unit tests and smoke runs.
    pub fn fast() -> Self {
        BoostingParams {
            n_estimators: 40,
            learning_rate: 0.15,
            subsample: 1.0,
            tree: TreeParams {
                max_depth: 4,
                min_samples_leaf: 2,
                max_split_candidates: 32,
            },
            seed: 7,
        }
    }
}

/// Rows per block of the cache-blocked batch kernels: one block's rows plus a
/// tree's SoA arrays stay L1/L2-resident while the tree loop streams the arena,
/// so each tree's nodes are touched once per block instead of once per row
/// stride across the whole batch.
const ROW_BLOCK: usize = 64;

/// Rows stepped in lockstep per tree by the explicit-SIMD lane
/// (`--features simd`).  Eight independent walks hide the latency of the
/// data-dependent node loads that serialise the scalar kernel.
#[cfg(feature = "simd")]
const LANES: usize = 8;

/// The whole fitted ensemble flattened into **one contiguous arena**: every tree's
/// [`crate::FlatTree`] arrays concatenated (child indices rebased), plus one root
/// offset per tree.  All inference *and* the training-time diagnostics
/// ([`BoostedTreesRegressor::staged_training_mse`]) walk these four arrays; the
/// per-tree [`RegressionTree`] arenas are kept only for structural introspection.
///
/// `min_width` is the validation computed once at [`FlatForest::from_trees`]
/// time: rows at least that wide cannot index out of bounds at any split node,
/// which lets the batch kernels drop the per-node
/// `features.get(..).unwrap_or(0.0)` check.  Narrower rows (legal — missing
/// features read as 0.0) take the checked walk.
#[derive(Debug, Clone, Default)]
struct FlatForest {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    roots: Vec<u32>,
    min_width: usize,
}

impl FlatForest {
    /// Concatenate the fitted trees into one arena, recording the widest split
    /// feature index so batch walks can be validated once instead of per node.
    fn from_trees(trees: &[RegressionTree]) -> Self {
        let total: usize = trees.iter().map(RegressionTree::node_count).sum();
        let mut forest = FlatForest {
            feature: Vec::with_capacity(total),
            threshold: Vec::with_capacity(total),
            left: Vec::with_capacity(total),
            right: Vec::with_capacity(total),
            roots: Vec::with_capacity(trees.len()),
            min_width: 0,
        };
        for tree in trees {
            let offset = forest.feature.len() as u32;
            forest.roots.push(offset);
            let flat = tree.flatten();
            forest.min_width = forest.min_width.max(flat.min_width());
            forest.feature.extend_from_slice(&flat.feature);
            forest.threshold.extend_from_slice(&flat.threshold);
            // rebase the child indices into the shared arena (leaf slots hold 0 and
            // are never followed, so rebasing them is harmless)
            forest.left.extend(flat.left.iter().map(|&l| l + offset));
            forest.right.extend(flat.right.iter().map(|&r| r + offset));
        }
        forest
    }

    /// Number of trees in the arena.
    fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Leaf value of tree `tree` for `features` — the same walk as
    /// [`crate::FlatTree::predict_one`], over the shared arrays.  Missing
    /// features (row narrower than the split feature) read as 0.0.
    #[inline]
    fn leaf(&self, tree: usize, features: &[f64]) -> f64 {
        let mut index = self.roots[tree] as usize;
        loop {
            let feature = self.feature[index];
            if feature == LEAF {
                return self.threshold[index];
            }
            let value = features.get(feature as usize).copied().unwrap_or(0.0);
            index = if value <= self.threshold[index] {
                self.left[index] as usize
            } else {
                self.right[index] as usize
            };
        }
    }

    /// The bounds-check-free, branch-free walk from an explicit root.
    ///
    /// # Safety
    ///
    /// `row.len() >= self.min_width`, and `root` must be one of `self.roots`
    /// (child indices then stay in-arena by construction).
    #[inline]
    unsafe fn leaf_unchecked(&self, root: usize, row: &[f64]) -> f64 {
        let mut index = root;
        loop {
            // SAFETY: `index` starts at a caller-validated root and every
            // subsequent value comes from `left`/`right`, which `from_trees`
            // builds strictly in-arena; the four parallel arrays share one length.
            let feature = *self.feature.get_unchecked(index);
            let threshold = *self.threshold.get_unchecked(index);
            if feature == LEAF {
                return threshold;
            }
            // SAFETY: `feature < min_width <= row.len()` — `from_trees` folds every
            // split feature into `min_width` and the caller checked the row width.
            let value = *row.get_unchecked(feature as usize);
            index = select_child(
                *self.left.get_unchecked(index),
                *self.right.get_unchecked(index),
                value <= threshold,
            ) as usize;
        }
    }

    /// Add `scale * leaf(tree, row)` to `out[i]` for every row — one tree's
    /// contribution to a whole batch, dispatching to the unchecked branch-free
    /// walk whenever `width` covers every split feature of the forest.
    fn accumulate_tree(
        &self,
        tree: usize,
        rows: &[f64],
        width: usize,
        scale: f64,
        out: &mut [f64],
    ) {
        let root = self.roots[tree] as usize;
        if width == 0 {
            let value = self.leaf(tree, &[]);
            for slot in out.iter_mut() {
                *slot += scale * value;
            }
        } else if width >= self.min_width {
            for (slot, row) in out.iter_mut().zip(rows.chunks_exact(width)) {
                // SAFETY: `width >= min_width` (checked above) and `root` comes
                // from `self.roots`.
                *slot += scale * unsafe { self.leaf_unchecked(root, row) };
            }
        } else {
            for (slot, row) in out.iter_mut().zip(rows.chunks_exact(width)) {
                *slot += scale * self.leaf(tree, row);
            }
        }
    }

    /// Cache-blocked batch kernel: rows in [`ROW_BLOCK`]-sized blocks outer,
    /// trees inner, unchecked branch-free walks.  Each row still accumulates
    /// its trees in forest order, so results are bit-identical to
    /// [`FlatForest::leaf`] accumulation row by row.
    ///
    /// Caller must ensure `width > 0`, `width >= self.min_width` and
    /// `rows.len()` is a multiple of `width`.
    fn predict_blocked(&self, rows: &[f64], width: usize, base: f64, scale: f64) -> Vec<f64> {
        debug_assert!(width > 0 && width >= self.min_width);
        let mut predictions = vec![base; rows.len() / width];
        for (block_rows, block_out) in rows
            .chunks(ROW_BLOCK * width)
            .zip(predictions.chunks_mut(ROW_BLOCK))
        {
            for &root in &self.roots {
                let root = root as usize;
                for (slot, row) in block_out.iter_mut().zip(block_rows.chunks_exact(width)) {
                    // SAFETY: width >= min_width, root from self.roots.
                    *slot += scale * unsafe { self.leaf_unchecked(root, row) };
                }
            }
        }
        predictions
    }

    /// Explicit-SIMD batch kernel: like [`FlatForest::predict_blocked`] but
    /// each tree steps [`LANES`] rows in lockstep (independent walks hide the
    /// node-load latency), with a scalar tail for the block's remainder.  Same
    /// per-row accumulation order, hence bit-identical results.
    #[cfg(feature = "simd")]
    fn predict_simd(&self, rows: &[f64], width: usize, base: f64, scale: f64) -> Vec<f64> {
        debug_assert!(width > 0 && width >= self.min_width);
        let mut predictions = vec![base; rows.len() / width];
        for (block_rows, block_out) in rows
            .chunks(ROW_BLOCK * width)
            .zip(predictions.chunks_mut(ROW_BLOCK))
        {
            for &root in &self.roots {
                let root = root as usize;
                let mut row_groups = block_rows.chunks_exact(width * LANES);
                let mut out_groups = block_out.chunks_exact_mut(LANES);
                for (group_rows, group_out) in (&mut row_groups).zip(&mut out_groups) {
                    // SAFETY: width >= min_width, root from self.roots.
                    unsafe { self.accumulate_lanes(root, group_rows, width, scale, group_out) };
                }
                for (slot, row) in out_groups
                    .into_remainder()
                    .iter_mut()
                    .zip(row_groups.remainder().chunks_exact(width))
                {
                    // SAFETY: as above.
                    *slot += scale * unsafe { self.leaf_unchecked(root, row) };
                }
            }
        }
        predictions
    }

    /// Walk [`LANES`] rows of one tree in lockstep, accumulating
    /// `scale * leaf` into `out` (one slot per lane).
    ///
    /// # Safety
    ///
    /// `rows` holds exactly `LANES` rows of `width >= self.min_width` values
    /// each, `out` has `LANES` slots, `root` comes from `self.roots`.
    #[cfg(feature = "simd")]
    unsafe fn accumulate_lanes(
        &self,
        root: usize,
        rows: &[f64],
        width: usize,
        scale: f64,
        out: &mut [f64],
    ) {
        let mut index = [root; LANES];
        let mut leaf = [0.0f64; LANES];
        let mut done = [false; LANES];
        let mut live = LANES;
        while live > 0 {
            for lane in 0..LANES {
                if done[lane] {
                    continue;
                }
                let node = index[lane];
                // SAFETY: `node` starts at a caller-validated root and is only ever
                // replaced by `left`/`right` values, which `from_trees` builds
                // strictly in-arena; the four parallel arrays share one length.
                let feature = *self.feature.get_unchecked(node);
                let threshold = *self.threshold.get_unchecked(node);
                if feature == LEAF {
                    leaf[lane] = threshold;
                    done[lane] = true;
                    live -= 1;
                    continue;
                }
                // SAFETY: the caller hands `LANES` contiguous rows of `width >=
                // min_width` elements and `feature < min_width` by construction, so
                // `lane * width + feature` stays inside `rows`.
                let value = *rows.get_unchecked(lane * width + feature as usize);
                index[lane] = select_child(
                    *self.left.get_unchecked(node),
                    *self.right.get_unchecked(node),
                    value <= threshold,
                ) as usize;
            }
        }
        for (slot, value) in out.iter_mut().zip(leaf) {
            *slot += scale * value;
        }
    }
}

/// A fitted gradient-boosted tree ensemble.
#[derive(Debug, Clone)]
pub struct BoostedTreesRegressor {
    params: BoostingParams,
    base_prediction: f64,
    trees: Vec<RegressionTree>,
    flat: FlatForest,
    fitted: bool,
}

impl BoostedTreesRegressor {
    /// Create an unfitted model.
    pub fn new(params: BoostingParams) -> Self {
        BoostedTreesRegressor {
            params,
            base_prediction: 0.0,
            trees: Vec::new(),
            flat: FlatForest::default(),
            fitted: false,
        }
    }

    /// Model with the default hyper-parameters.
    pub fn default_model() -> Self {
        Self::new(BoostingParams::default())
    }

    /// The hyper-parameters this model was created with.
    pub fn params(&self) -> &BoostingParams {
        &self.params
    }

    /// Number of trees in the fitted ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Training loss (mean squared error on the training set) after every boosting
    /// round; useful for diagnosing over/under-fitting.  Only available after `fit`.
    ///
    /// Runs over the flat arena one tree at a time (the batched path), which is
    /// bit-identical to the historical per-row `tree.predict_one` loop.
    pub fn staged_training_mse(&self, data: &Dataset) -> Vec<f64> {
        let rows = data.feature_matrix();
        let width = data.n_features();
        let mut predictions = vec![self.base_prediction; data.len()];
        let mut losses = Vec::with_capacity(self.flat.tree_count());
        for tree in 0..self.flat.tree_count() {
            self.flat.accumulate_tree(
                tree,
                rows,
                width,
                self.params.learning_rate,
                &mut predictions,
            );
            let mse = predictions
                .iter()
                .zip(data.targets())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / data.len().max(1) as f64;
            losses.push(mse);
        }
        losses
    }

    /// The seed batch kernel, kept as the comparison baseline for the
    /// `flat_kernel` benches and the bit-identity proptests: tree-major over
    /// the flat arena with the *checked, branchy* walk and no row blocking.
    pub fn predict_batch_reference(&self, rows: &[f64], width: usize) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        Self::check_batch_shape(rows, width);
        let mut predictions = vec![self.base_prediction; rows.len() / width];
        for tree in 0..self.flat.tree_count() {
            for (prediction, row) in predictions.iter_mut().zip(rows.chunks_exact(width)) {
                *prediction += self.params.learning_rate * self.flat.leaf(tree, row);
            }
        }
        predictions
    }

    /// The cache-blocked, branch-free batch kernel ([`Regressor::predict_batch`]
    /// without the SIMD lane); rows narrower than the forest's widest split
    /// feature fall back to [`BoostedTreesRegressor::predict_batch_reference`]
    /// so missing features still read as 0.0.
    pub fn predict_batch_blocked(&self, rows: &[f64], width: usize) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        Self::check_batch_shape(rows, width);
        if width < self.flat.min_width {
            return self.predict_batch_reference(rows, width);
        }
        self.flat
            .predict_blocked(rows, width, self.base_prediction, self.params.learning_rate)
    }

    /// The explicit-SIMD batch kernel (only with `--features simd`): the
    /// blocked kernel with 8 rows per tree stepped in lockstep.  Narrow rows
    /// fall back to the checked reference walk, like
    /// [`BoostedTreesRegressor::predict_batch_blocked`].
    #[cfg(feature = "simd")]
    pub fn predict_batch_simd(&self, rows: &[f64], width: usize) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        Self::check_batch_shape(rows, width);
        if width < self.flat.min_width {
            return self.predict_batch_reference(rows, width);
        }
        self.flat
            .predict_simd(rows, width, self.base_prediction, self.params.learning_rate)
    }

    fn check_batch_shape(rows: &[f64], width: usize) {
        assert!(
            width > 0 && rows.len().is_multiple_of(width),
            "row-major batch of {} values is not a whole number of width-{width} rows",
            rows.len()
        );
    }
}

impl Regressor for BoostedTreesRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        self.trees.clear();
        self.flat = FlatForest::default();
        self.base_prediction = data.target_mean();
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        let n = data.len();
        let mut predictions = vec![self.base_prediction; n];
        let mut residuals = vec![0.0; n];
        let sample_size = ((n as f64) * self.params.subsample.clamp(0.05, 1.0)).ceil() as usize;
        let sample_size = sample_size.clamp(1, n);
        let mut all_indices: Vec<usize> = (0..n).collect();

        for _ in 0..self.params.n_estimators {
            for i in 0..n {
                residuals[i] = data.target(i) - predictions[i];
            }

            let indices: Vec<usize> = if sample_size == n {
                all_indices.clone()
            } else {
                all_indices.shuffle(&mut rng);
                all_indices[..sample_size].to_vec()
            };

            let mut tree = RegressionTree::new(self.params.tree);
            tree.fit_on_indices(data, &residuals, &indices)?;

            // batched residual update over the just-fitted tree's flat arrays
            // (bit-identical to the per-row `tree.predict_one` loop)
            tree.flatten().accumulate_into(
                data.feature_matrix(),
                data.n_features(),
                self.params.learning_rate,
                &mut predictions,
            );
            self.trees.push(tree);
        }
        self.flat = FlatForest::from_trees(&self.trees);
        self.fitted = true;
        Ok(())
    }

    fn predict_one(&self, features: &[f64]) -> f64 {
        // the flat arena holds exactly the fitted trees, in boosting order, so the
        // accumulation is bit-identical to walking the per-tree arenas
        let mut prediction = self.base_prediction;
        if features.len() >= self.flat.min_width {
            for &root in &self.flat.roots {
                // SAFETY: the row covers every split feature (checked above) and
                // the root comes from the arena built in `from_trees`.
                prediction += self.params.learning_rate
                    * unsafe { self.flat.leaf_unchecked(root as usize, features) };
            }
        } else {
            for tree in 0..self.flat.tree_count() {
                prediction += self.params.learning_rate * self.flat.leaf(tree, features);
            }
        }
        prediction
    }

    /// Real batched inference over a row-major feature matrix: cache-blocked
    /// row×tree tiling of the flat arena with branch-free, bounds-check-free
    /// node stepping (the width was validated against the forest's widest split
    /// feature at `from_trees` time); with `--features simd` the blocked kernel
    /// additionally steps 8 rows per tree in lockstep.  Per row the additions
    /// happen in the same order as [`Regressor::predict_one`], so every lane is
    /// bit-identical to the default row loop.  Rows narrower than the widest
    /// split feature take the checked reference walk (missing features read as
    /// 0.0).
    fn predict_batch(&self, rows: &[f64], width: usize) -> Vec<f64> {
        #[cfg(feature = "simd")]
        {
            self.predict_batch_simd(rows, width)
        }
        #[cfg(not(feature = "simd"))]
        {
            self.predict_batch_blocked(rows, width)
        }
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn name(&self) -> &'static str {
        "boosted-decision-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    /// y = 2*x0 + 5*step(x1) + small deterministic wiggle
    fn synthetic(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()]);
        for i in 0..n {
            let x0 = (i % 50) as f64 / 5.0;
            let x1 = ((i * 7) % 10) as f64;
            let wiggle = ((i * 13) % 7) as f64 * 0.01;
            let y = 2.0 * x0 + if x1 >= 5.0 { 5.0 } else { 0.0 } + wiggle;
            d.push(vec![x0, x1], y).unwrap();
        }
        d
    }

    #[test]
    fn learns_a_nonlinear_function() {
        let data = synthetic(600);
        let (train, test) = data.train_test_split(0.5, 1);
        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&train).unwrap();
        assert!(model.is_fitted());
        assert_eq!(model.tree_count(), BoostingParams::fast().n_estimators);

        let predictions = model.predict_batch(test.feature_matrix(), test.n_features());
        let mape = metrics::mean_absolute_percent_error(test.targets(), &predictions);
        assert!(mape < 8.0, "MAPE too high: {mape}%");
    }

    #[test]
    fn beats_a_single_tree() {
        let data = synthetic(600);
        let (train, test) = data.train_test_split(0.5, 2);

        let mut single = RegressionTree::new(TreeParams {
            max_depth: 2,
            min_samples_leaf: 2,
            max_split_candidates: 32,
        });
        single.fit(&train).unwrap();
        let mut boosted = BoostedTreesRegressor::new(BoostingParams {
            tree: TreeParams {
                max_depth: 2,
                min_samples_leaf: 2,
                max_split_candidates: 32,
            },
            ..BoostingParams::fast()
        });
        boosted.fit(&train).unwrap();

        let rmse_single = metrics::root_mean_squared_error(
            test.targets(),
            &single.predict_batch(test.feature_matrix(), test.n_features()),
        );
        let rmse_boosted = metrics::root_mean_squared_error(
            test.targets(),
            &boosted.predict_batch(test.feature_matrix(), test.n_features()),
        );
        assert!(
            rmse_boosted < rmse_single,
            "boosting ({rmse_boosted}) should beat a depth-2 tree ({rmse_single})"
        );
    }

    #[test]
    fn training_loss_decreases_monotonically_in_aggregate() {
        let data = synthetic(300);
        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&data).unwrap();
        let losses = model.staged_training_mse(&data);
        assert_eq!(losses.len(), BoostingParams::fast().n_estimators);
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn subsampling_is_deterministic_per_seed() {
        let data = synthetic(300);
        let params = BoostingParams {
            subsample: 0.5,
            ..BoostingParams::fast()
        };
        let mut a = BoostedTreesRegressor::new(params);
        let mut b = BoostedTreesRegressor::new(params);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        let probe = vec![3.3, 7.0];
        assert_eq!(a.predict_one(&probe), b.predict_one(&probe));
    }

    #[test]
    fn batch_kernels_agree_bit_for_bit_with_the_row_loop() {
        let data = synthetic(317); // odd count: exercises block and lane tails
        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&data).unwrap();
        let rows = data.feature_matrix();
        let width = data.n_features();

        let reference = model.predict_batch_reference(rows, width);
        let blocked = model.predict_batch_blocked(rows, width);
        let dispatched = model.predict_batch(rows, width);
        for i in 0..data.len() {
            let one = model.predict_one(data.features(i));
            assert_eq!(one.to_bits(), reference[i].to_bits(), "reference row {i}");
            assert_eq!(one.to_bits(), blocked[i].to_bits(), "blocked row {i}");
            assert_eq!(one.to_bits(), dispatched[i].to_bits(), "dispatch row {i}");
        }
        #[cfg(feature = "simd")]
        {
            let simd = model.predict_batch_simd(rows, width);
            for i in 0..data.len() {
                assert_eq!(reference[i].to_bits(), simd[i].to_bits(), "simd row {i}");
            }
        }
    }

    #[test]
    fn narrow_rows_fall_back_to_the_checked_walk() {
        let data = synthetic(200); // schema has 2 features
        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&data).unwrap();
        // width-1 rows are narrower than the widest split feature: the batch
        // kernels must reproduce the missing-features-read-as-0.0 semantics
        let narrow: Vec<f64> = (0..40).map(|i| (i % 23) as f64).collect();
        let blocked = model.predict_batch_blocked(&narrow, 1);
        let dispatched = model.predict_batch(&narrow, 1);
        for (i, value) in narrow.iter().enumerate() {
            let one = model.predict_one(&[*value]);
            assert_eq!(one.to_bits(), blocked[i].to_bits(), "row {i}");
            assert_eq!(one.to_bits(), dispatched[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn empty_batches_predict_nothing() {
        let data = synthetic(50);
        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&data).unwrap();
        assert!(model.predict_batch(&[], 2).is_empty());
        assert!(model.predict_batch_reference(&[], 2).is_empty());
        assert!(model.predict_batch_blocked(&[], 2).is_empty());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let mut model = BoostedTreesRegressor::default_model();
        assert_eq!(
            model.fit(&Dataset::new(vec!["x".into()])),
            Err(MlError::EmptyDataset)
        );
        assert!(!model.is_fitted());
    }

    #[test]
    fn constant_target_is_predicted_exactly() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..50 {
            d.push(vec![i as f64], 4.25).unwrap();
        }
        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&d).unwrap();
        assert!((model.predict_one(&[17.0]) - 4.25).abs() < 1e-9);
    }
}
