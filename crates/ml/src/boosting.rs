//! Gradient-boosted regression trees (least-squares boosting).
//!
//! This is the "Boosted Decision Tree Regression" the paper selects for execution-time
//! prediction: an additive ensemble of shallow CART trees, each fitted to the residuals
//! of the current ensemble, combined with a shrinkage (learning-rate) factor and
//! optional row subsampling (stochastic gradient boosting).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::Regressor;
use crate::tree::{RegressionTree, TreeParams, LEAF};

/// Hyper-parameters of the boosted ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoostingParams {
    /// Number of boosting rounds (trees).
    pub n_estimators: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Fraction of rows sampled (without replacement) for each tree; 1.0 disables
    /// subsampling.
    pub subsample: f64,
    /// Parameters of the individual trees.
    pub tree: TreeParams,
    /// Seed for the subsampling RNG.
    pub seed: u64,
}

impl Default for BoostingParams {
    fn default() -> Self {
        BoostingParams {
            n_estimators: 200,
            learning_rate: 0.08,
            subsample: 0.85,
            tree: TreeParams {
                max_depth: 6,
                min_samples_leaf: 3,
                max_split_candidates: 48,
            },
            seed: 0x0b00_57ed,
        }
    }
}

impl BoostingParams {
    /// A faster, lower-capacity configuration for unit tests and smoke runs.
    pub fn fast() -> Self {
        BoostingParams {
            n_estimators: 40,
            learning_rate: 0.15,
            subsample: 1.0,
            tree: TreeParams {
                max_depth: 4,
                min_samples_leaf: 2,
                max_split_candidates: 32,
            },
            seed: 7,
        }
    }
}

/// The whole fitted ensemble flattened into **one contiguous arena**: every tree's
/// [`crate::FlatTree`] arrays concatenated (child indices rebased), plus one root
/// offset per tree.  All inference — single rows and batches — walks these four
/// arrays; the per-tree [`RegressionTree`] arenas are kept only for training-time
/// diagnostics ([`BoostedTreesRegressor::staged_training_mse`]).
#[derive(Debug, Clone, Default)]
struct FlatForest {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    roots: Vec<u32>,
}

impl FlatForest {
    /// Concatenate the fitted trees into one arena.
    fn from_trees(trees: &[RegressionTree]) -> Self {
        let total: usize = trees.iter().map(RegressionTree::node_count).sum();
        let mut forest = FlatForest {
            feature: Vec::with_capacity(total),
            threshold: Vec::with_capacity(total),
            left: Vec::with_capacity(total),
            right: Vec::with_capacity(total),
            roots: Vec::with_capacity(trees.len()),
        };
        for tree in trees {
            let offset = forest.feature.len() as u32;
            forest.roots.push(offset);
            let flat = tree.flatten();
            forest.feature.extend_from_slice(&flat.feature);
            forest.threshold.extend_from_slice(&flat.threshold);
            // rebase the child indices into the shared arena (leaf slots hold 0 and
            // are never followed, so rebasing them is harmless)
            forest.left.extend(flat.left.iter().map(|&l| l + offset));
            forest.right.extend(flat.right.iter().map(|&r| r + offset));
        }
        forest
    }

    /// Number of trees in the arena.
    fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Leaf value of tree `tree` for `features` — the same walk as
    /// [`crate::FlatTree::predict_one`], over the shared arrays.
    #[inline]
    fn leaf(&self, tree: usize, features: &[f64]) -> f64 {
        let mut index = self.roots[tree] as usize;
        loop {
            let feature = self.feature[index];
            if feature == LEAF {
                return self.threshold[index];
            }
            let value = features.get(feature as usize).copied().unwrap_or(0.0);
            index = if value <= self.threshold[index] {
                self.left[index] as usize
            } else {
                self.right[index] as usize
            };
        }
    }
}

/// A fitted gradient-boosted tree ensemble.
#[derive(Debug, Clone)]
pub struct BoostedTreesRegressor {
    params: BoostingParams,
    base_prediction: f64,
    trees: Vec<RegressionTree>,
    flat: FlatForest,
    fitted: bool,
}

impl BoostedTreesRegressor {
    /// Create an unfitted model.
    pub fn new(params: BoostingParams) -> Self {
        BoostedTreesRegressor {
            params,
            base_prediction: 0.0,
            trees: Vec::new(),
            flat: FlatForest::default(),
            fitted: false,
        }
    }

    /// Model with the default hyper-parameters.
    pub fn default_model() -> Self {
        Self::new(BoostingParams::default())
    }

    /// The hyper-parameters this model was created with.
    pub fn params(&self) -> &BoostingParams {
        &self.params
    }

    /// Number of trees in the fitted ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Training loss (mean squared error on the training set) after every boosting
    /// round; useful for diagnosing over/under-fitting.  Only available after `fit`.
    pub fn staged_training_mse(&self, data: &Dataset) -> Vec<f64> {
        let mut predictions = vec![self.base_prediction; data.len()];
        let mut losses = Vec::with_capacity(self.trees.len());
        for tree in &self.trees {
            for (i, prediction) in predictions.iter_mut().enumerate() {
                *prediction += self.params.learning_rate * tree.predict_one(data.features(i));
            }
            let mse = predictions
                .iter()
                .zip(data.targets())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / data.len().max(1) as f64;
            losses.push(mse);
        }
        losses
    }
}

impl Regressor for BoostedTreesRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        self.trees.clear();
        self.flat = FlatForest::default();
        self.base_prediction = data.target_mean();
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        let n = data.len();
        let mut predictions = vec![self.base_prediction; n];
        let mut residuals = vec![0.0; n];
        let sample_size = ((n as f64) * self.params.subsample.clamp(0.05, 1.0)).ceil() as usize;
        let sample_size = sample_size.clamp(1, n);
        let mut all_indices: Vec<usize> = (0..n).collect();

        for _ in 0..self.params.n_estimators {
            for i in 0..n {
                residuals[i] = data.target(i) - predictions[i];
            }

            let indices: Vec<usize> = if sample_size == n {
                all_indices.clone()
            } else {
                all_indices.shuffle(&mut rng);
                all_indices[..sample_size].to_vec()
            };

            let mut tree = RegressionTree::new(self.params.tree);
            tree.fit_on_indices(data, &residuals, &indices)?;

            for (i, prediction) in predictions.iter_mut().enumerate() {
                *prediction += self.params.learning_rate * tree.predict_one(data.features(i));
            }
            self.trees.push(tree);
        }
        self.flat = FlatForest::from_trees(&self.trees);
        self.fitted = true;
        Ok(())
    }

    fn predict_one(&self, features: &[f64]) -> f64 {
        // the flat arena holds exactly the fitted trees, in boosting order, so the
        // accumulation is bit-identical to walking the per-tree arenas
        let mut prediction = self.base_prediction;
        for tree in 0..self.flat.tree_count() {
            prediction += self.params.learning_rate * self.flat.leaf(tree, features);
        }
        prediction
    }

    /// Real batched inference over a row-major feature matrix: tree-major traversal of
    /// the flat arena, so each tree's nodes stay cache-hot across all rows and no
    /// per-row buffers are allocated.  Per row the additions happen in the same order
    /// as [`Regressor::predict_one`], so the results are bit-identical to the default
    /// row loop.
    fn predict_batch(&self, rows: &[f64], width: usize) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        assert!(
            width > 0 && rows.len().is_multiple_of(width),
            "row-major batch of {} values is not a whole number of width-{width} rows",
            rows.len()
        );
        let mut predictions = vec![self.base_prediction; rows.len() / width];
        for tree in 0..self.flat.tree_count() {
            for (prediction, row) in predictions.iter_mut().zip(rows.chunks_exact(width)) {
                *prediction += self.params.learning_rate * self.flat.leaf(tree, row);
            }
        }
        predictions
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn name(&self) -> &'static str {
        "boosted-decision-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    /// y = 2*x0 + 5*step(x1) + small deterministic wiggle
    fn synthetic(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()]);
        for i in 0..n {
            let x0 = (i % 50) as f64 / 5.0;
            let x1 = ((i * 7) % 10) as f64;
            let wiggle = ((i * 13) % 7) as f64 * 0.01;
            let y = 2.0 * x0 + if x1 >= 5.0 { 5.0 } else { 0.0 } + wiggle;
            d.push(vec![x0, x1], y).unwrap();
        }
        d
    }

    #[test]
    fn learns_a_nonlinear_function() {
        let data = synthetic(600);
        let (train, test) = data.train_test_split(0.5, 1);
        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&train).unwrap();
        assert!(model.is_fitted());
        assert_eq!(model.tree_count(), BoostingParams::fast().n_estimators);

        let predictions = model.predict_batch(test.feature_matrix(), test.n_features());
        let mape = metrics::mean_absolute_percent_error(test.targets(), &predictions);
        assert!(mape < 8.0, "MAPE too high: {mape}%");
    }

    #[test]
    fn beats_a_single_tree() {
        let data = synthetic(600);
        let (train, test) = data.train_test_split(0.5, 2);

        let mut single = RegressionTree::new(TreeParams {
            max_depth: 2,
            min_samples_leaf: 2,
            max_split_candidates: 32,
        });
        single.fit(&train).unwrap();
        let mut boosted = BoostedTreesRegressor::new(BoostingParams {
            tree: TreeParams {
                max_depth: 2,
                min_samples_leaf: 2,
                max_split_candidates: 32,
            },
            ..BoostingParams::fast()
        });
        boosted.fit(&train).unwrap();

        let rmse_single = metrics::root_mean_squared_error(
            test.targets(),
            &single.predict_batch(test.feature_matrix(), test.n_features()),
        );
        let rmse_boosted = metrics::root_mean_squared_error(
            test.targets(),
            &boosted.predict_batch(test.feature_matrix(), test.n_features()),
        );
        assert!(
            rmse_boosted < rmse_single,
            "boosting ({rmse_boosted}) should beat a depth-2 tree ({rmse_single})"
        );
    }

    #[test]
    fn training_loss_decreases_monotonically_in_aggregate() {
        let data = synthetic(300);
        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&data).unwrap();
        let losses = model.staged_training_mse(&data);
        assert_eq!(losses.len(), BoostingParams::fast().n_estimators);
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn subsampling_is_deterministic_per_seed() {
        let data = synthetic(300);
        let params = BoostingParams {
            subsample: 0.5,
            ..BoostingParams::fast()
        };
        let mut a = BoostedTreesRegressor::new(params);
        let mut b = BoostedTreesRegressor::new(params);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        let probe = vec![3.3, 7.0];
        assert_eq!(a.predict_one(&probe), b.predict_one(&probe));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let mut model = BoostedTreesRegressor::default_model();
        assert_eq!(
            model.fit(&Dataset::new(vec!["x".into()])),
            Err(MlError::EmptyDataset)
        );
        assert!(!model.is_fitted());
    }

    #[test]
    fn constant_target_is_predicted_exactly() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..50 {
            d.push(vec![i as f64], 4.25).unwrap();
        }
        let mut model = BoostedTreesRegressor::new(BoostingParams::fast());
        model.fit(&d).unwrap();
        assert!((model.predict_one(&[17.0]) - 4.25).abs() < 1e-9);
    }
}
